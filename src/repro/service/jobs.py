"""The service job model: requests, shards, and store-key planning.

A :class:`JobRequest` is what a client submits — a sweep grid (workload x
switches x loads x seeds).  The service decomposes it into
:class:`ShardSpec` cells, one per (switch, load, seed): the unit of
computation, queueing, and dedup.  Every shard is keyed by the exact
:func:`repro.store.cache_key` its :func:`repro.sim.experiment.run_single`
call would be cached under (via
:func:`repro.sim.experiment.resolve_run_params`), which is what lets the
service (a) serve already-stored shards without touching a worker and
(b) collapse identical in-flight shards across concurrent requests into
one computation.

Both request and shard are plain JSON-serializable data (``to_dict`` /
``from_dict``): requests cross the HTTP boundary, shards cross the
worker-process boundary.  Workloads are named — a §6 pattern
(``uniform``/``diagonal``), a registered scenario, a spec-file path, or
a ``trace:<path>`` designator — never raw matrices, so a shard stays a
few hundred bytes no matter the port count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.experiment import TRAFFIC_PATTERNS, resolve_run_params, run_single
from ..store import cache_key

__all__ = [
    "JobRequest",
    "ShardSpec",
    "execute_shard",
    "expand_shards",
    "shard_key",
    "shard_params",
    "shard_run_kwargs",
]


@dataclass(frozen=True)
class ShardSpec:
    """One (switch, load, seed) cell: the service's unit of work."""

    switch: str
    workload: str
    n: int
    load: float
    num_slots: int
    seed: int
    engine: str = "object"
    switch_params: Optional[Dict] = None
    #: Kernel backend ("numpy"/"compiled") the worker should run under;
    #: results (and therefore shard keys) are backend-invariant.
    backend: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "switch": self.switch,
            "workload": self.workload,
            "n": self.n,
            "load": self.load,
            "num_slots": self.num_slots,
            "seed": self.seed,
            "engine": self.engine,
            "switch_params": (
                dict(self.switch_params) if self.switch_params else None
            ),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ShardSpec":
        return cls(
            switch=data["switch"],
            workload=data["workload"],
            n=int(data["n"]),
            load=float(data["load"]),
            num_slots=int(data["num_slots"]),
            seed=int(data["seed"]),
            engine=data.get("engine", "object"),
            switch_params=data.get("switch_params") or None,
            backend=data.get("backend") or None,
        )


@dataclass(frozen=True)
class JobRequest:
    """A submitted sweep: the grid a client wants simulated.

    ``workload`` names a §6 pattern, registered scenario, spec file, or
    ``trace:<path>``; ``seeds`` is the seed block (one full grid per
    seed).  ``switch_params``, when given, applies to every switch in
    the request — parameter studies submit one request per setting.
    """

    workload: str
    switches: Tuple[str, ...]
    loads: Tuple[float, ...]
    n: int = 16
    num_slots: int = 2_000
    seeds: Tuple[int, ...] = (0,)
    engine: str = "object"
    switch_params: Optional[Dict] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "switches", tuple(self.switches))
        object.__setattr__(
            self, "loads", tuple(float(load) for load in self.loads)
        )
        object.__setattr__(
            self, "seeds", tuple(int(seed) for seed in self.seeds)
        )
        if not self.switches:
            raise ValueError("request needs at least one switch")
        if not self.loads:
            raise ValueError("request needs at least one load")
        if not self.seeds:
            raise ValueError("request needs at least one seed")

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "switches": list(self.switches),
            "loads": list(self.loads),
            "n": self.n,
            "num_slots": self.num_slots,
            "seeds": list(self.seeds),
            "engine": self.engine,
            "switch_params": (
                dict(self.switch_params) if self.switch_params else None
            ),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRequest":
        return cls(
            workload=data["workload"],
            switches=tuple(data["switches"]),
            loads=tuple(data["loads"]),
            n=int(data.get("n", 16)),
            num_slots=int(data.get("num_slots", 2_000)),
            seeds=tuple(data.get("seeds") or (0,)),
            engine=data.get("engine", "object"),
            switch_params=data.get("switch_params") or None,
            backend=data.get("backend") or None,
        )


def expand_shards(request: JobRequest) -> List[ShardSpec]:
    """Decompose a request into its (seed x load x switch) shard cells."""
    return [
        ShardSpec(
            switch=switch,
            workload=request.workload,
            n=request.n,
            load=load,
            num_slots=request.num_slots,
            seed=seed,
            engine=request.engine,
            switch_params=request.switch_params,
            backend=request.backend,
        )
        for seed in request.seeds
        for load in request.loads
        for switch in request.switches
    ]


def shard_run_kwargs(shard: ShardSpec) -> Dict:
    """The :func:`~repro.sim.experiment.run_single` arguments for a shard.

    The one place the shard -> run mapping lives: the daemon keys shards
    with it (through :func:`resolve_run_params`) and workers execute with
    it, so planner and executor cannot disagree on what a shard means.
    """
    kwargs: Dict = {
        "switch_name": shard.switch,
        "num_slots": shard.num_slots,
        "seed": shard.seed,
        "keep_samples": False,
        "engine": shard.engine,
        "switch_params": shard.switch_params,
        # Bit-identical either way: resolve_run_params validates the
        # name and excludes it from the key, run_single executes under it.
        "backend": shard.backend,
    }
    if shard.workload in TRAFFIC_PATTERNS:
        kwargs["matrix"] = TRAFFIC_PATTERNS[shard.workload](
            shard.n, shard.load
        )
        kwargs["load_label"] = shard.load
    else:
        kwargs["scenario"] = shard.workload
        kwargs["n"] = shard.n
        kwargs["load"] = shard.load
    return kwargs


def shard_params(shard: ShardSpec) -> Dict:
    """The shard's full store cache-key parameter dict.

    Raises for invalid shards (unknown switch, bad scenario), so
    submission-time validation comes for free.
    """
    return resolve_run_params(**shard_run_kwargs(shard))


def shard_key(shard: ShardSpec) -> str:
    """The shard's experiment-store cache key.

    Exactly the key the worker's ``run_single(store=...)`` call will save
    under — shard identity IS store identity, which is the whole dedup
    story.
    """
    return cache_key(shard_params(shard))


def execute_shard(payload: Dict) -> Dict:
    """Worker-side shard execution (the pool's runner).

    ``payload`` carries the shard dict plus the store path; the worker
    re-opens the store locally (backend auto-detected from the path) and
    runs through the ordinary :func:`~repro.sim.experiment.run_single`
    path, so the result is saved under exactly the key the daemon planned
    for.  Returns the flattened result row plus the measured wall time —
    small enough to stream, complete enough for watch events.
    """
    shard = ShardSpec.from_dict(payload["shard"])
    t0 = time.perf_counter()
    result = run_single(store=payload["store"], **shard_run_kwargs(shard))
    return {
        "row": _json_row(result.as_row()),
        "wall_s": time.perf_counter() - t0,
    }


def _json_row(row: Dict) -> Dict:
    """A result row with NaNs nulled: shard rows travel as strict JSON
    over the service's HTTP surface (stdlib parsers on the other end)."""
    return {
        field: (None if value != value else value)
        if isinstance(value, float)
        else value
        for field, value in row.items()
    }
