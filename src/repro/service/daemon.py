"""The HTTP shell around :class:`~repro.service.core.SimulationService`.

Stdlib-only (``http.server``): a threading server on a local address,
one handler thread per connection.  Endpoints:

``POST /submit``
    Body: a :class:`~repro.service.jobs.JobRequest` dict.  Response:
    ``{"job_id": ...}`` (400 with an ``error`` body for invalid grids).
``GET /status`` / ``GET /status?job=ID``
    All jobs' progress, or one job's.
``GET /watch?job=ID[&timeout=S]``
    **Streams** the job's event log as JSONL — one ``job`` event, one
    ``shard`` event per cell as it completes (partial results while the
    sweep runs), one terminal ``done`` event — flushing per line.  The
    response carries no Content-Length and closes when the job ends:
    HTTP/1.0 close-delimited framing, which every stdlib client reads
    incrementally.
``GET /results?job=ID``
    JSONL of full per-shard store payloads (lossless result dicts).
``POST /shutdown``
    Stops the server loop (the CLI owns daemonization; shutdown is an
    endpoint so a smoke test can end a foreground daemon cleanly).
``GET /health``
    ``{"status": "ok", ...}`` liveness probe.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import telemetry
from .core import SimulationService

__all__ = ["ServiceServer", "serve"]

logger = telemetry.get_logger(__name__)


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.0: responses are delimited by connection close, which is
    # what makes the watch stream readable without chunked encoding.
    protocol_version = "HTTP/1.0"
    server_version = "repro-service"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        logger.debug("%s - %s", self.address_string(), format % args)

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(self, payload: dict, code: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json({"error": message}, code=code)

    def _route(self) -> Tuple[str, dict]:
        split = urlsplit(self.path)
        query = {
            name: values[-1]
            for name, values in parse_qs(split.query).items()
        }
        return split.path, query

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib signature
        path, query = self._route()
        try:
            if path == "/health":
                self._send_json({
                    "status": "ok",
                    "store": str(self.service.store.root),
                    "backend": self.service.store.backend.name,
                })
            elif path == "/status":
                self._send_json(self.service.status(query.get("job")))
            elif path == "/watch":
                self._stream_watch(query)
            elif path == "/results":
                self._stream_results(query)
            else:
                self._send_error_json(404, f"unknown path {path!r}")
        except ValueError as exc:  # unknown job, bad arguments
            self._send_error_json(404, str(exc))
        except BrokenPipeError:  # client went away mid-stream
            pass

    def do_POST(self) -> None:  # noqa: N802 - stdlib signature
        path, _ = self._route()
        if path == "/submit":
            length = int(self.headers.get("Content-Length") or 0)
            try:
                request = json.loads(self.rfile.read(length) or b"{}")
                job_id = self.service.submit(request)
            except (ValueError, KeyError, TypeError) as exc:
                self._send_error_json(400, str(exc))
                return
            self._send_json({"job_id": job_id})
        elif path == "/shutdown":
            self._send_json({"status": "stopping"})
            # shutdown() must not run on this handler thread's server
            # loop; hand it to a throwaway thread and return.
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    # -- streams -----------------------------------------------------------

    def _start_stream(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()

    def _stream_watch(self, query: dict) -> None:
        job_id = query.get("job")
        if not job_id:
            raise ValueError("watch requires ?job=ID")
        timeout = float(query["timeout"]) if "timeout" in query else None
        self.service.status(job_id)  # validate before committing a 200
        self._start_stream()
        for event in self.service.events(
            job_id, follow=True, timeout=timeout
        ):
            self.wfile.write((json.dumps(event) + "\n").encode())
            self.wfile.flush()

    def _stream_results(self, query: dict) -> None:
        job_id = query.get("job")
        if not job_id:
            raise ValueError("results requires ?job=ID")
        self.service.status(job_id)
        self._start_stream()
        for entry in self.service.results(job_id):
            self.wfile.write((json.dumps(entry) + "\n").encode())
            self.wfile.flush()


class ServiceServer:
    """A running daemon: HTTP server + service, started/stopped together.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.address`` after construction.
    """

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 8753,
    ) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = service  # type: ignore[attr-defined]
        self.address = (
            f"http://{self.httpd.server_address[0]}"
            f":{self.httpd.server_address[1]}"
        )
        self._thread: Optional[threading.Thread] = None

    def serve_forever(self) -> None:
        """Run in the calling thread until /shutdown (or KeyboardInterrupt)."""
        self.service.start()
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        finally:
            self.close()

    def start_background(self) -> "ServiceServer":
        """Run the server loop on a background thread (tests, notebooks)."""
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.stop()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ServiceServer":
        return self.start_background()

    def __exit__(self, *exc) -> None:
        self.close()


def serve(
    store,
    host: str = "127.0.0.1",
    port: int = 8753,
    workers: int = 2,
) -> ServiceServer:
    """Build a daemon (service + HTTP server) ready to run.

    The CLI calls ``serve(...).serve_forever()``; tests use the returned
    server as a context manager for a background instance.
    """
    service = SimulationService(store, workers=workers)
    return ServiceServer(service, host=host, port=port)
