"""Stdlib HTTP client for the simulation service daemon.

``urllib``-based (no dependencies), mirroring the daemon's endpoints:
``submit`` returns a job id, ``status`` a progress dict, ``watch`` and
``results`` *generators* over the streamed JSONL lines — a watch yields
each shard event as the daemon flushes it, which is what makes
``repro watch`` live rather than poll-and-print.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, Optional, Union
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from .jobs import JobRequest

__all__ = ["DEFAULT_URL", "ServiceClient", "ServiceError"]

#: Where `repro serve` listens by default.
DEFAULT_URL = "http://127.0.0.1:8753"


class ServiceError(RuntimeError):
    """A daemon-side rejection or an unreachable daemon."""


class ServiceClient:
    """Talk to a running ``repro serve`` daemon at ``url``."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _open(self, path: str, body: Optional[Dict] = None,
              timeout: Optional[float] = None):
        data = None if body is None else json.dumps(body).encode()
        request = Request(
            self.url + path,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            return urlopen(
                request,
                timeout=self.timeout if timeout is None else timeout,
            )
        except HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except ValueError:
                detail = ""
            raise ServiceError(
                f"{path}: HTTP {exc.code}"
                + (f" — {detail}" if detail else "")
            ) from None
        except URLError as exc:
            raise ServiceError(
                f"no service at {self.url} ({exc.reason}); "
                f"start one with `repro serve`"
            ) from None

    def _json(self, path: str, body: Optional[Dict] = None) -> Dict:
        with self._open(path, body) as response:
            return json.loads(response.read())

    def _jsonl(
        self, path: str, timeout: Optional[float] = None
    ) -> Iterator[Dict]:
        with self._open(path, timeout=timeout) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)

    # -- endpoints ---------------------------------------------------------

    def health(self) -> Dict:
        return self._json("/health")

    def submit(self, request: Union[JobRequest, Dict]) -> str:
        """Submit a sweep request; returns its job id."""
        if isinstance(request, JobRequest):
            request = request.to_dict()
        return self._json("/submit", body=request)["job_id"]

    def status(self, job_id: Optional[str] = None) -> Dict:
        path = "/status" + (f"?job={job_id}" if job_id else "")
        return self._json(path)

    def watch(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[Dict]:
        """Stream a job's events live until its terminal ``done`` event.

        ``timeout`` bounds the total watch (daemon-side); the socket
        itself never times out between events while the daemon is alive.
        """
        path = f"/watch?job={job_id}"
        if timeout is not None:
            path += f"&timeout={timeout}"
        # The stream lives as long as the job; disable the client-side
        # socket timeout and let the daemon's close end the iteration.
        return self._jsonl(path, timeout=max(self.timeout, timeout or 0.0)
                           if timeout is not None else 86_400.0)

    def results(self, job_id: str) -> Iterator[Dict]:
        """Stream a job's full per-shard result payloads."""
        return self._jsonl(f"/results?job={job_id}")

    def shutdown(self) -> Dict:
        return self._json("/shutdown", body={})
