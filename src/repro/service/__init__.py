"""The simulation job service.

A long-running daemon (``repro serve``) that accepts sweep submissions,
decomposes them into store-keyed shards, executes them on a
crash-tolerant process worker pool, dedups identical work across
concurrent requests (in-flight shards are shared, completed shards are
served from the experiment store), and streams per-cell results to
watching clients as JSONL events.

Layers, bottom-up:

* :mod:`repro.service.jobs` — requests, shards, and the store-key
  planning that makes shard identity equal store identity.
* :mod:`repro.service.pool` — the claim/complete worker pool that
  survives worker crashes by requeueing claimed shards.
* :mod:`repro.service.core` — :class:`SimulationService`: submission,
  dedup, job event logs, streaming.
* :mod:`repro.service.daemon` / :mod:`repro.service.client` — the local
  HTTP surface (`submit`/`status`/`watch`/`results`) and its stdlib
  client, used by the ``repro submit|status|watch|results`` commands.
"""

from .client import DEFAULT_URL, ServiceClient, ServiceError
from .core import SimulationService
from .daemon import ServiceServer, serve
from .jobs import (
    JobRequest,
    ShardSpec,
    execute_shard,
    expand_shards,
    shard_key,
    shard_params,
    shard_run_kwargs,
)
from .pool import WorkerPool

__all__ = [
    "DEFAULT_URL",
    "JobRequest",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ShardSpec",
    "SimulationService",
    "WorkerPool",
    "execute_shard",
    "expand_shards",
    "serve",
    "shard_key",
    "shard_params",
    "shard_run_kwargs",
]
