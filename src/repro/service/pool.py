"""A crash-tolerant process worker pool with a claim/complete protocol.

``concurrent.futures`` kills the whole pool when one worker dies
(``BrokenProcessPool``) — unacceptable for a long-running service where
a worker OOM-ing on one shard must not abandon every queued job.  This
pool runs plain ``multiprocessing`` workers over a task queue with an
explicit protocol:

``("claim", pid, task_id)``
    Sent by a worker the moment it dequeues a task, *before* running it.
``("done", pid, task_id, payload)`` / ``("failed", pid, task_id, error, tb)``
    Sent when the task finishes; ``failed`` carries the worker-side
    traceback (task exceptions never kill a worker).

A collector thread in the parent consumes these messages and watches
worker liveness: a dead worker (crash, OOM kill, SIGKILL) with an
outstanding claim gets its task **re-queued** and a replacement worker
spawned, so the shard runs again elsewhere — the service's
at-least-once execution guarantee.  (A worker dying in the instant
between dequeue and claim would orphan that one task; the window is a
few instructions wide and crash-requeue is best-effort recovery, not a
transactional queue.)  Callers must therefore tolerate duplicate
completions — a task can finish twice when a worker is killed after
completing but before the parent drains its message.

Workers are ``fork``-started: tasks need no pickling round-trip beyond
the queue itself, and tests can monkeypatch the runner before workers
spawn.  The runner executes simulation shards which re-open the
experiment store by path, so forked state stays trivial.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import traceback
from typing import Callable, Dict, Optional

from .. import telemetry

__all__ = ["WorkerPool"]

logger = telemetry.get_logger(__name__)


def _worker_main(runner: Callable, tasks, results) -> None:
    """Worker process body: claim, run, report; ``None`` poisons."""
    pid = os.getpid()
    while True:
        item = tasks.get()
        if item is None:
            return
        task_id, payload = item
        results.put(("claim", pid, task_id))
        try:
            out = runner(payload)
        except BaseException as exc:
            results.put((
                "failed",
                pid,
                task_id,
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            ))
        else:
            results.put(("done", pid, task_id, out))


class WorkerPool:
    """Fixed-size process pool executing ``runner(payload)`` tasks.

    ``on_done(task_id, payload)`` / ``on_failed(task_id, error, tb)``
    fire in the collector thread as completions arrive (callers do their
    own locking); ``on_claim(task_id)`` fires when a worker picks a task
    up.  ``requeues`` counts crash-recovered tasks.
    """

    #: Liveness-check cadence; also bounds shutdown latency.
    POLL_SECONDS = 0.2

    def __init__(
        self,
        runner: Callable,
        workers: int = 2,
        on_done: Optional[Callable] = None,
        on_failed: Optional[Callable] = None,
        on_claim: Optional[Callable] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.runner = runner
        self.workers = workers
        self.on_done = on_done
        self.on_failed = on_failed
        self.on_claim = on_claim
        self.requeues = 0
        self._ctx = mp.get_context("fork")
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs: Dict[int, mp.Process] = {}  # guarded by: self._lock
        self._claims: Dict[int, str] = {}  # guarded by: self._lock
        self._pending: Dict[str, object] = {}  # guarded by: self._lock
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._collector: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for _ in range(self.workers):
            self._spawn()
        self._collector = threading.Thread(
            target=self._collect, name="pool-collector", daemon=True
        )
        self._collector.start()

    def stop(self) -> None:
        """Drain-free shutdown: poison workers, join everything."""
        self._stopping.set()
        with self._lock:
            procs = list(self._procs.values())
        for _ in procs:
            self._tasks.put(None)
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        if self._collector is not None:
            self._collector.join(timeout=5.0)

    def _spawn(self) -> None:
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self.runner, self._tasks, self._results),
            daemon=True,
        )
        proc.start()
        with self._lock:
            self._procs[proc.pid] = proc

    # -- task flow ---------------------------------------------------------

    def submit(self, task_id: str, payload) -> None:
        """Queue one task.  ``task_id`` must be unique among live tasks."""
        with self._lock:
            self._pending[task_id] = payload
        self._tasks.put((task_id, payload))

    def outstanding(self) -> int:
        """Tasks submitted but not yet completed (queued or claimed)."""
        with self._lock:
            return len(self._pending)

    def _collect(self) -> None:
        while not self._stopping.is_set():
            try:
                msg = self._results.get(timeout=self.POLL_SECONDS)
            except queue.Empty:
                self._reap_dead_workers()
                continue
            kind = msg[0]
            if kind == "claim":
                _, pid, task_id = msg
                requeue = None
                with self._lock:
                    if pid in self._procs:
                        self._claims[pid] = task_id
                    elif task_id in self._pending:
                        # The claim outlived its worker (killed between
                        # claiming and the liveness sweep that already
                        # reaped it): requeue straight away.
                        requeue = (task_id, self._pending[task_id])
                if requeue is not None:
                    self._requeue(*requeue)
                if self.on_claim is not None:
                    self.on_claim(task_id)
            elif kind == "done":
                _, pid, task_id, payload = msg
                self._complete(pid, task_id)
                if self.on_done is not None:
                    self.on_done(task_id, payload)
            elif kind == "failed":
                _, pid, task_id, error, tb = msg
                self._complete(pid, task_id)
                if self.on_failed is not None:
                    self.on_failed(task_id, error, tb)

    def _complete(self, pid: int, task_id: str) -> None:
        with self._lock:
            if self._claims.get(pid) == task_id:
                del self._claims[pid]
            self._pending.pop(task_id, None)

    def _reap_dead_workers(self) -> None:
        """Requeue claims held by dead workers; keep the pool at size."""
        with self._lock:
            dead = [
                (pid, proc)
                for pid, proc in self._procs.items()
                if not proc.is_alive()
            ]
            for pid, _ in dead:
                del self._procs[pid]
            orphans = [
                (pid, self._claims.pop(pid))
                for pid, _ in dead
                if pid in self._claims
            ]
            resubmit = [
                (task_id, self._pending[task_id])
                for _, task_id in orphans
                if task_id in self._pending
            ]
        for pid, proc in dead:
            proc.join(timeout=0.1)
            logger.warning(
                "worker %d died (exitcode %s); respawning",
                pid, proc.exitcode,
            )
            if not self._stopping.is_set():
                self._spawn()
        for task_id, payload in resubmit:
            self._requeue(task_id, payload)

    def _requeue(self, task_id: str, payload) -> None:
        self.requeues += 1
        telemetry.count("service.shard_requeues")
        logger.warning("requeueing task %s from dead worker", task_id)
        self._tasks.put((task_id, payload))
