"""The simulation service: job lifecycle, shard dedup, event streams.

:class:`SimulationService` is the daemon's brain (the HTTP layer in
:mod:`repro.service.daemon` is a thin shell around it):

* **Submission** expands a :class:`~repro.service.jobs.JobRequest` into
  shards and plans each one by its store cache key: a key already
  **stored** is served straight from the experiment store (source
  ``cached``); a key already **in flight** for any other job attaches
  this job to the existing computation (source ``shared``); only novel
  keys are queued to the worker pool (source ``new``).  Identical
  concurrent submissions therefore compute each shard exactly once —
  the acceptance property the e2e tests pin.
* **Execution** happens in the crash-tolerant pool
  (:mod:`repro.service.pool`); workers save through the shared store,
  and the collector marks every subscribed job as each shard lands.
* **Streaming**: every job keeps an ordered event list (``job`` ->
  ``shard``* -> ``done``) guarded by one condition variable;
  :meth:`SimulationService.events` replays and then follows it, which
  is what ``repro watch`` turns into JSONL.

Telemetry: ``service.job`` / ``service.shard`` spans are recorded at
completion time (worker wall seconds ride in the span attrs — the span
itself closes immediately because the work happened in another
process), plus ``service.*`` counters for submissions, dedup sources,
failures, and requeues.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional, Union

from .. import telemetry
from ..store import ExperimentStore, cache_key, coerce_store, store_dir
from .jobs import (
    JobRequest,
    ShardSpec,
    _json_row,
    execute_shard,
    expand_shards,
    shard_params,
)
from .pool import WorkerPool

__all__ = ["JobState", "ShardState", "SimulationService"]

logger = telemetry.get_logger(__name__)


class ShardState:
    """One keyed shard's lifecycle, shared by every job that needs it."""

    __slots__ = ("spec", "key", "status", "summary", "error", "jobs")

    def __init__(self, spec: ShardSpec, key: str) -> None:
        self.spec = spec
        self.key = key
        self.status = "queued"  # queued | running | done | failed
        self.summary: Optional[Dict] = None
        self.error: Optional[str] = None
        #: Jobs subscribed while the shard is in flight.
        self.jobs: List[str] = []


class JobState:
    """One submitted request: its shards, progress, and event log."""

    def __init__(self, job_id: str, request: JobRequest) -> None:
        self.job_id = job_id
        self.request = request
        self.created = time.time()
        #: Ordered shard keys (the request's cell order).
        self.shard_keys: List[str] = []
        #: Per-key dedup source for this job: new | shared | cached.
        self.sources: Dict[str, str] = {}
        self.pending: set = set()
        self.failed = 0
        self.finished = False
        self.events: List[Dict] = []

    @property
    def status(self) -> str:
        if not self.finished:
            return "running"
        return "failed" if self.failed else "done"

    def describe(self) -> Dict:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "workload": self.request.workload,
            "shards": len(self.shard_keys),
            "completed": len(self.shard_keys) - len(self.pending),
            "failed": self.failed,
            "sources": {
                source: sum(
                    1 for s in self.sources.values() if s == source
                )
                for source in ("new", "shared", "cached")
            },
            "created": self.created,
        }


class SimulationService:
    """The job service: submit sweeps, dedup shards, stream results.

    ``store`` (required — dedup is store-keyed) accepts anything
    :func:`repro.store.coerce_store` does.  ``runner`` is the worker-side
    shard executor, injectable for tests; the default runs
    :func:`repro.service.jobs.execute_shard`.
    """

    def __init__(
        self,
        store: Union[str, ExperimentStore],
        workers: int = 2,
        runner=execute_shard,
    ) -> None:
        self.store = coerce_store(store)
        if self.store is None:
            raise ValueError("the simulation service requires a store")
        self._store_path = store_dir(self.store)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, JobState] = {}  # guarded by: self._lock
        self._shards: Dict[str, ShardState] = {}  # guarded by: self._lock
        self._seq = 0  # guarded by: self._lock
        self.pool = WorkerPool(
            runner,
            workers=workers,
            on_done=self._on_shard_done,
            on_failed=self._on_shard_failed,
            on_claim=self._on_shard_claim,
        )
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SimulationService":
        self.pool.start()
        self._started = True
        return self

    def stop(self) -> None:
        if self._started:
            self.pool.stop()
            self._started = False

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission --------------------------------------------------------

    def submit(self, request: Union[JobRequest, Dict]) -> str:
        """Plan and enqueue a request; returns its job id immediately.

        Raises ``ValueError`` for invalid requests (unknown switch,
        unknown workload, empty grid) before any state is created.
        """
        if isinstance(request, dict):
            request = JobRequest.from_dict(request)
        shards = expand_shards(request)
        # Key every shard (and thereby validate the whole grid) before
        # touching service state: a half-registered invalid job would
        # wedge its watchers.
        planned = []
        seen = set()
        for spec in shards:
            params = shard_params(spec)
            key = cache_key(params)
            if key in seen:
                continue  # a degenerate grid repeating a cell
            seen.add(key)
            planned.append((spec, key, params))
        with self._lock:
            self._seq += 1
            job = JobState(f"job-{self._seq:04d}", request)
            self._jobs[job.job_id] = job
            telemetry.count("service.jobs")
            for spec, key, params in planned:
                job.shard_keys.append(key)
                self._plan_shard(job, spec, key, params)
            job.events.insert(0, {
                "event": "job",
                "job_id": job.job_id,
                "workload": request.workload,
                "shards": len(job.shard_keys),
                "sources": dict(job.describe()["sources"]),
            })
            if not job.pending:
                self._finish_job(job)
            self._cond.notify_all()
            return job.job_id

    # requires: self._lock
    def _plan_shard(
        self, job: JobState, spec: ShardSpec, key: str, params: Dict
    ) -> None:
        """Route one shard: attach, serve from store, or enqueue."""
        state = self._shards.get(key)
        if state is not None and state.status in ("queued", "running"):
            state.jobs.append(job.job_id)
            job.sources[key] = "shared"
            job.pending.add(key)
            telemetry.count("service.shards_shared")
            return
        if state is not None and state.status == "done":
            job.sources[key] = "cached"
            telemetry.count("service.shards_cached")
            job.events.append(self._shard_event(job.job_id, state, "cached"))
            return
        # Unseen key — or one whose last attempt failed, which a fresh
        # submission retries rather than inheriting the stale failure.
        cached = self.store.fetch(params)
        if cached is not None:
            state = ShardState(spec, key)
            state.status = "done"
            state.summary = _json_row(cached.as_row())
            self._shards[key] = state
            job.sources[key] = "cached"
            telemetry.count("service.shards_cached")
            job.events.append(self._shard_event(job.job_id, state, "cached"))
            return
        state = ShardState(spec, key)
        state.jobs.append(job.job_id)
        self._shards[key] = state
        job.sources[key] = "new"
        job.pending.add(key)
        telemetry.count("service.shards_queued")
        self.pool.submit(
            key, {"shard": spec.to_dict(), "store": self._store_path}
        )

    # -- pool callbacks (collector thread) ---------------------------------

    def _on_shard_claim(self, key: str) -> None:
        with self._lock:
            state = self._shards.get(key)
            if state is not None and state.status == "queued":
                state.status = "running"

    def _on_shard_done(self, key: str, payload: Dict) -> None:
        with self._lock:
            state = self._shards.get(key)
            if state is None or state.status in ("done", "failed"):
                return  # late duplicate from a crash-requeued shard
            state.status = "done"
            state.summary = payload.get("row")
            wall_s = payload.get("wall_s")
            with telemetry.trace(
                "service.shard",
                key=key,
                switch=state.spec.switch,
                load=state.spec.load,
                seed=state.spec.seed,
                wall_s=wall_s,
            ):
                pass
            telemetry.count("service.shards_computed")
            if wall_s is not None:
                telemetry.observe("service.shard_s", wall_s)
            self._settle_shard(state)

    def _on_shard_failed(self, key: str, error: str, tb: str) -> None:
        with self._lock:
            state = self._shards.get(key)
            if state is None or state.status in ("done", "failed"):
                return
            state.status = "failed"
            state.error = error
            logger.warning("shard %s failed: %s\n%s", key, error, tb)
            telemetry.count("service.shard_failures")
            self._settle_shard(state, failed=True)

    # requires: self._lock
    def _settle_shard(self, state: ShardState, failed: bool = False) -> None:
        """Deliver a finished shard to every subscribed job (lock held)."""
        subscribers, state.jobs = state.jobs, []
        for job_id in subscribers:
            job = self._jobs[job_id]
            if failed:
                job.failed += 1
            job.events.append(
                self._shard_event(job_id, state, job.sources[state.key])
            )
            job.pending.discard(state.key)
            if not job.pending and not job.finished:
                self._finish_job(job)
        self._cond.notify_all()

    def _finish_job(self, job: JobState) -> None:
        job.finished = True
        job.events.append({
            "event": "done",
            "job_id": job.job_id,
            "status": job.status,
            "shards": len(job.shard_keys),
            "failed": job.failed,
        })
        with telemetry.trace(
            "service.job",
            job_id=job.job_id,
            shards=len(job.shard_keys),
            failed=job.failed,
            elapsed_s=time.time() - job.created,
        ):
            pass
        telemetry.count("service.jobs_finished")

    @staticmethod
    def _shard_event(job_id: str, state: ShardState, source: str) -> Dict:
        event = {
            "event": "shard",
            "job_id": job_id,
            "key": state.key,
            "switch": state.spec.switch,
            "load": state.spec.load,
            "seed": state.spec.seed,
            "status": state.status,
            "source": source,
        }
        if state.summary is not None:
            event["summary"] = state.summary
        if state.error is not None:
            event["error"] = state.error
        return event

    # -- client surface ----------------------------------------------------

    def _job(self, job_id: str) -> JobState:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                known = ", ".join(sorted(self._jobs)) or "(none)"
                raise ValueError(
                    f"unknown job {job_id!r}; known: {known}"
                ) from None

    def status(self, job_id: Optional[str] = None) -> Dict:
        """One job's progress dict, or (without an id) all jobs'."""
        if job_id is not None:
            with self._lock:
                return self._job(job_id).describe()
        with self._lock:
            return {
                "jobs": [
                    job.describe()
                    for job in sorted(
                        self._jobs.values(), key=lambda j: j.job_id
                    )
                ],
                "shards": len(self._shards),
                "outstanding": self.pool.outstanding(),
            }

    def events(
        self,
        job_id: str,
        follow: bool = False,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict]:
        """Replay a job's event log; with ``follow``, keep yielding new
        events until the job finishes (or ``timeout`` elapses)."""
        job = self._job(job_id)
        deadline = None if timeout is None else time.time() + timeout
        index = 0
        while True:
            with self._cond:
                while index >= len(job.events):
                    if job.finished or not follow:
                        return
                    wait = WAIT_SLICE
                    if deadline is not None:
                        wait = min(wait, deadline - time.time())
                        if wait <= 0:
                            return
                    self._cond.wait(wait)
                batch = list(job.events[index:])
                index = len(job.events)
            for event in batch:
                yield event
            if not follow:
                return

    def wait(self, job_id: str, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; True on completion."""
        job = self._job(job_id)
        deadline = None if timeout is None else time.time() + timeout
        with self._cond:
            while not job.finished:
                wait = WAIT_SLICE
                if deadline is not None:
                    wait = min(wait, deadline - time.time())
                    if wait <= 0:
                        return False
                self._cond.wait(wait)
        return True

    def results(self, job_id: str) -> Iterator[Dict]:
        """Full per-shard results (store payloads) in cell order.

        Yields one dict per shard: identity, status, and — for completed
        shards — the complete lossless result payload from the store.
        """
        job = self._job(job_id)
        with self._lock:
            snapshot = [
                (key, self._shards.get(key)) for key in job.shard_keys
            ]
        for key, state in snapshot:
            entry: Dict = {"key": key}
            if state is not None:
                entry.update(
                    switch=state.spec.switch,
                    load=state.spec.load,
                    seed=state.spec.seed,
                    status=state.status,
                )
                if state.error is not None:
                    entry["error"] = state.error
            result = self.store.fetch_by_key(key)
            if result is not None:
                # Result streams are summaries for clients: the exact
                # histogram travels, the bulky per-packet samples do not.
                entry["result"] = result.to_dict(include_samples=False)
                entry["status"] = "done"
            yield entry


#: Condition-wait slice: bounds stream latency for follow/wait loops.
WAIT_SLICE = 0.25
