"""Latin squares for coordinating stripe placements across input ports.

Paper §3.3.3: the N permutations mapping each input port's VOQs to primary
intermediate ports must *jointly* balance the output side as well — every
row **and** every column of the matrix ``A[i][j] = sigma_i(j)`` must be a
permutation of the port set.  Such a matrix is a Latin square (the paper
calls it an Orthogonal Latin Square, following its combinatorics reference;
we keep the paper's acronym OLS in API names for traceability).

Two constructions are provided:

* :func:`weakly_uniform_ols` — the paper's O(N log N) construction
  ``A[i][j] = (sigma_R(i) + sigma_C(j)) mod N`` from two independent uniform
  random permutations.  Every row and every column is *marginally* a uniform
  random permutation, which is all the worst-case analysis of §4 needs.
* :class:`JacobsonMatthewsSampler` — the Jacobson–Matthews Markov chain
  (paper reference [8]), which samples approximately *strongly* uniform
  Latin squares.  Generating exactly uniform OLS in polynomial time is the
  open problem the paper cites; the MCMC sampler is the standard practical
  approximation and is included as an extension for ablation studies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .permutation import is_permutation, random_permutation

__all__ = [
    "weakly_uniform_ols",
    "circulant_ols",
    "is_latin_square",
    "row_permutations",
    "column_permutations",
    "JacobsonMatthewsSampler",
]


def is_latin_square(square: Sequence[Sequence[int]]) -> bool:
    """Whether every row and every column is a permutation of ``0..N-1``.

    >>> is_latin_square([[0, 1], [1, 0]])
    True
    >>> is_latin_square([[0, 1], [0, 1]])
    False
    """
    n = len(square)
    if any(len(row) != n for row in square):
        return False
    for row in square:
        if not is_permutation(list(row)):
            return False
    for j in range(n):
        if not is_permutation([square[i][j] for i in range(n)]):
            return False
    return True


def circulant_ols(n: int) -> List[List[int]]:
    """The deterministic circulant Latin square ``A[i][j] = (i + j) mod n``.

    This is the weakly uniform construction with both permutations set to
    the identity; used as the no-randomization ablation baseline.
    """
    return [[(i + j) % n for j in range(n)] for i in range(n)]


def weakly_uniform_ols(n: int, rng: np.random.Generator) -> List[List[int]]:
    """The paper's weakly uniform random OLS (§3.3.3).

    ``A[i][j] = (sigma_R(i) + sigma_C(j)) mod n`` where ``sigma_R`` and
    ``sigma_C`` are independent uniform random permutations.  Each row and
    each column of the result is marginally a uniform random permutation of
    ``0..n-1`` (the rows are *not* independent of one another — hence
    "weakly" uniform — but marginals are all §4 requires).

    >>> import numpy as np
    >>> is_latin_square(weakly_uniform_ols(8, np.random.default_rng(0)))
    True
    """
    sigma_r = random_permutation(n, rng)
    sigma_c = random_permutation(n, rng)
    return [[(sigma_r[i] + sigma_c[j]) % n for j in range(n)] for i in range(n)]


def row_permutations(square: Sequence[Sequence[int]]) -> List[List[int]]:
    """The rows of the square as a list of permutations (defensive copies)."""
    return [list(row) for row in square]


def column_permutations(square: Sequence[Sequence[int]]) -> List[List[int]]:
    """The columns of the square as a list of permutations."""
    n = len(square)
    return [[square[i][j] for i in range(n)] for j in range(n)]


class JacobsonMatthewsSampler:
    """Approximately uniform Latin-square sampling via the JM Markov chain.

    The state is the 0/1 incidence cube ``X[r][c][s]`` of a Latin square
    (``X[r][c][s] == 1`` iff cell ``(r, c)`` holds symbol ``s``), extended
    with "improper" states containing exactly one ``-1`` entry.  Each move
    perturbs a 2x2x2 subcube by +/-1 so that all line sums stay equal to 1;
    the chain is connected and converges to the uniform distribution over
    Latin squares (Jacobson & Matthews, 1996).

    Parameters
    ----------
    n:
        Order of the Latin square.
    rng:
        Source of randomness.
    initial:
        Optional starting square; defaults to the circulant square.
    """

    def __init__(
        self,
        n: int,
        rng: np.random.Generator,
        initial: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        if n < 2:
            raise ValueError("Latin square order must be at least 2")
        self.n = n
        self._rng = rng
        square = initial if initial is not None else circulant_ols(n)
        if not is_latin_square(square):
            raise ValueError("initial state is not a Latin square")
        self._cube = np.zeros((n, n, n), dtype=np.int8)
        for r in range(n):
            for c in range(n):
                self._cube[r, c, square[r][c]] = 1
        # Location of the -1 cell when the state is improper, else None.
        self._improper_cell: Optional[tuple] = None

    @property
    def is_proper(self) -> bool:
        """Whether the current state is a genuine (proper) Latin square."""
        return self._improper_cell is None

    def _apply_move(self, r: int, c: int, s: int, r2: int, c2: int, s2: int) -> None:
        """Add the +/-1 pattern of the 2x2x2 subcube move."""
        cube = self._cube
        cube[r, c, s] += 1
        cube[r, c2, s2] += 1
        cube[r2, c, s2] += 1
        cube[r2, c2, s] += 1
        cube[r, c, s2] -= 1
        cube[r, c2, s] -= 1
        cube[r2, c, s] -= 1
        cube[r2, c2, s2] -= 1
        if cube[r2, c2, s2] == -1:
            self._improper_cell = (r2, c2, s2)
        else:
            self._improper_cell = None

    def _ones_on_line(self, axis: int, fixed: tuple) -> List[int]:
        """Indices with value 1 along one line of the cube."""
        if axis == 0:
            line = self._cube[:, fixed[0], fixed[1]]
        elif axis == 1:
            line = self._cube[fixed[0], :, fixed[1]]
        else:
            line = self._cube[fixed[0], fixed[1], :]
        return [int(i) for i in np.nonzero(line == 1)[0]]

    def step(self) -> None:
        """One move of the JM chain (proper -> maybe improper, or back)."""
        rng = self._rng
        n = self.n
        if self._improper_cell is None:
            # Pick a random 0-cell (rejection sampling; density of zeros is
            # (n-1)/n per line so this terminates quickly).
            while True:
                r = int(rng.integers(n))
                c = int(rng.integers(n))
                s = int(rng.integers(n))
                if self._cube[r, c, s] == 0:
                    break
            (s2,) = self._ones_on_line(2, (r, c))
            (r2,) = self._ones_on_line(0, (c, s))
            (c2,) = self._ones_on_line(1, (r, s))
        else:
            r, c, s = self._improper_cell
            s_choices = self._ones_on_line(2, (r, c))
            r_choices = self._ones_on_line(0, (c, s))
            c_choices = self._ones_on_line(1, (r, s))
            s2 = s_choices[int(rng.integers(len(s_choices)))]
            r2 = r_choices[int(rng.integers(len(r_choices)))]
            c2 = c_choices[int(rng.integers(len(c_choices)))]
        self._apply_move(r, c, s, r2, c2, s2)

    def run_until_proper(self, min_steps: int) -> None:
        """Run at least ``min_steps`` moves, then continue until proper."""
        for _ in range(min_steps):
            self.step()
        while not self.is_proper:
            self.step()

    def sample(self, mixing_steps: Optional[int] = None) -> List[List[int]]:
        """Mix the chain and return the current (proper) Latin square.

        ``mixing_steps`` defaults to ``n**3`` moves, the customary heuristic
        for near-uniform samples.
        """
        steps = mixing_steps if mixing_steps is not None else self.n**3
        self.run_until_proper(steps)
        square = [[-1] * self.n for _ in range(self.n)]
        rows, cols, syms = np.nonzero(self._cube == 1)
        for r, c, s in zip(rows, cols, syms):
            square[int(r)][int(c)] = int(s)
        return square
