"""The Sprinklers switch (paper §3): the primary contribution, end to end.

Data path of a packet through the switch:

1. **Arrival** — the packet joins its VOQ's :class:`StripeAssembler` (the
   "ready queue" of §3.4.2) and waits for a full stripe of the VOQ's
   current size to accumulate.
2. **Release** — the completed stripe passes the clearance pipeline (a
   no-op unless the VOQ recently resized; §5) into the input's staging
   queue.
3. **Safe insertion** — when the fabric-1 pointer is not strictly inside
   the stripe's interval, the stripe is plastered into the input's LSF
   grid (one packet per interval row), guaranteeing it will leave the
   input in consecutive slots.
4. **Stage 1** — each slot, the input serves the largest nonempty stripe
   class of the row fabric 1 currently connects; the packet crosses to its
   intermediate port carrying its stripe-size header.
5. **Stage 2** — the intermediate port files the packet by (output, stripe
   size) and, when fabric 2 polls an output, serves that output's largest
   nonempty class.  The fabrics' matched staggering makes these local
   greedy choices globally consistent, so the stripe reaches its output in
   consecutive slots from consecutive ports — hence zero reordering.

The switch runs in two modes:

* **oracle** (default): stripe sizes fixed from the configured rate matrix
  via Equation (1) — the regime analyzed in §4;
* **adaptive**: sizes follow online EWMA rate estimates with hysteresis,
  and resizes pass through the clearance protocol (old-size stripes drain
  before new-size stripes enter) so ordering is preserved across resizes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..switching.packet import Packet
from ..switching.switch_base import TwoStageSwitch
from .dyadic import DyadicInterval, dyadic_interval_for
from .interval_assignment import PlacementMode, StripeIntervalAssignment
from .lsf import LsfInputScheduler, LsfIntermediateScheduler
from .rate_estimation import EwmaRateEstimator, HysteresisSizer
from .striping import Stripe, StripeAssembler

__all__ = ["SprinklersSwitch", "VoqPipeline"]


class VoqPipeline:
    """Per-VOQ stripe pipeline: assembly, clearance, release accounting.

    Ordering across a resize is protected by *clearance* (paper §5): a
    stripe cut with a new interval is held until every packet of
    previously released stripes has departed the switch.  The pipeline
    generalizes this to arbitrary resize churn by releasing, at each
    clearance instant, the maximal run of same-interval stripes at the head
    of the hold queue.
    """

    __slots__ = ("assembler", "release_interval", "hold", "inflight")

    def __init__(self, assembler: StripeAssembler) -> None:
        self.assembler = assembler
        self.release_interval: DyadicInterval = assembler.interval
        self.hold: Deque[Stripe] = deque()
        self.inflight = 0  # packets of released stripes still in the switch

    def on_stripe_complete(self, stripe: Stripe) -> List[Stripe]:
        """A stripe finished assembly; return the stripes releasable now."""
        self.hold.append(stripe)
        return self._drain_hold()

    def on_packet_departed(self) -> List[Stripe]:
        """A released packet left the switch; maybe clearance completed."""
        if self.inflight <= 0:
            raise AssertionError("departure for a VOQ with nothing in flight")
        self.inflight -= 1
        return self._drain_hold()

    def _drain_hold(self) -> List[Stripe]:
        released: List[Stripe] = []
        while self.hold:
            head = self.hold[0]
            if head.interval != self.release_interval:
                if self.inflight > 0:
                    break  # old-interval stripes still draining
                self.release_interval = head.interval
            self.hold.popleft()
            self.inflight += head.size
            released.append(head)
        return released

    def held_packets(self) -> int:
        """Packets inside held (not yet released) stripes."""
        return sum(s.size for s in self.hold)


class SprinklersSwitch(TwoStageSwitch):
    """Randomized variable-size striping load-balanced switch (paper §3).

    Parameters
    ----------
    assignment:
        The switch-wide stripe-interval configuration (primary ports from a
        weakly uniform random OLS, dyadic intervals sized by Equation (1)).
    adaptive:
        Enable online rate estimation and stripe resizing.  The assignment
        still provides primary ports and *initial* sizes.
    estimator_beta, sizer_patience:
        Adaptation knobs (see :mod:`repro.core.rate_estimation`).
    record_stripe_events:
        Keep per-stripe transmit/receive timelines (used by the continuity
        tests; costs memory on long runs).
    input_buffer:
        Optional cap on the packets buffered at each input port (shared
        across that input's VOQ assemblers, clearance holds, staging and
        LSF grid — i.e. the input line card's total memory).  Arrivals to
        a full input are dropped (drop-tail).  Default: infinite, the
        regime of the paper's analysis.
    """

    name = "sprinklers"
    guarantees_ordering = True

    def __init__(
        self,
        assignment: StripeIntervalAssignment,
        adaptive: bool = False,
        estimator_beta: float = 0.01,
        sizer_patience: int = 8,
        record_stripe_events: bool = False,
        input_buffer: Optional[int] = None,
    ) -> None:
        super().__init__(assignment.n)
        n = assignment.n
        self.assignment = assignment
        self.adaptive = adaptive
        self._pipelines: List[List[VoqPipeline]] = [
            [
                VoqPipeline(
                    StripeAssembler(i, j, assignment.interval(i, j))
                )
                for j in range(n)
            ]
            for i in range(n)
        ]
        self._staging: List[List[Stripe]] = [[] for _ in range(n)]
        self._input_lsf: List[LsfInputScheduler] = [
            LsfInputScheduler(n) for _ in range(n)
        ]
        self._mid_lsf: List[LsfIntermediateScheduler] = [
            LsfIntermediateScheduler(n) for _ in range(n)
        ]
        self._next_stripe_id = 0
        self._estimator = (
            EwmaRateEstimator(beta=estimator_beta) if adaptive else None
        )
        self._sizer = HysteresisSizer(n, patience=sizer_patience) if adaptive else None
        self.resizes = 0
        self.record_stripe_events = record_stripe_events
        self.stripe_tx: Dict[int, List[Tuple[int, int]]] = {}
        self.stripe_rx: Dict[int, List[int]] = {}
        if input_buffer is not None and input_buffer < 1:
            raise ValueError("input_buffer must be positive")
        self.input_buffer = input_buffer
        self._input_occupancy = [0] * n

    # -- convenience constructors ---------------------------------------------

    @classmethod
    def from_rates(
        cls,
        rates,
        seed: int = 0,
        mode: str = PlacementMode.OLS,
        fixed_stripe_size: Optional[int] = None,
        **kwargs,
    ) -> "SprinklersSwitch":
        """Build a switch from a rate matrix and a seed (oracle sizing)."""
        # repro: lint-ignore[RNG003] -- public constructor: raw seed is its API
        rng = np.random.default_rng(seed)
        assignment = StripeIntervalAssignment(
            rates, rng=rng, mode=mode, fixed_stripe_size=fixed_stripe_size
        )
        return cls(assignment, **kwargs)

    # -- input side --------------------------------------------------------------

    def _accept(self, slot: int, packets: List[Packet]) -> None:
        for packet in packets:
            i, j = packet.input_port, packet.output_port
            if (
                self.input_buffer is not None
                and self._input_occupancy[i] >= self.input_buffer
            ):
                self._drop(packet)
                continue
            self._input_occupancy[i] += 1
            pipeline = self._pipelines[i][j]
            if self.adaptive:
                rate = self._estimator.observe_arrival((i, j), slot)
                new_size = self._sizer.evaluate(
                    (i, j), pipeline.assembler.stripe_size, rate
                )
                if new_size is not None:
                    primary = self.assignment.primary_port(i, j)
                    pipeline.assembler.set_interval(
                        dyadic_interval_for(primary, new_size, self.n)
                    )
                    self.resizes += 1
            stripe = pipeline.assembler.push(packet, self._next_stripe_id)
            if stripe is not None:
                self._next_stripe_id += 1
                for member in stripe.packets:
                    member.assembled_slot = slot
                self._staging[i].extend(pipeline.on_stripe_complete(stripe))

    def _serve_input(
        self, slot: int, input_port: int, mid_port: int
    ) -> Optional[Packet]:
        lsf = self._input_lsf[input_port]
        staging = self._staging[input_port]
        if staging:
            remaining: List[Stripe] = []
            for stripe in staging:
                if lsf.can_insert(stripe, mid_port):
                    lsf.insert(stripe)
                else:
                    remaining.append(stripe)
            self._staging[input_port] = remaining
        packet = lsf.serve(mid_port)
        if packet is not None:
            self._input_occupancy[input_port] -= 1
            if self.record_stripe_events:
                self.stripe_tx.setdefault(packet.stripe_id, []).append(
                    (slot, mid_port)
                )
        return packet

    # -- intermediate side ----------------------------------------------------------

    def _deliver(self, slot: int, mid_port: int, packet: Packet) -> None:
        self._mid_lsf[mid_port].deliver(packet)

    def _serve_intermediate(
        self, slot: int, mid_port: int, output_port: int
    ) -> Optional[Packet]:
        return self._mid_lsf[mid_port].serve(output_port)

    # -- departure / clearance --------------------------------------------------------

    def _on_departure(self, slot: int, packet: Packet) -> None:
        if self.record_stripe_events:
            self.stripe_rx.setdefault(packet.stripe_id, []).append(slot)
        pipeline = self._pipelines[packet.input_port][packet.output_port]
        released = pipeline.on_packet_departed()
        if released:
            self._staging[packet.input_port].extend(released)

    # -- accounting ----------------------------------------------------------------------

    def buffered_packets(self) -> int:
        total = 0
        for row in self._pipelines:
            for pipeline in row:
                total += pipeline.assembler.pending_count
                total += pipeline.held_packets()
        for staging in self._staging:
            total += sum(stripe.size for stripe in staging)
        total += sum(lsf.occupancy for lsf in self._input_lsf)
        total += sum(lsf.occupancy for lsf in self._mid_lsf)
        return total

    def assembly_backlog(self) -> int:
        """Packets still waiting for their stripe to fill (never released)."""
        return sum(
            pipeline.assembler.pending_count
            for row in self._pipelines
            for pipeline in row
        )

    def staging_backlog(self) -> int:
        """Packets inside stripes awaiting safe insertion."""
        return sum(
            stripe.size for staging in self._staging for stripe in staging
        )

    def stripe_size(self, input_port: int, output_port: int) -> int:
        """The current stripe size of VOQ (input, output)."""
        return self._pipelines[input_port][output_port].assembler.stripe_size
