"""Dyadic interval algebra over the intermediate-port range.

The Sprinklers design (paper §3.1) requires any two stripe intervals to
either "bear hug" (one contains the other) or not touch at all.  This is
achieved by making ``N`` a power of two and every stripe interval *dyadic*:
an interval obtained by splitting ``(0, N]`` into ``2^k`` equal parts.

The paper writes dyadic intervals as ``(2^k0 * m, 2^k0 * (m+1)]`` with ports
numbered ``1..N``.  This module uses the equivalent 0-indexed, half-open form
``[start, start + size)`` with ``size`` a power of two and ``start`` a
multiple of ``size``.  The family of dyadic intervals of ``[0, N)`` is a
laminar family — the structural property all of Sprinklers' scheduling
consistency arguments rest on.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = [
    "DyadicInterval",
    "is_power_of_two",
    "log2_int",
    "dyadic_interval_for",
    "all_dyadic_intervals",
]


def is_power_of_two(n: int) -> bool:
    """Return ``True`` iff ``n`` is a positive power of two.

    >>> [is_power_of_two(n) for n in (0, 1, 2, 3, 4, 6, 8)]
    [False, True, True, False, True, False, True]
    """
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Exact integer log2 of a power of two.

    >>> log2_int(8)
    3
    """
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


class DyadicInterval:
    """A dyadic interval ``[start, start + size)`` of the port range ``[0, N)``.

    ``size`` must be a power of two and ``start`` a multiple of ``size``.
    Instances are immutable, hashable, and ordered by ``(start, size)``.

    >>> iv = DyadicInterval(4, 4)
    >>> iv.contains_port(5), iv.contains_port(8)
    (True, False)
    >>> iv.ports()
    range(4, 8)
    """

    __slots__ = ("start", "size")

    def __init__(self, start: int, size: int) -> None:
        if not is_power_of_two(size):
            raise ValueError(f"size must be a power of two, got {size}")
        if start < 0:
            raise ValueError(f"start must be nonnegative, got {start}")
        if start % size != 0:
            raise ValueError(
                f"start={start} is not aligned to size={size}; "
                "interval is not dyadic"
            )
        self.start = start
        self.size = size

    # -- basic geometry ----------------------------------------------------

    @property
    def end(self) -> int:
        """One past the last port of the interval."""
        return self.start + self.size

    @property
    def level(self) -> int:
        """log2 of the interval size."""
        return log2_int(self.size)

    def ports(self) -> range:
        """The ports covered by this interval."""
        return range(self.start, self.end)

    def contains_port(self, port: int) -> bool:
        """Whether ``port`` lies inside the interval."""
        return self.start <= port < self.end

    def strictly_inside(self, port: int) -> bool:
        """Whether ``port`` lies inside but not at the start.

        This is the condition under which inserting a stripe into the LSF
        structure while the connection pointer is at ``port`` would split the
        stripe's service across two frames (DESIGN.md §2.2).
        """
        return self.start < port < self.end

    # -- laminar relations -------------------------------------------------

    def contains(self, other: "DyadicInterval") -> bool:
        """Whether this interval fully contains ``other`` (the "bear hug")."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "DyadicInterval") -> bool:
        """Whether the two intervals share at least one port."""
        return self.start < other.end and other.start < self.end

    def parent(self) -> "DyadicInterval":
        """The dyadic interval of twice the size containing this one.

        >>> DyadicInterval(4, 4).parent()
        DyadicInterval(0, 8)
        """
        size = self.size * 2
        return DyadicInterval((self.start // size) * size, size)

    def children(self) -> Tuple["DyadicInterval", "DyadicInterval"]:
        """The two dyadic halves of this interval (size must exceed 1)."""
        if self.size == 1:
            raise ValueError("a unit interval has no children")
        half = self.size // 2
        return (
            DyadicInterval(self.start, half),
            DyadicInterval(self.start + half, half),
        )

    def ancestors_within(self, n: int) -> Iterator["DyadicInterval"]:
        """Yield this interval and all enclosing dyadic intervals up to size n.

        >>> [iv.size for iv in DyadicInterval(6, 2).ancestors_within(8)]
        [2, 4, 8]
        """
        iv = self
        while iv.size <= n:
            yield iv
            if iv.size == n:
                break
            iv = iv.parent()

    # -- paper-facing helpers ------------------------------------------------

    def as_paper_notation(self) -> str:
        """Render in the paper's 1-indexed ``(l, l + 2^k]`` notation.

        >>> DyadicInterval(0, 4).as_paper_notation()
        '(0, 4]'
        """
        return f"({self.start}, {self.end}]"

    # -- dunder plumbing -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DyadicInterval):
            return NotImplemented
        return self.start == other.start and self.size == other.size

    def __lt__(self, other: "DyadicInterval") -> bool:
        return (self.start, self.size) < (other.start, other.size)

    def __hash__(self) -> int:
        return hash((self.start, self.size))

    def __contains__(self, port: int) -> bool:
        return self.contains_port(port)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[int]:
        return iter(self.ports())

    def __repr__(self) -> str:
        return f"DyadicInterval({self.start}, {self.size})"


def dyadic_interval_for(port: int, size: int, n: int) -> DyadicInterval:
    """The unique dyadic interval of ``size`` containing ``port`` in ``[0, n)``.

    This is the paper's stripe-interval placement rule (§3.3.1): a VOQ whose
    primary intermediate port is ``port`` and whose stripe size is ``size``
    is assigned the unique size-``size`` dyadic interval containing the port.

    >>> dyadic_interval_for(5, 4, 8)
    DyadicInterval(4, 4)
    >>> dyadic_interval_for(5, 8, 8)
    DyadicInterval(0, 8)
    """
    if not is_power_of_two(n):
        raise ValueError(f"switch size n must be a power of two, got {n}")
    if not is_power_of_two(size) or size > n:
        raise ValueError(f"stripe size must be a power of two <= {n}, got {size}")
    if not 0 <= port < n:
        raise ValueError(f"port {port} outside [0, {n})")
    return DyadicInterval((port // size) * size, size)


def all_dyadic_intervals(n: int) -> List[DyadicInterval]:
    """Every dyadic interval of ``[0, n)``, largest first.

    There are exactly ``2n - 1`` of them — the paper's observation (§3.4.2)
    that the collapsed input-side LSF structure needs only ``2N - 1`` FIFO
    queues.

    >>> len(all_dyadic_intervals(8))
    15
    """
    if not is_power_of_two(n):
        raise ValueError(f"n must be a power of two, got {n}")
    intervals: List[DyadicInterval] = []
    size = n
    while size >= 1:
        for start in range(0, n, size):
            intervals.append(DyadicInterval(start, size))
        size //= 2
    return intervals
