"""Switch-wide stripe-interval assignment (paper §3.3).

Combines the three Sprinklers placement ingredients:

1. **Permutation** — each input port's N VOQs map to N *distinct* primary
   intermediate ports (one sprinkler aimed at each lawn area);
2. **Randomization** — the permutations are uniform random, coordinated
   across inputs through a weakly uniform random Latin square so the output
   side is balanced too;
3. **Variable-size dyadic striping** — each VOQ's interval is the unique
   dyadic interval of size ``F(r)`` containing its primary port.

The resulting :class:`StripeIntervalAssignment` is the static configuration
a Sprinklers switch runs with (placements stay fixed; sizes may later change
through the rate-adaptation machinery).  It also exposes the exact per-port
load accounting used by the stability analysis and the ablation benches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .dyadic import DyadicInterval, dyadic_interval_for, is_power_of_two
from .latin import circulant_ols, is_latin_square, weakly_uniform_ols
from .permutation import random_permutation
from .striping import stripe_size_for_rate

__all__ = ["StripeIntervalAssignment", "PlacementMode"]


class PlacementMode:
    """How primary intermediate ports are chosen (ablation axis A1/A4).

    * ``OLS`` — the paper's design: weakly uniform random Latin square.
    * ``INDEPENDENT`` — each input draws its own uniform permutation with no
      cross-input coordination (input side balanced, output side not).
    * ``IDENTITY`` — the deterministic circulant square with no
      randomization at all (the "no shuffling" ablation).
    """

    OLS = "ols"
    INDEPENDENT = "independent"
    IDENTITY = "identity"

    ALL = (OLS, INDEPENDENT, IDENTITY)


class StripeIntervalAssignment:
    """Primary ports and dyadic stripe intervals for all ``N^2`` VOQs.

    Parameters
    ----------
    rates:
        ``N x N`` matrix of VOQ arrival rates (packets/slot); ``rates[i][j]``
        is the rate of the VOQ at input ``i`` destined to output ``j``.
    rng:
        Randomness for drawing the permutations (ignored for IDENTITY mode).
    mode:
        One of :class:`PlacementMode`.
    fixed_stripe_size:
        If given, overrides Equation (1) and uses this size for every VOQ —
        the fixed-size ablation (A2).  Must be a power of two ``<= N``.
    """

    def __init__(
        self,
        rates: Sequence[Sequence[float]],
        rng: Optional[np.random.Generator] = None,
        mode: str = PlacementMode.OLS,
        fixed_stripe_size: Optional[int] = None,
    ) -> None:
        rates = np.asarray(rates, dtype=float)
        n = rates.shape[0]
        if rates.shape != (n, n):
            raise ValueError(f"rates must be square, got shape {rates.shape}")
        if not is_power_of_two(n):
            raise ValueError(f"switch size must be a power of two, got {n}")
        if np.any(rates < 0):
            raise ValueError("rates must be nonnegative")
        if mode not in PlacementMode.ALL:
            raise ValueError(f"unknown placement mode {mode!r}")
        if mode != PlacementMode.IDENTITY and rng is None:
            raise ValueError(f"mode {mode!r} requires an rng")
        if fixed_stripe_size is not None:
            if not is_power_of_two(fixed_stripe_size) or fixed_stripe_size > n:
                raise ValueError(
                    "fixed_stripe_size must be a power of two <= N, "
                    f"got {fixed_stripe_size}"
                )

        self.n = n
        self.rates = rates
        self.mode = mode
        self.fixed_stripe_size = fixed_stripe_size
        self.square = self._build_square(n, rng, mode)
        self.intervals: List[List[DyadicInterval]] = []
        for i in range(n):
            row: List[DyadicInterval] = []
            for j in range(n):
                size = (
                    fixed_stripe_size
                    if fixed_stripe_size is not None
                    else stripe_size_for_rate(float(rates[i][j]), n)
                )
                row.append(dyadic_interval_for(self.square[i][j], size, n))
            self.intervals.append(row)

    @staticmethod
    def _build_square(
        n: int, rng: Optional[np.random.Generator], mode: str
    ) -> List[List[int]]:
        """Build the primary-port matrix for the requested placement mode."""
        if mode == PlacementMode.OLS:
            return weakly_uniform_ols(n, rng)
        if mode == PlacementMode.IDENTITY:
            return circulant_ols(n)
        # INDEPENDENT: one uniform permutation per input, uncoordinated.
        return [random_permutation(n, rng) for _ in range(n)]

    # -- accessors -----------------------------------------------------------

    def primary_port(self, input_port: int, output_port: int) -> int:
        """The primary intermediate port of VOQ ``(input, output)``."""
        return self.square[input_port][output_port]

    def interval(self, input_port: int, output_port: int) -> DyadicInterval:
        """The dyadic stripe interval of VOQ ``(input, output)``."""
        return self.intervals[input_port][output_port]

    def stripe_size(self, input_port: int, output_port: int) -> int:
        """The stripe size of VOQ ``(input, output)``."""
        return self.intervals[input_port][output_port].size

    def is_coordinated(self) -> bool:
        """Whether the primary-port matrix is a Latin square.

        True for OLS and IDENTITY modes; typically false for INDEPENDENT
        (which is exactly why the output side then loses its balance
        guarantee).
        """
        return is_latin_square(self.square)

    # -- load accounting (drives the §4 analysis and ablations) ---------------

    def input_port_loads(self, input_port: int) -> np.ndarray:
        """Traffic rate each intermediate port receives from ``input_port``.

        Entry ``m`` is ``sum_j s_ij * 1{m in interval_ij}`` — the arrival
        rate of the paper's queue "(input i, intermediate m)".  Stability of
        that queue requires the entry to stay below ``1/N``.
        """
        loads = np.zeros(self.n)
        for j in range(self.n):
            interval = self.intervals[input_port][j]
            share = float(self.rates[input_port][j]) / interval.size
            loads[interval.start : interval.end] += share
        return loads

    def output_port_loads(self, output_port: int) -> np.ndarray:
        """Traffic rate for ``output_port`` arriving at each intermediate port.

        Entry ``m`` is the arrival rate of the queue "(intermediate m,
        output j)"; the OLS coordination exists precisely to keep these
        balanced.
        """
        loads = np.zeros(self.n)
        for i in range(self.n):
            interval = self.intervals[i][output_port]
            share = float(self.rates[i][output_port]) / interval.size
            loads[interval.start : interval.end] += share
        return loads

    def max_queue_load(self) -> float:
        """The worst per-queue arrival rate anywhere in the switch.

        The switch is (deterministically) stable when this is below ``1/N``;
        §4 proves the probability it is not is overwhelmingly small.
        """
        worst = 0.0
        for i in range(self.n):
            worst = max(worst, float(self.input_port_loads(i).max()))
        for j in range(self.n):
            worst = max(worst, float(self.output_port_loads(j).max()))
        return worst

    def overloaded_queues(self) -> List[tuple]:
        """All (kind, port, intermediate) triples whose load reaches 1/N."""
        threshold = 1.0 / self.n
        bad: List[tuple] = []
        for i in range(self.n):
            loads = self.input_port_loads(i)
            for m in np.nonzero(loads >= threshold)[0]:
                bad.append(("input", i, int(m)))
        for j in range(self.n):
            loads = self.output_port_loads(j)
            for m in np.nonzero(loads >= threshold)[0]:
                bad.append(("output", j, int(m)))
        return bad

    def __repr__(self) -> str:
        return (
            f"StripeIntervalAssignment(n={self.n}, mode={self.mode!r}, "
            f"max_queue_load={self.max_queue_load():.6f})"
        )
