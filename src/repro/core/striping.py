"""Stripe sizing, stripes, and per-VOQ stripe assembly.

Implements the paper's Equation (1): the stripe-interval size for a VOQ with
arrival rate ``r`` through an ``N x N`` switch is

    F(r) = min(N, 2^ceil(log2(r * N^2)))

which brings the *load per share* ``s = r / F(r)`` below the per-port budget
``alpha = 1 / N^2`` whenever possible (only VOQs so hot that even a full-
width stripe cannot dilute them, i.e. ``r > 1/N``, exceed it, and such rates
already violate admissibility margins the analysis assumes).

A :class:`Stripe` is the unit of scheduling: ``F(r)`` consecutive packets of
one VOQ, switched through consecutive intermediate ports in consecutive time
slots.  The :class:`StripeAssembler` groups a VOQ's arrivals chronologically
into stripes (paper §3.2).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..switching.packet import Packet
from .dyadic import DyadicInterval, is_power_of_two

__all__ = [
    "stripe_size_for_rate",
    "load_per_share",
    "per_port_budget",
    "Stripe",
    "StripeAssembler",
]


def per_port_budget(n: int) -> float:
    """The target per-intermediate-port load from one VOQ: ``alpha = 1/N^2``."""
    if n <= 0:
        raise ValueError("switch size must be positive")
    return 1.0 / (n * n)


def stripe_size_for_rate(rate: float, n: int) -> int:
    """The paper's Equation (1): ``F(r) = min(N, 2^ceil(log2(r N^2)))``.

    ``rate`` is the VOQ's normalized arrival rate (packets per slot, in
    ``[0, 1]``).  A rate of zero (or an idle VOQ) maps to the minimum stripe
    size 1.

    >>> stripe_size_for_rate(0.0, 32)
    1
    >>> stripe_size_for_rate(1.0 / 32**2, 32)   # exactly alpha -> size 1
    1
    >>> stripe_size_for_rate(1.5 / 32**2, 32)   # just above alpha -> size 2
    2
    >>> stripe_size_for_rate(0.5, 32)           # very hot VOQ -> full width
    32
    """
    if not is_power_of_two(n):
        raise ValueError(f"switch size must be a power of two, got {n}")
    if not math.isfinite(rate):
        raise ValueError(f"rate must be finite, got {rate}")
    if rate < 0:
        raise ValueError(f"rate must be nonnegative, got {rate}")
    if rate == 0.0:
        return 1
    scaled = rate * n * n
    if scaled <= 1.0:
        return 1
    exponent = math.ceil(math.log2(scaled))
    # Guard against floating error on exact powers of two: 2^(e-1) must be
    # strictly below `scaled` for e to be the correct ceiling.
    if 2.0 ** (exponent - 1) >= scaled:
        exponent -= 1
    return min(n, 2**exponent)


def load_per_share(rate: float, n: int) -> float:
    """The load each intermediate port in the stripe interval receives.

    ``s = r / F(r)``; at most ``alpha = 1/N^2`` unless the stripe is capped
    at full width ``N``.

    >>> n = 32
    >>> load_per_share(0.9 / n, n) <= per_port_budget(n)
    True
    """
    return rate / stripe_size_for_rate(rate, n)


class Stripe:
    """A group of ``size`` consecutive packets of one VOQ (paper §3.2).

    The stripe is the basic unit of scheduling at both input and intermediate
    ports: its packets leave the input port in consecutive slots to the
    consecutive intermediate ports of :attr:`interval`, and arrive at the
    output port in consecutive slots, which is what makes reordering
    impossible.
    """

    __slots__ = ("stripe_id", "input_port", "output_port", "interval", "packets")

    def __init__(
        self,
        stripe_id: int,
        input_port: int,
        output_port: int,
        interval: DyadicInterval,
        packets: List[Packet],
    ) -> None:
        if len(packets) != interval.size:
            raise ValueError(
                f"stripe must hold exactly {interval.size} packets, "
                f"got {len(packets)}"
            )
        self.stripe_id = stripe_id
        self.input_port = input_port
        self.output_port = output_port
        self.interval = interval
        self.packets = packets
        for pos, pkt in enumerate(packets):
            pkt.stripe_size = interval.size
            pkt.stripe_id = stripe_id
            pkt.stripe_pos = pos

    @property
    def size(self) -> int:
        """Number of packets (== interval size)."""
        return self.interval.size

    def packet_for_port(self, port: int) -> Packet:
        """The packet of this stripe destined to intermediate ``port``."""
        if not self.interval.contains_port(port):
            raise KeyError(f"port {port} not in {self.interval}")
        return self.packets[port - self.interval.start]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"Stripe(id={self.stripe_id}, voq=({self.input_port},"
            f"{self.output_port}), interval={self.interval})"
        )


class StripeAssembler:
    """Groups one VOQ's arrivals chronologically into fixed-size stripes.

    Packets accumulate in a *ready queue* (paper §3.4.2) until a full stripe
    of the VOQ's current size is available.  Changing the stripe interval
    (size or placement) only affects stripes formed after the change;
    in-flight stripes keep the interval they were created with — the
    clearance protocol in :mod:`repro.core.rate_estimation` decides when a
    resize may take effect.
    """

    def __init__(
        self,
        input_port: int,
        output_port: int,
        interval: DyadicInterval,
    ) -> None:
        self.input_port = input_port
        self.output_port = output_port
        self._interval = interval
        self._pending: List[Packet] = []
        self._next_stripe_id: Optional[int] = None  # assigned by the switch

    @property
    def interval(self) -> DyadicInterval:
        """The dyadic interval newly formed stripes will use."""
        return self._interval

    @property
    def stripe_size(self) -> int:
        """Size of stripes currently being assembled."""
        return self._interval.size

    @property
    def pending_count(self) -> int:
        """Packets waiting in the ready queue (less than one stripe)."""
        return len(self._pending)

    def set_interval(self, interval: DyadicInterval) -> None:
        """Retarget future stripes to ``interval``.

        Already-buffered packets are re-striped at the new size: they simply
        remain in the ready queue and will be cut into stripes of the new
        size in arrival order, which preserves per-VOQ FIFO order.
        """
        self._interval = interval

    def push(self, packet: Packet, next_stripe_id: int) -> Optional[Stripe]:
        """Add an arrival; return a completed :class:`Stripe` if one fills.

        ``next_stripe_id`` is the id to assign if a stripe completes (ids are
        allocated centrally by the switch so they are unique and increase in
        creation order).
        """
        if packet.input_port != self.input_port:
            raise ValueError("packet input port does not match assembler")
        if packet.output_port != self.output_port:
            raise ValueError("packet output port does not match assembler")
        self._pending.append(packet)
        if len(self._pending) < self._interval.size:
            return None
        packets = self._pending[: self._interval.size]
        self._pending = self._pending[self._interval.size :]
        return Stripe(
            next_stripe_id,
            self.input_port,
            self.output_port,
            self._interval,
            packets,
        )

    def __repr__(self) -> str:
        return (
            f"StripeAssembler(voq=({self.input_port},{self.output_port}), "
            f"interval={self._interval}, pending={len(self._pending)})"
        )
