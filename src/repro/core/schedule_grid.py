"""Textual views of the Sprinklers scheduling state (paper Figs. 3-4).

The paper explains LSF with two pictures: the *schedule grid* (Fig. 3) —
rows are intermediate ports, columns are service frames, each shaded bar a
stripe — and the FIFO-array data structure (Fig. 4).  This module renders
both from a live switch, which turns out to be invaluable when debugging
insertion-timing bugs (a split stripe is immediately visible as a broken
bar).

Stripes are labelled with letters cycling A..Z a..z so adjacent stripes are
distinguishable; `.` is an empty cell.
"""

from __future__ import annotations

from typing import Dict, List

from ..switching.packet import Packet
from .lsf import LsfInputScheduler
from .sprinklers_switch import SprinklersSwitch

__all__ = ["render_input_grid", "render_fifo_array", "grid_occupancy_by_stripe"]

_LABELS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"


def _stripe_label(stripe_id: int) -> str:
    return _LABELS[stripe_id % len(_LABELS)]


def render_input_grid(switch: SprinklersSwitch, input_port: int) -> str:
    """The schedule grid of one input port (paper Fig. 3).

    Each row is an intermediate port; successive columns approximate the
    LSF service order (largest stripe class first, FIFO within a class).
    Time progresses left to right here (the paper draws it right to left).
    """
    lsf = switch._input_lsf[input_port]
    n = switch.n
    rows: List[List[str]] = [[] for _ in range(n)]
    # Serve-order approximation: per row, dump classes from largest to
    # smallest, FIFO within each class.
    for port in range(n):
        for level in range(lsf.levels - 1, -1, -1):
            for packet in lsf._fifos[port][level]:
                rows[port].append(_stripe_label(packet.stripe_id))
    width = max((len(r) for r in rows), default=0)
    lines = [f"input {input_port} schedule grid (rows = intermediate ports)"]
    for port in range(n):
        body = "".join(rows[port]).ljust(width, ".")
        lines.append(f"  port {port:2d} |{body}|")
    return "\n".join(lines)


def render_fifo_array(switch: SprinklersSwitch, input_port: int) -> str:
    """The FIFO-array occupancy of one input port (paper Fig. 4).

    One row per intermediate port, one column per stripe-size class;
    cells show queue depths.
    """
    lsf: LsfInputScheduler = switch._input_lsf[input_port]
    n = switch.n
    header = "  port | " + " ".join(
        f"2^{level}".rjust(4) for level in range(lsf.levels)
    )
    lines = [
        f"input {input_port} LSF FIFO array (columns = stripe sizes)",
        header,
        "  " + "-" * (len(header) - 2),
    ]
    for port in range(n):
        depths = " ".join(
            str(len(lsf._fifos[port][level])).rjust(4)
            for level in range(lsf.levels)
        )
        lines.append(f"  {port:4d} | {depths}")
    return "\n".join(lines)


def grid_occupancy_by_stripe(
    switch: SprinklersSwitch, input_port: int
) -> Dict[int, int]:
    """Packets per stripe currently queued at one input's LSF structure."""
    lsf = switch._input_lsf[input_port]
    counts: Dict[int, int] = {}
    for port in range(switch.n):
        for level in range(lsf.levels):
            packet: Packet
            for packet in lsf._fifos[port][level]:
                counts[packet.stripe_id] = counts.get(packet.stripe_id, 0) + 1
    return counts
