"""Online rate measurement and stripe-size adaptation (paper §3.3.2, §5).

The paper sizes each VOQ's stripe from its *current* traffic rate, notes
that initial sizes may come from historical traffic matrices, and that
sizes should adapt to measured rates — with hysteresis, "to prevent the
size of a stripe from 'thrashing' between 2^k and 2^(k+1), we can delay the
halving and doubling of the stripe size".

This module provides the two decision components; the switch wires them to
its clearance pipeline (old-size stripes must fully drain before new-size
stripes may enter the fabric — §5 computes the expected clearance time):

* :class:`EwmaRateEstimator` — exponentially weighted moving-average rate
  per VOQ, updated lazily (O(1) per arrival, not per slot);
* :class:`HysteresisSizer` — turns a rate estimate into a stripe size,
  resisting changes until they persist.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .striping import stripe_size_for_rate

__all__ = ["EwmaRateEstimator", "HysteresisSizer"]


class EwmaRateEstimator:
    """Per-VOQ EWMA arrival-rate estimates with lazy decay.

    The per-slot recursion ``r <- (1 - beta) r + beta x_t`` (``x_t`` is 1 on
    arrival slots, else 0) is evaluated lazily: on an arrival after a gap of
    ``g`` idle slots, ``r <- r (1-beta)^g + beta``.  Reads decay the same
    way, so estimates are consistent regardless of access pattern.
    """

    def __init__(self, beta: float = 0.01, initial_rate: float = 0.0) -> None:
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        if initial_rate < 0.0:
            raise ValueError("initial_rate must be nonnegative")
        self.beta = beta
        self.initial_rate = initial_rate
        # voq -> (rate estimate, slot at which the estimate was current)
        self._state: Dict[Tuple[int, int], Tuple[float, int]] = {}

    def observe_arrival(self, voq: Tuple[int, int], slot: int) -> float:
        """Record one packet arrival for ``voq`` at ``slot``; return the rate."""
        rate, last = self._state.get(voq, (self.initial_rate, slot))
        gap = slot - last
        if gap < 0:
            raise ValueError("arrivals must be observed in slot order")
        # Decay through `gap` idle slots, then one more step with x = 1.
        rate = rate * (1.0 - self.beta) ** (gap + 1) + self.beta
        self._state[voq] = (rate, slot + 1)
        return rate

    def rate(self, voq: Tuple[int, int], slot: int) -> float:
        """The decayed rate estimate for ``voq`` as of ``slot``."""
        rate, last = self._state.get(voq, (self.initial_rate, slot))
        gap = max(0, slot - last)
        return rate * (1.0 - self.beta) ** gap

    def __repr__(self) -> str:
        return f"EwmaRateEstimator(beta={self.beta}, voqs={len(self._state)})"


class HysteresisSizer:
    """Stripe-size decisions with thrash protection (delayed resizing).

    A resize to the Equation-(1) target size is proposed only after the
    target has disagreed with the current size for ``patience`` consecutive
    evaluations.  Any evaluation agreeing with the current size resets the
    disagreement streak, so a rate hovering at a power-of-two boundary does
    not flap the stripe size (the thrashing the paper warns about).
    """

    def __init__(self, n: int, patience: int = 8) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.n = n
        self.patience = patience
        # voq -> (candidate size, consecutive votes for it)
        self._streaks: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def evaluate(
        self, voq: Tuple[int, int], current_size: int, rate: float
    ) -> Optional[int]:
        """Return the new size if a resize is due, else ``None``."""
        target = stripe_size_for_rate(rate, self.n)
        if target == current_size:
            self._streaks.pop(voq, None)
            return None
        candidate, votes = self._streaks.get(voq, (target, 0))
        if candidate != target:
            candidate, votes = target, 0
        votes += 1
        if votes >= self.patience:
            self._streaks.pop(voq, None)
            return target
        self._streaks[voq] = (candidate, votes)
        return None

    def __repr__(self) -> str:
        return f"HysteresisSizer(n={self.n}, patience={self.patience})"
