"""Uniform random permutations and permutation utilities.

The Sprinklers interval-generation step (paper §3.3) maps the N VOQs of an
input port to N distinct primary intermediate ports via a permutation drawn
uniformly at random from all N! permutations.  The classic Durstenfeld
implementation of the Fisher-Yates shuffle (the paper's reference [7]) does
this in O(N) time from O(N log N) random bits.

Permutations are represented as lists/arrays ``p`` of length N containing
each of ``0..N-1`` exactly once, with ``p[i]`` the image of ``i``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "random_permutation",
    "durstenfeld_shuffle",
    "identity_permutation",
    "inverse_permutation",
    "compose_permutations",
    "is_permutation",
    "cyclic_shift_permutation",
]


def durstenfeld_shuffle(items: List, rng: np.random.Generator) -> List:
    """In-place Durstenfeld (Fisher-Yates) shuffle; returns ``items``.

    Each of the ``len(items)!`` orderings is equally likely when ``rng``
    produces uniform integers.
    """
    for i in range(len(items) - 1, 0, -1):
        j = int(rng.integers(0, i + 1))
        items[i], items[j] = items[j], items[i]
    return items


def random_permutation(n: int, rng: np.random.Generator) -> List[int]:
    """A uniformly random permutation of ``0..n-1``.

    >>> import numpy as np
    >>> sorted(random_permutation(8, np.random.default_rng(0))) == list(range(8))
    True
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return durstenfeld_shuffle(list(range(n)), rng)


def identity_permutation(n: int) -> List[int]:
    """The identity permutation of ``0..n-1`` (the ablation baseline)."""
    return list(range(n))


def cyclic_shift_permutation(n: int, shift: int) -> List[int]:
    """The permutation ``i -> (i + shift) mod n``.

    Rows of the weakly uniform random OLS are cyclic shifts of one another
    composed with a column permutation; this helper is used in tests.
    """
    return [(i + shift) % n for i in range(n)]


def is_permutation(values: Sequence[int]) -> bool:
    """Whether ``values`` is a permutation of ``0..len(values)-1``.

    >>> is_permutation([2, 0, 1])
    True
    >>> is_permutation([0, 0, 2])
    False
    """
    n = len(values)
    seen = bytearray(n)
    for v in values:
        if not 0 <= v < n or seen[v]:
            return False
        seen[v] = 1
    return True


def inverse_permutation(perm: Sequence[int]) -> List[int]:
    """The inverse permutation: ``inv[perm[i]] == i``.

    >>> inverse_permutation([2, 0, 1])
    [1, 2, 0]
    """
    inv = [0] * len(perm)
    for i, v in enumerate(perm):
        inv[v] = i
    return inv


def compose_permutations(outer: Sequence[int], inner: Sequence[int]) -> List[int]:
    """The composition ``i -> outer[inner[i]]``.

    >>> compose_permutations([1, 2, 0], [2, 0, 1])
    [0, 1, 2]
    """
    if len(outer) != len(inner):
        raise ValueError("permutations must have equal length")
    return [outer[v] for v in inner]
