"""The paper's primary contribution: striping, placement, LSF, the switch."""

from .dyadic import DyadicInterval, all_dyadic_intervals, dyadic_interval_for
from .interval_assignment import PlacementMode, StripeIntervalAssignment
from .latin import (
    JacobsonMatthewsSampler,
    circulant_ols,
    is_latin_square,
    weakly_uniform_ols,
)
from .lsf import LsfInputScheduler, LsfIntermediateScheduler
from .permutation import inverse_permutation, is_permutation, random_permutation
from .rate_estimation import EwmaRateEstimator, HysteresisSizer
from .schedule_grid import render_fifo_array, render_input_grid
from .sprinklers_switch import SprinklersSwitch, VoqPipeline
from .striping import (
    Stripe,
    StripeAssembler,
    load_per_share,
    per_port_budget,
    stripe_size_for_rate,
)

__all__ = [
    "DyadicInterval",
    "EwmaRateEstimator",
    "HysteresisSizer",
    "JacobsonMatthewsSampler",
    "LsfInputScheduler",
    "LsfIntermediateScheduler",
    "PlacementMode",
    "SprinklersSwitch",
    "Stripe",
    "StripeAssembler",
    "StripeIntervalAssignment",
    "VoqPipeline",
    "all_dyadic_intervals",
    "circulant_ols",
    "dyadic_interval_for",
    "inverse_permutation",
    "is_latin_square",
    "is_permutation",
    "load_per_share",
    "per_port_budget",
    "random_permutation",
    "render_fifo_array",
    "render_input_grid",
    "stripe_size_for_rate",
    "weakly_uniform_ols",
]
