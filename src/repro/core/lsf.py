"""Largest Stripe First (LSF) scheduling structures (paper §3.4).

Both the input ports and the intermediate ports of a Sprinklers switch
schedule *stripes*, largest first, using the same data structure (paper
Fig. 4): an array of FIFO queues with N rows (one per intermediate port)
and ``log2 N + 1`` columns (one per stripe size), plus one bitmap per row
encoding which of its FIFOs are nonempty.  Serving a row is a single
"find first one from the right" bitmap scan — constant time — followed by
one FIFO pop.

Two deployments of the structure:

* :class:`LsfInputScheduler` — at an input port.  Whole stripes are
  "plastered" into the rows of their dyadic interval, one packet per row,
  but only at *safe* instants (when the fabric-1 connection pointer is not
  strictly inside the interval; see DESIGN.md §2.2) so that each stripe
  leaves the input in consecutive slots.
* :class:`LsfIntermediateScheduler` — at an intermediate port, which holds
  one *row* of the virtual schedule grid of each output (paper §3.4.3).
  Packets arrive individually (already staggered correctly by fabric 1) and
  are filed by (output, stripe size); the paper's laminar/staggering
  argument makes the per-port greedy choice globally consistent.
"""

from __future__ import annotations

from typing import List, Optional

from ..switching.packet import Packet
from ..switching.ports import FifoQueue
from .dyadic import log2_int
from .striping import Stripe

__all__ = ["LsfInputScheduler", "LsfIntermediateScheduler", "highest_set_bit"]


def highest_set_bit(bitmap: int) -> int:
    """Index of the most significant set bit, or -1 if ``bitmap == 0``.

    This is the paper's "first one from the right" scan of a row of the
    2-D status bitmap (their columns grow rightward with stripe size; our
    bit index grows with the size exponent), i.e. the largest nonempty
    stripe-size class.

    >>> highest_set_bit(0b0110)
    2
    >>> highest_set_bit(0)
    -1
    """
    return bitmap.bit_length() - 1


class LsfInputScheduler:
    """The input-port LSF structure: N rows x (log2 N + 1) size columns.

    Rows are intermediate ports; column ``k`` of row ``m`` holds, in FIFO
    order, the packets bound for intermediate port ``m`` that belong to
    size-``2^k`` stripes.  (The paper notes the input side could collapse
    to ``2N - 1`` FIFOs; we keep the verbose grid, which is the same
    structure the intermediate ports need, and is O(1)-equivalent.)
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.levels = log2_int(n) + 1
        self._fifos: List[List[FifoQueue]] = [
            [FifoQueue() for _ in range(self.levels)] for _ in range(n)
        ]
        self._bitmaps: List[int] = [0] * n
        self.occupancy = 0

    def can_insert(self, stripe: Stripe, pointer: int) -> bool:
        """Whether inserting now keeps the stripe's service in one burst.

        ``pointer`` is the intermediate port the input is connected to in
        the current slot (the row about to be served).  Insertion is safe
        iff the pointer is not strictly inside the stripe's interval: the
        interval's rows are then polled in one consecutive run, entirely
        after the insertion.
        """
        return not stripe.interval.strictly_inside(pointer)

    def insert(self, stripe: Stripe) -> None:
        """Plaster a stripe into its interval's rows, one packet per row."""
        level = stripe.interval.level
        bit = 1 << level
        for port in stripe.interval.ports():
            self._fifos[port][level].push(stripe.packet_for_port(port))
            self._bitmaps[port] |= bit
        self.occupancy += stripe.size

    def serve(self, row: int) -> Optional[Packet]:
        """Serve row ``row``: pop the head of its largest nonempty FIFO."""
        bitmap = self._bitmaps[row]
        if bitmap == 0:
            return None
        level = highest_set_bit(bitmap)
        fifo = self._fifos[row][level]
        packet = fifo.pop()
        if not fifo:
            self._bitmaps[row] &= ~(1 << level)
        self.occupancy -= 1
        return packet

    def row_occupancy(self, row: int) -> int:
        """Packets queued for intermediate port ``row``."""
        return sum(len(f) for f in self._fifos[row])

    def __repr__(self) -> str:
        return f"LsfInputScheduler(n={self.n}, occupancy={self.occupancy})"


class LsfIntermediateScheduler:
    """One intermediate port's share of every output's virtual schedule grid.

    For each output ``j`` the port keeps ``log2 N + 1`` FIFOs — its row of
    output ``j``'s distributed LSF structure — and a bitmap over them.
    Packets are filed by the stripe size carried in their header; within a
    (output, size) class, all stripes covering this port share the same
    dyadic interval, so FIFO order here equals stripe arrival order
    everywhere in the interval, which is what keeps the distributed
    decisions consistent.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.levels = log2_int(n) + 1
        self._fifos: List[List[FifoQueue]] = [
            [FifoQueue() for _ in range(self.levels)] for _ in range(n)
        ]
        self._bitmaps: List[int] = [0] * n
        self.occupancy = 0

    def deliver(self, packet: Packet) -> None:
        """File an arriving packet under (its output, its stripe size)."""
        if packet.stripe_size <= 0:
            raise ValueError(f"packet {packet!r} has no stripe header")
        level = log2_int(packet.stripe_size)
        output = packet.output_port
        self._fifos[output][level].push(packet)
        self._bitmaps[output] |= 1 << level
        self.occupancy += 1

    def serve(self, output: int) -> Optional[Packet]:
        """Serve output ``output``: pop its largest nonempty size class."""
        bitmap = self._bitmaps[output]
        if bitmap == 0:
            return None
        level = highest_set_bit(bitmap)
        fifo = self._fifos[output][level]
        packet = fifo.pop()
        if not fifo:
            self._bitmaps[output] &= ~(1 << level)
        self.occupancy -= 1
        return packet

    def output_occupancy(self, output: int) -> int:
        """Packets buffered here for ``output``."""
        return sum(len(f) for f in self._fifos[output])

    def __repr__(self) -> str:
        return (
            f"LsfIntermediateScheduler(n={self.n}, occupancy={self.occupancy})"
        )
