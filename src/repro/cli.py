"""Command-line interface: regenerate any paper artifact from a shell.

Usage (also installed as the ``sprinklers`` console script)::

    python -m repro table1
    python -m repro fig5
    python -m repro fig6 --slots 200000 --n 32
    python -m repro fig7 --loads 0.1 0.5 0.9
    python -m repro fig6 --scenario mmpp-bursty --engine vectorized
    python -m repro demo --n 16 --load 0.8
    python -m repro bounds --rho 0.93 --n 2048
    python -m repro scenarios list
    python -m repro scenarios run --scenario hotspot-4x --switch sprinklers
    python -m repro switches list --engine vectorized
    python -m repro fabrics list
    python -m repro fabrics run --fabric leaf-spine --scenario ring-allreduce
    python -m repro fabrics delay --fabric leaf-spine --engine vectorized
    python -m repro store stats
    python -m repro store gc --max-age-days 30 --max-size-mb 512
    python -m repro fabrics run --fabric leaf-spine --trace trace.jsonl
    python -m repro telemetry summarize trace.jsonl
    python -m repro telemetry diff before.jsonl after.jsonl
    python -m repro telemetry check trace.jsonl --coverage 0.95
    python -m repro lint --format text
    python -m repro lint src/repro/service --select LOCK
    python -m repro serve --workers 4 --store .repro-store --backend sqlite
    python -m repro submit --workload uniform --loads 0.3 0.9 --watch
    python -m repro status job-0001
    python -m repro watch job-0001
    python -m repro results job-0001

Figure commands accept ``--csv`` to emit machine-readable rows instead of
the rendered table/chart.  Simulation commands accept ``--store [DIR]``
(cache results in the experiment store; default directory
``.repro-store`` or ``$REPRO_STORE_DIR``) and ``--no-store``.
Simulation commands also accept ``--trace PATH`` (enable telemetry for
the command, write the JSONL span trace to PATH — see ``telemetry
summarize``) and the global ``-v``/``--quiet`` logging switches.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import models, telemetry
from .analysis.chernoff import overload_probability_bound, switch_wide_bound
from .figures import fig5, fig6, fig7, table1
from .figures.delay_figures import DEFAULT_LOADS
from .figures.render import rows_to_csv
from .models import PAPER_SWITCHES
from .scenarios import apply_overrides, list_scenarios, resolve_scenario
from .sim.experiment import ENGINES, run_single
from .sim.kernels.compiled import KERNEL_BACKENDS, kernel_backend
from .traffic.matrices import uniform_matrix

__all__ = ["main", "build_parser"]

#: Default experiment-store directory for ``--store`` with no argument.
DEFAULT_STORE_DIR = ".repro-store"


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        nargs="?",
        const=DEFAULT_STORE_DIR,
        default=None,
        metavar="DIR",
        help=(
            "cache results in the experiment store at DIR "
            f"(default {DEFAULT_STORE_DIR!r}; $REPRO_STORE_DIR also enables)"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the experiment store (overrides --store and the env)",
    )


def _add_backend_kernel_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend-kernel",
        choices=KERNEL_BACKENDS,
        default=None,
        metavar="NAME",
        help=(
            "kernel backend for the vectorized engine's hot passes: "
            "'numpy' (the reference) or 'compiled' (numba-jitted, "
            "bit-identical results; runs as pure Python without numba)"
        ),
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "enable telemetry for this command and write the span trace "
            "(JSONL, inspectable with `telemetry summarize`) to PATH"
        ),
    )


def _resolve_store(args: argparse.Namespace) -> Optional[str]:
    """The store directory for a command, honoring flag/env precedence."""
    if getattr(args, "no_store", False):
        return None
    if getattr(args, "store", None) is not None:
        return args.store
    return os.environ.get("REPRO_STORE_DIR") or None


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="sprinklers",
        description=(
            "Reproduction of 'Sprinklers: A Randomized Variable-Size "
            "Striping Approach to Reordering-Free Load-Balanced Switching' "
            "(CoNeXT 2014)."
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log progress to stderr (-v info, -vv debug)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress repro log output below ERROR",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: overload probability bounds")

    p5 = sub.add_parser("fig5", help="Figure 5: intermediate-stage delay vs N")
    p5.add_argument("--rho", type=float, default=0.9, help="offered load")

    for name, helptext in (
        ("fig6", "Figure 6: delay vs load, uniform traffic"),
        ("fig7", "Figure 7: delay vs load, diagonal traffic"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--n", type=int, default=32, help="switch size")
        p.add_argument("--slots", type=int, default=50_000, help="slots per point")
        p.add_argument("--seed", type=int, default=0, help="master seed")
        p.add_argument(
            "--loads",
            type=float,
            nargs="+",
            default=None,
            help="load levels to sweep",
        )
        p.add_argument("--csv", action="store_true", help="emit CSV rows")
        p.add_argument(
            "--engine",
            choices=ENGINES,
            default="object",
            help=(
                "simulation engine: the per-packet object model or the "
                "NumPy batch engine (same seeds, same results, built for "
                "paper-scale --slots)"
            ),
        )
        p.add_argument(
            "--scenario",
            default=None,
            help=(
                "replace the figure's traffic pattern with a registered "
                "scenario (see `scenarios list`) or a .toml/.json spec file"
            ),
        )
        p.add_argument(
            "--window-slots",
            type=int,
            default=None,
            metavar="W",
            help=(
                "stream the vectorized replay in W-slot windows (bounded "
                "memory, identical results; for --slots too large to "
                "materialize at once)"
            ),
        )
        p.add_argument(
            "--fabric",
            dest="fabrics",
            action="append",
            default=[],
            metavar="NAME",
            help=(
                "also sweep a registered composite fabric alongside the "
                "paper's switches (repeatable; see `fabrics list`)"
            ),
        )
        _add_backend_kernel_flag(p)
        _add_store_flags(p)
        _add_trace_flag(p)

    demo = sub.add_parser("demo", help="run every switch once, show a summary")
    demo.add_argument("--n", type=int, default=16)
    demo.add_argument("--load", type=float, default=0.8)
    demo.add_argument("--slots", type=int, default=20_000)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--engine", choices=ENGINES, default="object")
    _add_trace_flag(demo)

    bounds = sub.add_parser("bounds", help="overload bound for one (rho, N)")
    bounds.add_argument("--rho", type=float, required=True)
    bounds.add_argument("--n", type=int, required=True)

    balance = sub.add_parser(
        "balance",
        help="empirical overload probability vs the Table 1 bounds",
    )
    balance.add_argument("--n", type=int, default=32)
    balance.add_argument("--pattern", choices=("uniform", "diagonal"), default="diagonal")
    balance.add_argument("--trials", type=int, default=200)
    balance.add_argument(
        "--loads", type=float, nargs="+", default=[0.7, 0.8, 0.9, 0.95]
    )
    balance.add_argument("--seed", type=int, default=0)

    bursts = sub.add_parser(
        "bursts",
        help="extension: delay sensitivity to traffic burstiness",
    )
    bursts.add_argument("--n", type=int, default=16)
    bursts.add_argument("--load", type=float, default=0.6)
    bursts.add_argument("--slots", type=int, default=20_000)
    bursts.add_argument("--seed", type=int, default=0)

    validate = sub.add_parser(
        "validate",
        help="self-check: invariants of every switch on a quick workload",
    )
    validate.add_argument("--n", type=int, default=8)
    validate.add_argument("--slots", type=int, default=3000)
    validate.add_argument("--seed", type=int, default=0)

    scen = sub.add_parser(
        "scenarios",
        help="the declarative workload-scenario registry",
    )
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)

    scen_sub.add_parser("list", help="list registered scenarios")

    show = scen_sub.add_parser("show", help="dump one scenario's spec")
    show.add_argument("name", help="registry name or .toml/.json spec file")

    run = scen_sub.add_parser(
        "run",
        help="simulate one scenario on one switch",
    )
    run.add_argument(
        "--scenario",
        required=True,
        help="registry name or .toml/.json spec file",
    )
    run.add_argument(
        "--switch",
        default="sprinklers",
        choices=models.available(),
    )
    run.add_argument("--n", type=int, default=16, help="switch size")
    run.add_argument("--load", type=float, default=0.8, help="target load")
    run.add_argument("--slots", type=int, default=20_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--engine", choices=ENGINES, default="object")
    run.add_argument(
        "--window-slots",
        type=int,
        default=None,
        metavar="W",
        help=(
            "stream the vectorized replay in W-slot windows (bounded "
            "memory, identical results)"
        ),
    )
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "override a spec field before running, dotted paths allowed "
            "(e.g. --set schedule.kind=sine --set schedule.depth=0.4)"
        ),
    )
    _add_backend_kernel_flag(run)
    _add_store_flags(run)
    _add_trace_flag(run)

    switches = sub.add_parser(
        "switches",
        help="the switch-model registry (repro.models)",
    )
    switches_sub = switches.add_subparsers(dest="switches_command", required=True)
    sw_list = switches_sub.add_parser("list", help="list registered switches")
    sw_list.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="only switches this engine runs natively (vectorized = has "
        "an exact kernel)",
    )
    sw_show = switches_sub.add_parser(
        "show", help="one switch's capabilities, engines, and parameters"
    )
    sw_show.add_argument("name", help="registry name or alias")

    fabrics = sub.add_parser(
        "fabrics",
        help="the composite-fabric registry (multi-stage switch chains)",
    )
    fabrics_sub = fabrics.add_subparsers(dest="fabrics_command", required=True)
    fabrics_sub.add_parser("list", help="list registered composite fabrics")
    fab_show = fabrics_sub.add_parser(
        "show", help="one fabric's stages, links, and engines"
    )
    fab_show.add_argument("name", help="registry name")
    fab_run = fabrics_sub.add_parser(
        "run", help="simulate one fabric end to end"
    )
    fab_run.add_argument(
        "--fabric",
        default="leaf-spine",
        help="registered fabric name (see `fabrics list`)",
    )
    fab_run.add_argument(
        "--scenario",
        default="paper-uniform",
        help="registry name, .toml/.json spec file, or trace:<path>",
    )
    fab_run.add_argument("--n", type=int, default=16, help="fabric size")
    fab_run.add_argument("--load", type=float, default=0.8, help="target load")
    fab_run.add_argument("--slots", type=int, default=20_000)
    fab_run.add_argument("--seed", type=int, default=0)
    fab_run.add_argument("--engine", choices=ENGINES, default="vectorized")
    fab_run.add_argument(
        "--window-slots",
        type=int,
        default=None,
        metavar="W",
        help=(
            "stream every stage in W-slot windows (bounded memory, "
            "identical results)"
        ),
    )
    _add_backend_kernel_flag(fab_run)
    _add_store_flags(fab_run)
    _add_trace_flag(fab_run)
    fab_delay = fabrics_sub.add_parser(
        "delay",
        help="per-stage delay decomposition vs load (figures/fabric_delay)",
    )
    fab_delay.add_argument("--fabric", default="leaf-spine")
    fab_delay.add_argument(
        "--pattern",
        default="uniform",
        help="a §6 pattern name (uniform/diagonal) or registered scenario",
    )
    fab_delay.add_argument("--n", type=int, default=16)
    fab_delay.add_argument("--slots", type=int, default=20_000)
    fab_delay.add_argument("--seed", type=int, default=0)
    fab_delay.add_argument(
        "--loads", type=float, nargs="+", default=None,
        help="load levels to sweep",
    )
    fab_delay.add_argument("--csv", action="store_true", help="emit CSV rows")
    fab_delay.add_argument("--engine", choices=ENGINES, default="vectorized")
    fab_delay.add_argument(
        "--window-slots", type=int, default=None, metavar="W",
    )
    _add_backend_kernel_flag(fab_delay)
    _add_store_flags(fab_delay)
    _add_trace_flag(fab_delay)

    store = sub.add_parser(
        "store",
        help="inspect and prune the experiment store",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    st_stats = store_sub.add_parser(
        "stats", help="entry count, size, and manifest hit rate"
    )
    st_gc = store_sub.add_parser(
        "gc", help="prune cached results by age and/or total size"
    )
    st_gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="remove objects older than this many days",
    )
    st_gc.add_argument(
        "--max-size-mb",
        type=float,
        default=None,
        help="then remove oldest objects until the store fits this size",
    )
    for p in (st_stats, st_gc):
        p.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help=(
                "store directory (default $REPRO_STORE_DIR or "
                f"{DEFAULT_STORE_DIR!r})"
            ),
        )

    serve_p = sub.add_parser(
        "serve",
        help="run the simulation job service daemon (submit/watch clients)",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (local by default)"
    )
    serve_p.add_argument(
        "--port", type=int, default=8753,
        help="bind port (0 picks an ephemeral port, printed on startup)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=2,
        help="simulation worker processes",
    )
    serve_p.add_argument(
        "--store", default=None, metavar="DIR",
        help=(
            "experiment store directory the service computes into "
            f"(default $REPRO_STORE_DIR or {DEFAULT_STORE_DIR!r})"
        ),
    )
    serve_p.add_argument(
        "--backend", choices=("dir", "sqlite"), default=None,
        help=(
            "store backend for a NEW store (existing stores auto-detect; "
            "sqlite is the shared database built for concurrent workers)"
        ),
    )
    _add_trace_flag(serve_p)

    submit_p = sub.add_parser(
        "submit", help="submit a sweep to a running service daemon"
    )
    submit_p.add_argument(
        "--workload", default="uniform",
        help=(
            "a §6 pattern (uniform/diagonal), registered scenario, "
            ".toml/.json spec file, or trace:<path>"
        ),
    )
    submit_p.add_argument(
        "--switches", nargs="+", default=list(PAPER_SWITCHES),
        metavar="SWITCH", help="switch or fabric registry names",
    )
    submit_p.add_argument(
        "--loads", type=float, nargs="+", default=[0.3, 0.6, 0.9],
    )
    submit_p.add_argument("--n", type=int, default=16, help="port count")
    submit_p.add_argument("--slots", type=int, default=2_000)
    submit_p.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="seed block (one full grid per seed)",
    )
    submit_p.add_argument("--engine", choices=ENGINES, default="object")
    _add_backend_kernel_flag(submit_p)
    submit_p.add_argument(
        "--watch", action="store_true",
        help="stream the job's JSONL events until it completes",
    )

    status_p = sub.add_parser(
        "status", help="one job's progress, or all jobs'"
    )
    status_p.add_argument("job", nargs="?", default=None, help="job id")

    watch_p = sub.add_parser(
        "watch", help="stream a job's events as JSONL until it completes"
    )
    watch_p.add_argument("job", help="job id (from `submit`)")
    watch_p.add_argument(
        "--timeout", type=float, default=None,
        help="give up after this many seconds",
    )

    results_p = sub.add_parser(
        "results", help="stream a job's full per-shard results as JSONL"
    )
    results_p.add_argument("job", help="job id (from `submit`)")

    for p in (submit_p, status_p, watch_p, results_p):
        p.add_argument(
            "--url", default=None,
            help="service address (default $REPRO_SERVICE_URL or "
            "http://127.0.0.1:8753)",
        )

    tele = sub.add_parser(
        "telemetry",
        help="inspect JSONL span traces written by --trace / REPRO_TELEMETRY",
    )
    tele_sub = tele.add_subparsers(dest="telemetry_command", required=True)
    t_sum = tele_sub.add_parser(
        "summarize", help="per-span-name totals and the metrics snapshot"
    )
    t_sum.add_argument("trace", help="trace file (JSONL)")
    t_diff = tele_sub.add_parser(
        "diff", help="per-span-name duration deltas between two traces"
    )
    t_diff.add_argument("trace_a", help="baseline trace (JSONL)")
    t_diff.add_argument("trace_b", help="comparison trace (JSONL)")
    t_check = tele_sub.add_parser(
        "check",
        help="validate nesting and child-span coverage (the CI smoke gate)",
    )
    t_check.add_argument("trace", help="trace file (JSONL)")
    t_check.add_argument(
        "--coverage",
        type=float,
        default=0.95,
        help="required child coverage of the replay spans (default 0.95)",
    )

    lint_p = sub.add_parser(
        "lint",
        help="run the project-invariant static analyzer (repro.lint)",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint_p.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        help="only run these rules/families (e.g. RNG LOCK003)",
    )
    lint_p.add_argument(
        "--ignore",
        nargs="+",
        metavar="RULE",
        help="skip these rules/families",
    )
    lint_p.add_argument(
        "--format",
        dest="lint_format",
        choices=("text", "json", "github"),
        default="text",
        help="finding output format (default text)",
    )
    lint_p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )

    return parser


def _cmd_fig(args: argparse.Namespace, module) -> str:
    loads = tuple(args.loads) if args.loads else DEFAULT_LOADS
    kwargs = dict(
        n=args.n,
        loads=loads,
        num_slots=args.slots,
        seed=args.seed,
        engine=args.engine,
        scenario=args.scenario,
        fabrics=tuple(args.fabrics),
        store=_resolve_store(args),
        window_slots=args.window_slots,
    )
    with kernel_backend(args.backend_kernel):
        if args.csv:
            return rows_to_csv(module.generate(**kwargs))
        return module.render(**kwargs)


def _cmd_scenarios(args: argparse.Namespace) -> str:
    import json

    if args.scenario_command == "list":
        lines = [f"{'scenario':20s} summary"]
        for name in list_scenarios():
            spec = resolve_scenario(name)
            summary = spec.description
            if len(summary) > 76:
                summary = summary[:75].rstrip() + "…"
            lines.append(f"{name:20s} {summary}")
        lines.append(
            "\nrun one: python -m repro scenarios run --scenario NAME "
            "[--switch sprinklers] [--engine vectorized]"
        )
        return "\n".join(lines)
    if args.scenario_command == "show":
        return json.dumps(resolve_scenario(args.name).to_dict(), indent=2)
    if args.scenario_command == "run":
        spec = resolve_scenario(args.scenario)
        if args.overrides:
            spec = apply_overrides(spec, args.overrides)
        result = run_single(
            args.switch,
            scenario=spec,
            n=args.n,
            load=args.load,
            num_slots=args.slots,
            seed=args.seed,
            engine=args.engine,
            store=_resolve_store(args),
            window_slots=args.window_slots,
            backend=args.backend_kernel,
        )
        lines = [
            f"Scenario {spec.name!r} on {args.switch} "
            f"(N={args.n}, load {args.load}, {args.slots} slots, "
            f"engine {args.engine})",
        ]
        for key, value in result.as_row().items():
            lines.append(f"  {key:20s} {value}")
        return "\n".join(lines)
    raise AssertionError(  # pragma: no cover - argparse enforces choices
        f"unhandled scenarios command {args.scenario_command}"
    )


def _cmd_switches(args: argparse.Namespace) -> str:
    if args.switches_command == "list":
        names = models.available(engine=args.engine)
        lines = [f"{'switch':20s} {'engines':20s} capabilities"]
        for name in names:
            model = models.get(name)
            engines = (
                "object+vectorized" if model.kernel is not None else "object"
            )
            caps = ", ".join(sorted(c.value for c in model.capabilities)) or "-"
            lines.append(f"{name:20s} {engines:20s} {caps}")
        if args.engine == "vectorized":
            lines.append(
                "\nswitches without a kernel fall back to the object "
                "engine in mixed sweeps"
            )
        return "\n".join(lines)
    if args.switches_command == "show":
        model = models.get(args.name)
        lines = [
            f"name          {model.name}",
            f"reported as   {model.reported_name}",
            f"aliases       {', '.join(model.aliases) or '-'}",
            f"engines       "
            f"{'object, vectorized' if model.kernel is not None else 'object'}",
            f"capabilities  "
            f"{', '.join(sorted(c.value for c in model.capabilities)) or '-'}",
            f"description   {model.description}",
        ]
        if model.params:
            lines.append("parameters:")
            for param in model.params:
                lines.append(
                    f"  {param.name:14s} {param.type.__name__:6s} "
                    f"default={param.default!r}  {param.doc}"
                )
        return "\n".join(lines)
    raise AssertionError(  # pragma: no cover - argparse enforces choices
        f"unhandled switches command {args.switches_command}"
    )


def _cmd_fabrics(args: argparse.Namespace) -> str:
    from .models.composite import CompositeSwitchModel, available_fabrics, get_fabric

    if args.fabrics_command == "list":
        lines = [f"{'fabric':20s} {'stages':28s} summary"]
        for name in available_fabrics():
            spec = get_fabric(name)
            chain = " -> ".join(spec.switch_names)
            summary = spec.description
            if len(summary) > 60:
                summary = summary[:59].rstrip() + "…"
            lines.append(f"{name:20s} {chain:28s} {summary}")
        lines.append(
            "\nrun one: python -m repro fabrics run --fabric NAME "
            "[--scenario ring-allreduce] [--engine vectorized]"
        )
        return "\n".join(lines)
    if args.fabrics_command == "show":
        spec = get_fabric(args.name)
        composite = CompositeSwitchModel(spec)
        lines = [
            f"name          {spec.name}",
            f"stages        {' -> '.join(spec.switch_names)}",
            f"engines       "
            f"{'object, vectorized' if composite.supports_engine('vectorized') else 'object'}",
            f"capabilities  "
            f"{', '.join(sorted(c.value for c in composite.capabilities)) or '-'}",
            f"description   {spec.description}",
            "links:",
        ]
        for k, link in enumerate(spec.links):
            detail = ", ".join(
                f"{key}={value!r}" for key, value in sorted(link.items())
            )
            lines.append(f"  stage{k} -> stage{k + 1}: {detail}")
        for k, stage in enumerate(spec.stages):
            params = stage.get("params") or {}
            if params:
                detail = ", ".join(
                    f"{key}={value!r}" for key, value in sorted(params.items())
                )
                lines.append(f"stage{k} params: {detail}")
        return "\n".join(lines)
    if args.fabrics_command == "run":
        spec = resolve_scenario(args.scenario)
        result = run_single(
            args.fabric,
            scenario=spec,
            n=args.n,
            load=args.load,
            num_slots=args.slots,
            seed=args.seed,
            engine=args.engine,
            store=_resolve_store(args),
            window_slots=args.window_slots,
            backend=args.backend_kernel,
        )
        lines = [
            f"Scenario {spec.name!r} on fabric {args.fabric} "
            f"(N={args.n}, load {args.load}, {args.slots} slots, "
            f"engine {args.engine})",
        ]
        for key, value in result.as_row().items():
            lines.append(f"  {key:28s} {value}")
        return "\n".join(lines)
    if args.fabrics_command == "delay":
        from .figures import fabric_delay

        loads = tuple(args.loads) if args.loads else DEFAULT_LOADS
        kwargs = dict(
            fabric=args.fabric,
            pattern=args.pattern,
            n=args.n,
            loads=loads,
            num_slots=args.slots,
            seed=args.seed,
            engine=args.engine,
            store=_resolve_store(args),
            window_slots=args.window_slots,
        )
        with kernel_backend(args.backend_kernel):
            if args.csv:
                return rows_to_csv(fabric_delay.generate(**kwargs))
            return fabric_delay.render(**kwargs)
    raise AssertionError(  # pragma: no cover - argparse enforces choices
        f"unhandled fabrics command {args.fabrics_command}"
    )


def _cmd_store(args: argparse.Namespace) -> str:
    from .store import ExperimentStore

    directory = (
        args.store
        or os.environ.get("REPRO_STORE_DIR")
        or DEFAULT_STORE_DIR
    )
    if not os.path.isdir(directory):
        return f"no experiment store at {directory!r} (nothing to report)"
    store = ExperimentStore(directory)
    if args.store_command == "stats":
        stats = store.stats()
        lines = [
            f"store {directory}",
            f"  entries      {stats.entries}",
            f"  size         {stats.total_bytes / 1e6:.2f} MB",
            f"  saves        {stats.saves}",
            f"  hits         {stats.hits}",
        ]
        if stats.hits + stats.saves:
            lines.append(f"  hit rate     {stats.hit_rate:.1%}")
        else:
            lines.append("  hit rate     n/a (empty manifest)")
        if stats.oldest is not None:
            import datetime

            fmt = lambda ts: datetime.datetime.fromtimestamp(ts).isoformat(  # noqa: E731
                sep=" ", timespec="seconds"
            )
            lines.append(f"  oldest save  {fmt(stats.oldest)}")
            lines.append(f"  newest save  {fmt(stats.newest)}")
        return "\n".join(lines)
    if args.store_command == "gc":
        report = store.gc(
            max_age_seconds=(
                args.max_age_days * 86400.0
                if args.max_age_days is not None
                else None
            ),
            max_total_bytes=(
                int(args.max_size_mb * 1e6)
                if args.max_size_mb is not None
                else None
            ),
        )
        return (
            f"store {directory}: removed {report.removed} objects "
            f"({report.bytes_freed / 1e6:.2f} MB), kept {report.kept}"
        )
    raise AssertionError(  # pragma: no cover - argparse enforces choices
        f"unhandled store command {args.store_command}"
    )


def _cmd_demo(args: argparse.Namespace) -> str:
    matrix = uniform_matrix(args.n, args.load)
    lines = [
        f"Demo: N={args.n}, uniform traffic at load {args.load}, "
        f"{args.slots} slots",
        f"{'switch':16s} {'mean delay':>11s} {'late pkts':>9s} {'ordered':>8s}",
    ]
    for name in list(PAPER_SWITCHES) + ["cms", "output-queued"]:
        result = run_single(
            name,
            matrix,
            args.slots,
            seed=args.seed,
            load_label=args.load,
            engine=args.engine,
        )
        lines.append(
            f"{name:16s} {result.mean_delay:11.2f} "
            f"{result.late_packets:9d} {str(result.is_ordered):>8s}"
        )
    return "\n".join(lines)


def _cmd_balance(args: argparse.Namespace) -> str:
    import numpy as np

    from .analysis.balance import bound_vs_empirical_rows
    from .figures.render import format_table
    from .traffic.matrices import diagonal_matrix

    family = (
        (lambda n, rho, rng: uniform_matrix(n, rho))
        if args.pattern == "uniform"
        else (lambda n, rho, rng: diagonal_matrix(n, rho))
    )
    rows = bound_vs_empirical_rows(
        family,
        args.n,
        rhos=args.loads,
        trials=args.trials,
        # repro: lint-ignore[RNG003] -- diagnostic command seeded directly from --seed
        rng=np.random.default_rng(args.seed),
    )
    return (
        f"Overload probability, analytical vs measured "
        f"({args.pattern} traffic, N={args.n}, {args.trials} trials/load)\n"
        + format_table(rows)
    )


def _cmd_validate(args: argparse.Namespace) -> tuple:
    """Quick invariant sweep over every registered switch; returns
    ``(report_text, ok)``."""
    matrix = uniform_matrix(args.n, 0.8)
    lines = [
        f"Self-check: N={args.n}, uniform load 0.8, {args.slots} slots",
        f"{'switch':20s} {'delivered':>9s} {'ordered':>8s} {'verdict':>8s}",
    ]
    ok = True
    for name in models.available():
        result = run_single(
            name, matrix, args.slots, seed=args.seed, keep_samples=False
        )
        switch_ok = result.measured_packets > 0
        # Ordering is required of every switch except the baseline (which
        # is *expected* to reorder under load — that is its known flaw).
        if name != "load-balanced":
            switch_ok = switch_ok and result.is_ordered
        else:
            switch_ok = switch_ok and not result.is_ordered
        ok = ok and switch_ok
        lines.append(
            f"{name:20s} {result.measured_packets:9d} "
            f"{str(result.is_ordered):>8s} {'PASS' if switch_ok else 'FAIL':>8s}"
        )
    lines.append("all checks passed" if ok else "CHECKS FAILED")
    return "\n".join(lines), ok


def _cmd_bounds(args: argparse.Namespace) -> str:
    per_queue = overload_probability_bound(args.rho, args.n)
    switch_wide = switch_wide_bound(args.rho, args.n)
    return (
        f"rho={args.rho} N={args.n}\n"
        f"per-queue overload bound:   {per_queue:.3e}\n"
        f"switch-wide (2 N^2 union):  {switch_wide:.3e}"
    )


def _cmd_telemetry(args: argparse.Namespace) -> tuple:
    """``telemetry summarize/diff/check``; returns ``(text, exit_code)``."""
    if args.telemetry_command == "summarize":
        summary = telemetry.summarize_trace(telemetry.read_trace(args.trace))
        lines = [
            f"trace {args.trace}: {summary['total_spans']} spans",
            f"{'span':28s} {'count':>7s} {'total_s':>10s} "
            f"{'mean_s':>10s} {'max_s':>10s}",
        ]
        for name, entry in summary["by_name"].items():
            lines.append(
                f"{name:28s} {entry['count']:7d} {entry['total_s']:10.4f} "
                f"{entry['mean_s']:10.6f} {entry['max_s']:10.6f}"
            )
        for root in summary["roots"]:
            lines.append(
                f"root: {root['name']} ({root.get('dur_s') or 0.0:.4f}s)"
            )
        metrics = summary.get("metrics") or {}
        if metrics:
            lines.append(f"metrics ({len(metrics)}):")
            for name, data in sorted(metrics.items()):
                detail = ", ".join(
                    f"{key}={value:.6g}" if isinstance(value, float)
                    else f"{key}={value}"
                    for key, value in sorted(data.items())
                    if key != "type"
                )
                lines.append(f"  {name:36s} {data.get('type', '?')}: {detail}")
        return "\n".join(lines), 0
    if args.telemetry_command == "diff":
        rows = telemetry.diff_traces(
            telemetry.read_trace(args.trace_a),
            telemetry.read_trace(args.trace_b),
        )
        lines = [
            f"{args.trace_a} (a) vs {args.trace_b} (b)",
            f"{'span':28s} {'a_total_s':>10s} {'b_total_s':>10s} "
            f"{'delta_s':>10s} {'ratio':>7s}",
        ]
        for row in rows:
            ratio = f"{row['ratio']:.2f}" if row["ratio"] is not None else "-"
            lines.append(
                f"{row['name']:28s} {row['a_total_s']:10.4f} "
                f"{row['b_total_s']:10.4f} {row['delta_s']:+10.4f} {ratio:>7s}"
            )
        return "\n".join(lines), 0
    if args.telemetry_command == "check":
        problems = telemetry.check_trace(
            telemetry.read_trace(args.trace), coverage=args.coverage
        )
        if problems:
            lines = [f"trace {args.trace}: {len(problems)} problem(s)"]
            lines.extend(f"  {problem}" for problem in problems)
            return "\n".join(lines), 1
        return f"trace {args.trace}: OK", 0
    raise AssertionError(  # pragma: no cover - argparse enforces choices
        f"unhandled telemetry command {args.telemetry_command}"
    )


def _cmd_serve(args: argparse.Namespace) -> tuple:
    """Run the service daemon in the foreground until /shutdown."""
    import json

    from .service import serve
    from .store import ExperimentStore

    directory = (
        args.store
        or os.environ.get("REPRO_STORE_DIR")
        or DEFAULT_STORE_DIR
    )
    store = ExperimentStore(directory, backend=args.backend)
    server = serve(
        store, host=args.host, port=args.port, workers=args.workers
    )
    print(
        json.dumps({
            "event": "serving",
            "url": server.address,
            "store": directory,
            "backend": store.backend.name,
            "workers": args.workers,
        }),
        flush=True,
    )
    server.serve_forever()
    return "service stopped", 0


def _service_url(args: argparse.Namespace) -> str:
    from .service import DEFAULT_URL

    return (
        args.url or os.environ.get("REPRO_SERVICE_URL") or DEFAULT_URL
    )


def _print_jsonl(events) -> Optional[dict]:
    """Print each event as one flushed JSON line; returns the last one."""
    import json

    last = None
    for event in events:
        print(json.dumps(event), flush=True)
        last = event
    return last


def _cmd_service_client(args: argparse.Namespace) -> tuple:
    """``submit``/``status``/``watch``/``results`` against a daemon."""
    import json

    from .service import ServiceClient

    client = ServiceClient(_service_url(args))
    if args.command == "submit":
        job_id = client.submit({
            "workload": args.workload,
            "switches": args.switches,
            "loads": args.loads,
            "n": args.n,
            "num_slots": args.slots,
            "seeds": args.seeds,
            "engine": args.engine,
            "backend": args.backend_kernel,
        })
        if not args.watch:
            return json.dumps({"job_id": job_id}), 0
        last = _print_jsonl(client.watch(job_id))
        done = last is not None and last.get("event") == "done"
        return "", 0 if done and last.get("status") == "done" else 1
    if args.command == "status":
        return json.dumps(client.status(args.job), indent=2), 0
    if args.command == "watch":
        last = _print_jsonl(client.watch(args.job, timeout=args.timeout))
        done = last is not None and last.get("event") == "done"
        return "", 0 if done and last.get("status") == "done" else 1
    if args.command == "results":
        _print_jsonl(client.results(args.job))
        return "", 0
    raise AssertionError(  # pragma: no cover - argparse enforces choices
        f"unhandled service command {args.command}"
    )


def _cmd_lint(args: argparse.Namespace) -> tuple:
    """``repro lint``: run the analyzer; exit 1 when findings remain."""
    from pathlib import Path

    from .lint import RULE_DOCS, format_findings, lint_paths
    from .lint.report import format_result

    if args.list_rules:
        width = max(len(code) for code in RULE_DOCS)
        lines = [
            "%-*s %s" % (width, code, doc)
            for code, doc in sorted(RULE_DOCS.items())
        ]
        return "\n".join(lines), 0
    try:
        result = lint_paths(
            [Path(p) for p in args.paths],
            root=Path.cwd(),
            select=args.select,
            ignore=args.ignore,
        )
    except ValueError as exc:
        return f"error: {exc}", 2
    if args.lint_format == "text":
        return format_result(result, "text"), 0 if result.ok else 1
    return (
        format_findings(result.findings, args.lint_format),
        0 if result.ok else 1,
    )


def _dispatch(args: argparse.Namespace) -> tuple:
    """Run one parsed command; returns ``(output_text, exit_code)``."""
    if args.command == "table1":
        return table1.render(), 0
    if args.command == "fig5":
        return fig5.render(rho=args.rho), 0
    if args.command == "fig6":
        return _cmd_fig(args, fig6), 0
    if args.command == "fig7":
        return _cmd_fig(args, fig7), 0
    if args.command == "demo":
        return _cmd_demo(args), 0
    if args.command == "bounds":
        return _cmd_bounds(args), 0
    if args.command == "balance":
        return _cmd_balance(args), 0
    if args.command == "bursts":
        from .figures.burst_sensitivity import render as burst_render

        return (
            burst_render(
                n=args.n, load=args.load, num_slots=args.slots, seed=args.seed
            ),
            0,
        )
    if args.command == "scenarios":
        return _cmd_scenarios(args), 0
    if args.command == "switches":
        return _cmd_switches(args), 0
    if args.command == "fabrics":
        return _cmd_fabrics(args), 0
    if args.command == "store":
        return _cmd_store(args), 0
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command in ("submit", "status", "watch", "results"):
        from .service import ServiceError

        try:
            return _cmd_service_client(args)
        except ServiceError as exc:
            return f"error: {exc}", 1
    if args.command == "validate":
        output, ok = _cmd_validate(args)
        return output, 0 if ok else 1
    raise AssertionError(  # pragma: no cover - argparse enforces the choices
        f"unhandled command {args.command}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream closed the pipe (| head, a dying pager): not an
        # error.  Point stdout at devnull so interpreter shutdown does
        # not trip over the dead descriptor again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose or args.quiet:
        telemetry.setup_logging(verbose=args.verbose, quiet=args.quiet)
    trace_path = getattr(args, "trace", None) if args.command != "telemetry" else None
    if trace_path:
        # --trace turns telemetry on for this command only (a fresh
        # tracer/registry even if REPRO_TELEMETRY already enabled it)
        # and exports the span trace on the way out.
        with telemetry.scope(memory=telemetry.memory_from_env()):
            output, code = _dispatch(args)
            spans = telemetry.export_jsonl(trace_path)
        if output:
            print(output)
        print(f"[trace: {spans} spans -> {trace_path}]", file=sys.stderr)
        return code
    output, code = _dispatch(args)
    # Streaming commands (watch, submit --watch) print as they go and
    # return empty output; don't append a blank line to their JSONL.
    if output:
        print(output)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
