"""Composite switch models: multi-stage fabrics of registered switches.

A :class:`FabricSpec` chains N registered switch models into one logical
switch: stage-k departures are re-injected as stage-(k+1) arrivals
through a per-link **port map** (stage-k output ``j`` feeds stage-(k+1)
input ``map[j]``), e.g. a two-tier leaf/spine where leaf outputs are
interleaved across spine inputs.  Any registered
:class:`~repro.models.SwitchModel` can be a stage on the object engine;
the vectorized chained replay additionally requires every stage to be
:data:`~repro.models.Capability.COMPOSABLE` (derived from having a
resumable stream kernel — the windowed interface *is* the composition
surface).

Specs are declarative and picklable (plain dicts of primitives), so
fabrics flow through sweeps, the process pool, and store cache keys the
same way switch names do.  ``register_fabric`` / ``get_fabric`` mirror
the switch registry; names share one namespace with switches so a fabric
name is accepted anywhere a switch name is
(:func:`repro.sim.experiment.run_single` dispatches on it).

The routing model is destination-preserving: a packet for final output
``d`` exits *every* stage at port ``d`` and enters the next stage at
input ``map[d]``.  Stage-(k+1) therefore sees the traffic matrix
``M'[map[d], d] = colsum_d(M_k)`` — admissible whenever the original
matrix is (column sums are preserved, each downstream input carries one
upstream output's aggregate, which is at most the load).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from . import registry
from .model import Capability, SwitchModel

__all__ = [
    "CompositeSwitchModel",
    "FabricSpec",
    "available_fabrics",
    "get_fabric",
    "interleave_stride",
    "lookup_fabric",
    "port_map",
    "register_fabric",
    "resolve_fabric",
    "stage_matrices",
]

#: Port-map kinds accepted in a :class:`FabricSpec` link entry.
PORT_MAP_KINDS = ("identity", "interleave", "reverse", "rotate", "permutation")


# -- port maps -----------------------------------------------------------------


def interleave_stride(n: int) -> int:
    """The smallest stride ``s >= 2`` coprime to ``n`` (1 if ``n <= 2``).

    ``j -> (j * s) % n`` then spreads adjacent upstream outputs across
    the downstream inputs — the classic leaf/spine interleave — while
    remaining a permutation.
    """
    if n <= 2:
        return 1
    s = 2
    while gcd(s, n) != 1:
        s += 1
    return s


def port_map(link: Mapping, n: int) -> np.ndarray:
    """Materialize one link's port map as a length-``n`` permutation.

    ``link`` is a mapping with a ``kind`` key (one of
    :data:`PORT_MAP_KINDS`) plus kind-specific fields: ``rotate`` takes
    ``shift`` (default 1) and ``permutation`` takes ``ports`` (a full
    length-``n`` permutation list).  Entry ``map[j]`` is the downstream
    input fed by upstream output ``j``.
    """
    kind = link.get("kind")
    if kind not in PORT_MAP_KINDS:
        raise ValueError(
            f"unknown port-map kind {kind!r}; known: "
            f"{', '.join(PORT_MAP_KINDS)}"
        )
    extra = set(link) - {"kind", "shift", "ports"}
    if extra:
        raise ValueError(f"unknown port-map fields: {sorted(extra)}")
    ports = np.arange(n, dtype=np.int64)
    if kind == "identity":
        return ports
    if kind == "interleave":
        return (ports * interleave_stride(n)) % n
    if kind == "reverse":
        return ports[::-1].copy()
    if kind == "rotate":
        shift = int(link.get("shift", 1))
        return (ports + shift) % n
    # kind == "permutation"
    raw = link.get("ports")
    if raw is None:
        raise ValueError("permutation port map requires a 'ports' list")
    mapped = np.asarray(raw, dtype=np.int64)
    if mapped.shape != (n,) or not np.array_equal(np.sort(mapped), ports):
        raise ValueError(
            f"port map 'ports' must be a permutation of 0..{n - 1} "
            f"(fabric stage size {n}, got {len(mapped)} entries)"
        )
    return mapped


# -- the spec ------------------------------------------------------------------


def _freeze(mapping: Mapping) -> Tuple[Tuple[str, object], ...]:
    """A hashable, order-stable snapshot of a plain mapping."""
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class FabricSpec:
    """A declarative multi-stage fabric: stages, links, nothing else.

    ``stages`` is a tuple of ``{"switch": <registry name>, "params":
    {...}}`` mappings (``params`` optional); ``links`` is a tuple of
    port-map mappings (see :func:`port_map`), one per adjacent stage
    pair.  Validation resolves every stage name against the switch
    registry at construction, so a spec that exists is runnable.
    """

    name: str
    description: str = ""
    stages: Tuple[Mapping, ...] = ()
    links: Tuple[Mapping, ...] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fabric name must be nonempty")
        stages = tuple(dict(s) for s in self.stages)
        if not stages:
            raise ValueError(f"fabric {self.name!r} needs at least one stage")
        links = self.links
        if links is None:
            links = tuple({"kind": "identity"} for _ in stages[1:])
        links = tuple(dict(l) for l in links)
        if len(links) != len(stages) - 1:
            raise ValueError(
                f"fabric {self.name!r}: {len(stages)} stages need "
                f"{len(stages) - 1} links, got {len(links)}"
            )
        for k, stage in enumerate(stages):
            extra = set(stage) - {"switch", "params"}
            if extra:
                raise ValueError(
                    f"fabric {self.name!r} stage {k}: unknown fields "
                    f"{sorted(extra)}"
                )
            switch = stage.get("switch")
            if not switch:
                raise ValueError(
                    f"fabric {self.name!r} stage {k}: missing 'switch'"
                )
            model = registry.get(switch)  # raises listing known switches
            model.validate_params(dict(stage.get("params") or {}))
        for link in links:
            if link.get("kind") not in PORT_MAP_KINDS:
                raise ValueError(
                    f"fabric {self.name!r}: unknown port-map kind "
                    f"{link.get('kind')!r}; known: "
                    f"{', '.join(PORT_MAP_KINDS)}"
                )
        object.__setattr__(self, "stages", stages)
        object.__setattr__(self, "links", links)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def switch_names(self) -> Tuple[str, ...]:
        """Canonical registry names of the stages, in order."""
        return tuple(
            registry.canonical_name(s["switch"]) for s in self.stages
        )

    def to_dict(self) -> Dict:
        """Plain-primitive form (store cache keys, SweepJob transport)."""
        stages = []
        for stage in self.stages:
            entry: Dict[str, object] = {
                "switch": registry.canonical_name(stage["switch"])
            }
            params = dict(stage.get("params") or {})
            if params:
                entry["params"] = params
            stages.append(entry)
        return {
            "name": self.name,
            "description": self.description,
            "stages": stages,
            "links": [dict(l) for l in self.links],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FabricSpec":
        known = {"name", "description", "stages", "links"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown fabric spec fields: {sorted(extra)}")
        return cls(
            name=data.get("name", ""),
            description=data.get("description", ""),
            stages=tuple(data.get("stages") or ()),
            links=tuple(data["links"]) if "links" in data else None,
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.name,
                tuple(_freeze(s) for s in self.stages),
                tuple(_freeze(l) for l in self.links),
            )
        )


def stage_matrices(matrix: np.ndarray, spec: FabricSpec) -> List[np.ndarray]:
    """Per-stage provisioning matrices for a fabric run.

    Stage 0 sees the offered matrix.  Under destination-preserving
    routing, stage-(k+1) input ``map_k[d]`` carries exactly the traffic
    destined to output ``d`` — the column sum of the stage-k matrix —
    so ``M_{k+1}[map_k[d], d] = colsum_d(M_k)`` and all other entries
    are zero.
    """
    matrix = np.asarray(matrix, dtype=float)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    out = [matrix]
    current = matrix
    for link in spec.links:
        mapped = port_map(link, n)
        cols = current.sum(axis=0)
        nxt = np.zeros((n, n), dtype=float)
        nxt[mapped, np.arange(n)] = cols
        out.append(nxt)
        current = nxt
    return out


# -- the resolved composite ----------------------------------------------------


class CompositeSwitchModel:
    """A :class:`FabricSpec` bound to its stage :class:`SwitchModel`\\ s.

    The runnable form: stage models resolved, parameters validated, and
    engine support derived (``object`` always; ``vectorized`` iff every
    stage is :data:`~repro.models.Capability.COMPOSABLE` with its params
    inside the kernel schema).  ``reported_name`` — the label on
    results — is the fabric name.
    """

    def __init__(self, spec: FabricSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.reported_name = spec.name
        self.models: Tuple[SwitchModel, ...] = tuple(
            registry.get(s["switch"]) for s in spec.stages
        )
        self.stage_params: Tuple[Dict, ...] = tuple(
            dict(s.get("params") or {}) for s in spec.stages
        )

    @property
    def capabilities(self) -> frozenset:
        """Capabilities every stage shares (what the chain can promise)."""
        caps = frozenset.intersection(
            *(m.capabilities for m in self.models)
        )
        return caps

    def supports_engine(self, engine: str) -> bool:
        if engine == "object":
            return True
        if engine == "vectorized":
            return all(
                Capability.COMPOSABLE in m.capabilities
                and set(p) <= set(m.kernel_params)
                for m, p in zip(self.models, self.stage_params)
            )
        raise ValueError(
            f"unknown engine {engine!r}; known: object, vectorized"
        )

    def require_engine(self, engine: str) -> None:
        """Raise with the offending stage when ``engine`` cannot run it."""
        if self.supports_engine(engine):
            return
        for k, (model, params) in enumerate(
            zip(self.models, self.stage_params)
        ):
            if Capability.COMPOSABLE not in model.capabilities:
                composable = ", ".join(
                    registry.available(capability=Capability.COMPOSABLE)
                )
                raise ValueError(
                    f"fabric {self.name!r} stage {k} ({model.name!r}) is "
                    f"not composable on the vectorized engine (no stream "
                    f"kernel); composable switches: {composable}. "
                    f"Use engine='object'."
                )
            if not set(params) <= set(model.kernel_params):
                raise ValueError(
                    f"fabric {self.name!r} stage {k} ({model.name!r}): "
                    f"parameters {sorted(set(params) - set(model.kernel_params))} "
                    f"are object-engine only; use engine='object'"
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def port_maps(self, n: int) -> List[np.ndarray]:
        """The materialized per-link permutations for stage size ``n``."""
        return [port_map(link, n) for link in self.spec.links]

    def stage_matrices(self, matrix: np.ndarray) -> List[np.ndarray]:
        return stage_matrices(matrix, self.spec)

    def __repr__(self) -> str:
        chain = " -> ".join(m.name for m in self.models)
        return f"CompositeSwitchModel({self.name!r}, {chain})"


# -- the fabric registry -------------------------------------------------------

_FABRICS: Dict[str, FabricSpec] = {}


def register_fabric(spec: FabricSpec, replace: bool = False) -> FabricSpec:
    """Add a fabric spec; fabric and switch names share one namespace.

    Anywhere a switch name is accepted, a fabric name dispatches to the
    multi-stage runner — so a collision would make the run ambiguous and
    is refused in both directions.
    """
    if not replace and spec.name in _FABRICS:
        raise ValueError(f"fabric {spec.name!r} already registered")
    try:
        registry.canonical_name(spec.name)
    except ValueError:
        pass
    else:
        raise ValueError(
            f"fabric name {spec.name!r} collides with a registered switch"
        )
    _FABRICS[spec.name] = spec
    return spec


def get_fabric(name: str) -> FabricSpec:
    """Look up a fabric by name; raises listing the registered fabrics."""
    if name not in _FABRICS:
        known = ", ".join(sorted(_FABRICS)) or "(none)"
        raise ValueError(f"unknown fabric {name!r}; known: {known}")
    return _FABRICS[name]


def lookup_fabric(name) -> Optional[FabricSpec]:
    """Non-raising :func:`get_fabric` — the dispatch predicate used by
    :func:`repro.sim.experiment.run_single` and friends to decide
    whether a "switch name" is actually a fabric."""
    if isinstance(name, FabricSpec):
        return name
    if isinstance(name, str):
        return _FABRICS.get(name)
    return None


def available_fabrics() -> Tuple[str, ...]:
    """Registered fabric names, sorted."""
    return tuple(sorted(_FABRICS))


def resolve_fabric(designator: Union[str, Mapping, FabricSpec]) -> FabricSpec:
    """A spec from a registry name, a spec dict, or a spec (identity)."""
    if isinstance(designator, FabricSpec):
        return designator
    if isinstance(designator, str):
        return get_fabric(designator)
    if isinstance(designator, Mapping):
        return FabricSpec.from_dict(designator)
    raise TypeError(
        f"cannot resolve a fabric from {type(designator).__name__}"
    )


# -- built-in fabrics ----------------------------------------------------------

register_fabric(
    FabricSpec(
        name="leaf-spine",
        description=(
            "Two-tier fabric: a Sprinklers leaf load-balances into an "
            "output-queued spine through an interleaved port map — the "
            "paper's switch deployed as the first hop of a topology."
        ),
        stages=(
            {"switch": "sprinklers"},
            {"switch": "output-queued"},
        ),
        links=({"kind": "interleave"},),
    )
)

register_fabric(
    FabricSpec(
        name="dual-sprinklers",
        description=(
            "Two Sprinklers stages back to back (rotated port map): "
            "does the reordering-free guarantee survive cascading?"
        ),
        stages=(
            {"switch": "sprinklers"},
            {"switch": "sprinklers"},
        ),
        links=({"kind": "rotate", "shift": 1},),
    )
)
