"""The :class:`SwitchModel` descriptor: one switch, fully described.

A model bundles everything the rest of the system needs to know about a
switch algorithm — how to build its object-engine instance, whether (and
how) the vectorized engine can replay it, what its capabilities are, and
what parameters it accepts — so that experiment orchestration, sweeps,
figures and the CLI can treat every switch uniformly through the
registry (:mod:`repro.models.registry`) instead of hardcoding per-switch
knowledge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["Capability", "ParamSpec", "SwitchModel"]


class Capability(str, enum.Enum):
    """Declared properties of a switch model (informational and load-
    bearing: engine routing and future schedulers key off these)."""

    #: The vectorized kernel reproduces the object engine bit-identically
    #: (per-packet departure slots, reordering counts, delay breakdown).
    EXACT_REPLAY = "exact-replay"
    #: The control loop feeds back on queue state (EWMA rate estimates,
    #: clearance feedback), so a feed-forward array replay cannot model
    #: it; such switches stay on the object engine.
    FEEDBACK_COUPLED = "feedback-coupled"
    #: Correct under nonstationary destination drift (scenarios with a
    #: ``drift`` section); switches provisioned once from a static matrix
    #: still *run*, but this capability marks those whose mechanism does
    #: not assume stationarity.
    SUPPORTS_DRIFT = "supports-drift"
    #: Has an online adaptation mode (e.g. Sprinklers' adaptive stripe
    #: resizing).
    SUPPORTS_ADAPTIVE = "supports-adaptive"
    #: The vectorized kernel has a resumable (windowed) form: the run
    #: can replay window-by-window with O(window) peak arrival memory
    #: and bit-identical results (``stream_kernel`` is set).  Derived
    #: automatically from the ``stream_kernel`` field at registration.
    STREAMING = "streaming"
    #: The stream kernel accepts a *list* of seeds and replays them in
    #: one pass over disjoint per-seed id blocks (multi-seed batched
    #: replication).  Requires ``stream_kernel``.
    SEED_BATCHED = "seed-batched"
    #: The switch can serve as one stage of a multi-stage fabric
    #: (:mod:`repro.models.composite`): its finalized slot-windows of
    #: departures are a valid arrival stream for a downstream stage.
    #: Derived automatically from ``stream_kernel`` — the resumable
    #: window interface *is* the composition surface.
    COMPOSABLE = "composable"
    #: The vectorized kernel's hot scalar-recursion passes have compiled
    #: (numba ``@njit``) implementations selectable via
    #: ``backend="compiled"``, bit-identical to the NumPy reference.
    #: Derived automatically from the ``kernel`` field — every
    #: vectorized kernel funnels through the shared compiled passes
    #: (:mod:`repro.sim.kernels.compiled`).
    COMPILED = "compiled"


class ParamSpec:
    """One declared constructor parameter of a switch model."""

    __slots__ = ("name", "type", "default", "doc")

    def __init__(self, name: str, type: type, default: Any, doc: str = "") -> None:
        self.name = name
        self.type = type
        self.default = default
        self.doc = doc

    def __repr__(self) -> str:
        return (
            f"ParamSpec({self.name!r}, {self.type.__name__}, "
            f"default={self.default!r})"
        )


#: Object-engine builder signature: ``(n, matrix, seed, **params) -> switch``.
SwitchBuilder = Callable[..., object]
#: Vectorized kernel signature:
#: ``(batch, matrix, seed, **params) -> (Departures, extras | None)``.
VectorizedKernel = Callable[..., tuple]
#: Stream-kernel factory signature: ``(matrix, seeds, total_slots,
#: **params) -> streamer`` where the streamer exposes
#: ``feed(windows) -> [Departures]`` and ``finish() -> ([Departures],
#: [extras])`` — one entry per seed.
StreamKernel = Callable[..., object]


@dataclass(frozen=True)
class SwitchModel:
    """A registered switch: builder, optional kernel, capabilities, schema.

    ``name`` is the canonical registry key (also the store cache-key
    value); ``aliases`` resolve to it in :func:`repro.models.get`.
    ``reported_name`` is the ``switch.name`` the object-engine instance
    reports in results (usually the registry name; the baseline
    load-balanced switch reports ``baseline-lb``) — the vectorized engine
    must label its results identically for parity.
    """

    name: str
    builder: SwitchBuilder
    description: str = ""
    aliases: Tuple[str, ...] = ()
    reported_name: Optional[str] = None
    kernel: Optional[VectorizedKernel] = None
    #: Optional resumable (windowed / multi-seed) form of the kernel;
    #: setting it implies :data:`Capability.STREAMING`.
    stream_kernel: Optional[StreamKernel] = None
    capabilities: frozenset = field(default_factory=frozenset)
    params: Tuple[ParamSpec, ...] = ()
    #: The subset of declared parameter names the vectorized kernel also
    #: honors.  A run requesting any parameter outside this set routes to
    #: the object engine (correctness over speed): e.g. UFS's finite
    #: ``input_buffer`` drops packets, which the array replay does not
    #: model, while PF's ``threshold`` is pure frame-formation input.
    kernel_params: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("switch model name must be nonempty")
        if self.reported_name is None:
            object.__setattr__(self, "reported_name", self.name)
        object.__setattr__(
            self, "capabilities", frozenset(Capability(c) for c in self.capabilities)
        )
        if self.kernel is not None and Capability.FEEDBACK_COUPLED in self.capabilities:
            raise ValueError(
                f"switch model {self.name!r}: a feedback-coupled control "
                f"loop cannot have an exact vectorized kernel"
            )
        if self.kernel is not None:
            object.__setattr__(
                self, "capabilities", self.capabilities | {Capability.COMPILED}
            )
        elif Capability.COMPILED in self.capabilities:
            raise ValueError(
                f"switch model {self.name!r} declares "
                f"{Capability.COMPILED.value!r} but has no vectorized kernel"
            )
        if self.stream_kernel is not None:
            if self.kernel is None:
                raise ValueError(
                    f"switch model {self.name!r}: a stream kernel requires "
                    f"the monolithic kernel (it is the parity oracle)"
                )
            object.__setattr__(
                self,
                "capabilities",
                self.capabilities
                | {Capability.STREAMING, Capability.COMPOSABLE},
            )
        else:
            for derived in (Capability.STREAMING, Capability.COMPOSABLE):
                if derived in self.capabilities:
                    raise ValueError(
                        f"switch model {self.name!r} declares "
                        f"{derived.value!r} but has no stream_kernel"
                    )
        if (
            Capability.SEED_BATCHED in self.capabilities
            and self.stream_kernel is None
        ):
            raise ValueError(
                f"switch model {self.name!r} declares "
                f"{Capability.SEED_BATCHED.value!r} but has no stream_kernel"
            )
        declared = {p.name for p in self.params}
        stray = set(self.kernel_params) - declared
        if stray:
            raise ValueError(
                f"switch model {self.name!r}: kernel_params {sorted(stray)} "
                f"not in the declared parameter schema"
            )

    # -- engine support --------------------------------------------------------

    @property
    def seed_batched(self) -> bool:
        """Whether the stream kernel replays multiple seeds in one pass."""
        return Capability.SEED_BATCHED in self.capabilities

    def supports_engine(self, engine: str, params: Optional[Dict] = None) -> bool:
        """Whether this switch runs natively on ``engine`` (with the
        given constructor parameters, if any)."""
        if engine == "object":
            return True
        if engine == "vectorized":
            if self.kernel is None:
                return False
            return not params or set(params) <= set(self.kernel_params)
        raise ValueError(f"unknown engine {engine!r}; known: object, vectorized")

    # -- construction ----------------------------------------------------------

    def validate_params(self, params: Dict[str, Any]) -> None:
        """Reject parameters outside the declared schema."""
        known = {p.name for p in self.params}
        unknown = set(params) - known
        if unknown:
            schema = ", ".join(sorted(known)) or "(none)"
            raise ValueError(
                f"switch {self.name!r}: unknown parameters "
                f"{sorted(unknown)}; declared: {schema}"
            )

    def build(self, n: int, matrix, seed: int, **params):
        """Instantiate the object-engine switch."""
        self.validate_params(params)
        return self.builder(n, matrix, seed, **params)

    def __repr__(self) -> str:
        caps = ",".join(sorted(c.value for c in self.capabilities)) or "-"
        engines = "object+vectorized" if self.kernel is not None else "object"
        return f"SwitchModel({self.name!r}, engines={engines}, caps=[{caps}])"
