"""The switch-model registry: one lookup for every layer.

``register`` / ``get`` / ``available`` are the only switch-resolution
primitives in the library — experiment orchestration, sweeps, figures,
the CLI and the vectorized engine all go through here, so adding a
switch (built-in or third-party) is one ``register`` call away from
every entry point.

Third-party switches can also ship as package entry points in the
``repro.switch_models`` group; each entry point resolves to a
:class:`~repro.models.model.SwitchModel` (or a zero-argument factory
returning one, or an iterable of either).  Discovery is lazy — the first
registry query loads them — and failures are warnings, not crashes: a
broken plugin must not take the built-in switches down with it.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Optional, Tuple

from .model import SwitchModel

__all__ = [
    "ENTRY_POINT_GROUP",
    "available",
    "build",
    "canonical_name",
    "discover_entry_points",
    "get",
    "register",
]

#: The package entry-point group scanned for third-party switch models.
ENTRY_POINT_GROUP = "repro.switch_models"

_MODELS: Dict[str, SwitchModel] = {}
_ALIASES: Dict[str, str] = {}
_discovered = False


def register(model: SwitchModel, replace: bool = False) -> SwitchModel:
    """Add a switch model (refusing silent overwrites unless ``replace``)."""
    taken = set(_MODELS) | set(_ALIASES)
    claims = (model.name, *model.aliases)
    if not replace:
        clashes = [c for c in claims if c in taken]
        if clashes:
            raise ValueError(
                f"switch model name(s) already registered: {sorted(clashes)}"
            )
    for alias in model.aliases:
        if alias == model.name:
            raise ValueError(f"switch model {model.name!r} aliases itself")
    _MODELS[model.name] = model
    for alias in model.aliases:
        _ALIASES[alias] = model.name
    return model


def canonical_name(name: str) -> str:
    """Resolve an alias to its registry name (identity for canonical names).

    Raises ``ValueError`` for unknown names, listing what is registered.
    """
    _ensure_discovered()
    if name in _MODELS:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    known = ", ".join(sorted(_MODELS))
    raise ValueError(f"unknown switch {name!r}; known: {known}")


def get(name: str) -> SwitchModel:
    """Look up a switch model by name or alias."""
    return _MODELS[canonical_name(name)]


def available(
    engine: Optional[str] = None, capability=None
) -> Tuple[str, ...]:
    """Registered switch names (canonical, sorted), optionally filtered.

    ``engine="vectorized"`` lists the switches with an exact kernel;
    ``engine="object"`` lists all.  ``capability`` further restricts to
    models declaring that :class:`~repro.models.Capability` (name or
    enum) — e.g. ``available(engine="vectorized",
    capability="streaming")`` are the switches the windowed replay can
    run.
    """
    from .model import Capability

    _ensure_discovered()
    names = _MODELS
    if engine is not None:
        if engine not in ("object", "vectorized"):
            raise ValueError(
                f"unknown engine {engine!r}; known: object, vectorized"
            )
        names = {
            n: m for n, m in names.items() if m.supports_engine(engine)
        }
    if capability is not None:
        wanted = Capability(capability)
        names = {
            n: m for n, m in names.items() if wanted in m.capabilities
        }
    return tuple(sorted(names))


def build(name: str, n: int, matrix, seed: int, **params):
    """Instantiate a switch by registry name (the object-engine path)."""
    return get(name).build(n, matrix, seed, **params)


def _ensure_discovered() -> None:
    global _discovered
    if not _discovered:
        _discovered = True
        discover_entry_points()


def discover_entry_points(
    group: str = ENTRY_POINT_GROUP, entries: Optional[Iterable] = None
) -> int:
    """Load third-party switch models from package entry points.

    ``entries`` injects pre-resolved entry-point objects (anything with
    ``.name`` and ``.load()``) — the test seam, also usable by embedders
    that manage their own plugin lists.  Returns the number of models
    registered; a failing plugin emits a warning and is skipped.
    """
    if entries is None:
        try:
            from importlib.metadata import entry_points

            entries = entry_points(group=group)
        except Exception:  # pragma: no cover - stdlib variance
            return 0
    count = 0
    for entry in entries:
        try:
            loaded = entry.load()
            if not isinstance(loaded, SwitchModel) and callable(loaded):
                loaded = loaded()
            models = (
                loaded if isinstance(loaded, (list, tuple)) else (loaded,)
            )
            for model in models:
                if not isinstance(model, SwitchModel):
                    raise TypeError(
                        f"entry point produced {type(model).__name__}, "
                        f"not SwitchModel"
                    )
                register(model)
                count += 1
        except Exception as exc:
            warnings.warn(
                f"failed to load switch-model entry point "
                f"{getattr(entry, 'name', entry)!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return count
