"""Registration of the library's built-in switch models.

Importing :mod:`repro.models` imports this module, which registers every
switch the library ships — the five curves of the paper's Figs. 6-7 plus
the references and extensions — with its object-engine builder, its
vectorized kernel (where one exists), its capability set, and its
parameter schema.  This is the single place per-switch knowledge lives;
everything else resolves through the registry.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.interval_assignment import PlacementMode, StripeIntervalAssignment
from ..core.sprinklers_switch import SprinklersSwitch
from ..sim.kernels import foff as _k_foff
from ..sim.kernels import load_balanced as _k_lb
from ..sim.kernels import output_queued as _k_oq
from ..sim.kernels import pf as _k_pf
from ..sim.kernels import sprinklers as _k_sprinklers
from ..sim.kernels import ufs as _k_ufs
from ..sim.rng import spawn_generator
from ..switching.baseline import BaselineLoadBalancedSwitch
from ..switching.cms import CmsSwitch
from ..switching.foff import FoffSwitch
from ..switching.hashing import TcpHashingSwitch
from ..switching.output_queued import OutputQueuedSwitch
from ..switching.pf import PaddedFramesSwitch
from ..switching.ufs import UfsSwitch
from .model import Capability, ParamSpec, SwitchModel
from .registry import register

__all__: list = []


def _sprinklers_assignment(
    matrix: np.ndarray, seed: int
) -> StripeIntervalAssignment:
    rng = spawn_generator(seed, "sprinklers-placement")
    return StripeIntervalAssignment(matrix, rng=rng, mode=PlacementMode.OLS)


def _build_sprinklers(n: int, matrix: np.ndarray, seed: int) -> SprinklersSwitch:
    return SprinklersSwitch(_sprinklers_assignment(matrix, seed))


def _build_sprinklers_adaptive(
    n: int, matrix: np.ndarray, seed: int
) -> SprinklersSwitch:
    # Adaptive mode starts from the oracle assignment but re-sizes online.
    return SprinklersSwitch(_sprinklers_assignment(matrix, seed), adaptive=True)


def _build_lb(
    n: int, matrix: np.ndarray, seed: int, input_buffer: Optional[int] = None
) -> BaselineLoadBalancedSwitch:
    return BaselineLoadBalancedSwitch(n, input_buffer=input_buffer)


def _build_ufs(
    n: int, matrix: np.ndarray, seed: int, input_buffer: Optional[int] = None
) -> UfsSwitch:
    return UfsSwitch(n, input_buffer=input_buffer)


def _build_foff(n: int, matrix: np.ndarray, seed: int) -> FoffSwitch:
    return FoffSwitch(n)


def _build_pf(
    n: int, matrix: np.ndarray, seed: int, threshold: Optional[int] = None
) -> PaddedFramesSwitch:
    return PaddedFramesSwitch(n, threshold=threshold)


def _build_hashing(
    n: int, matrix: np.ndarray, seed: int, per_flow: bool = True
) -> TcpHashingSwitch:
    return TcpHashingSwitch(n, salt=seed, per_flow=per_flow)


register(SwitchModel(
    name="sprinklers",
    description=(
        "Randomized variable-size striping with LSF service (paper §3), "
        "oracle stripe sizing from the provisioned matrix."
    ),
    builder=_build_sprinklers,
    kernel=_k_sprinklers.departures,
    stream_kernel=_k_sprinklers.stream,
    capabilities={
        Capability.EXACT_REPLAY,
        Capability.SUPPORTS_DRIFT,
        Capability.SEED_BATCHED,
    },
))

register(SwitchModel(
    name="sprinklers-adaptive",
    description=(
        "Sprinklers with online EWMA rate estimation and stripe resizing "
        "— the feedback loop the static replay cannot model."
    ),
    builder=_build_sprinklers_adaptive,
    reported_name="sprinklers",  # the switch class reports its base name
    capabilities={
        Capability.FEEDBACK_COUPLED,
        Capability.SUPPORTS_ADAPTIVE,
        Capability.SUPPORTS_DRIFT,
    },
))

register(SwitchModel(
    name="ufs",
    description="Uniform Frame Spreading: full-frame aggregation (§2.2).",
    builder=_build_ufs,
    kernel=_k_ufs.departures,
    stream_kernel=_k_ufs.stream,
    capabilities={
        Capability.EXACT_REPLAY,
        Capability.SUPPORTS_DRIFT,
        Capability.SEED_BATCHED,
    },
    params=(
        ParamSpec("input_buffer", int, None,
                  "per-input buffer cap (packets); None = infinite"),
    ),
))

register(SwitchModel(
    name="foff",
    description=(
        "Full Ordered Frames First: partial frames plus per-output "
        "resequencers (§2.2)."
    ),
    builder=_build_foff,
    kernel=_k_foff.departures,
    stream_kernel=_k_foff.stream,
    capabilities={
        Capability.EXACT_REPLAY,
        Capability.SUPPORTS_DRIFT,
        Capability.SEED_BATCHED,
    },
))

register(SwitchModel(
    name="pf",
    description=(
        "Padded Frames: UFS with fake-cell padding of the longest VOQ "
        "past a threshold (§2.3)."
    ),
    builder=_build_pf,
    kernel=_k_pf.departures,
    stream_kernel=_k_pf.stream,
    capabilities={
        Capability.EXACT_REPLAY,
        Capability.SUPPORTS_DRIFT,
        Capability.SEED_BATCHED,
    },
    params=(
        ParamSpec("threshold", int, None,
                  "minimum VOQ length to pad (default N // 2)"),
    ),
    kernel_params=("threshold",),
))

register(SwitchModel(
    name="load-balanced",
    description=(
        "The plain two-stage load-balanced switch (Chang et al.): "
        "maximal throughput, unbounded reordering."
    ),
    builder=_build_lb,
    kernel=_k_lb.departures,
    stream_kernel=_k_lb.stream,
    reported_name="baseline-lb",
    aliases=("baseline-lb",),
    capabilities={
        Capability.EXACT_REPLAY,
        Capability.SUPPORTS_DRIFT,
        Capability.SEED_BATCHED,
    },
    params=(
        ParamSpec("input_buffer", int, None,
                  "per-input buffer cap (packets); None = infinite"),
    ),
))

register(SwitchModel(
    name="output-queued",
    description="Ideal output-queued reference (the delay lower bound).",
    builder=lambda n, matrix, seed: OutputQueuedSwitch(n),
    kernel=_k_oq.departures,
    stream_kernel=_k_oq.stream,
    aliases=("oq",),
    capabilities={
        Capability.EXACT_REPLAY,
        Capability.SUPPORTS_DRIFT,
        Capability.SEED_BATCHED,
    },
))

register(SwitchModel(
    name="cms",
    description=(
        "Concurrent Matching Switch: token-based distributed matching "
        "over the intermediate stage."
    ),
    builder=lambda n, matrix, seed: CmsSwitch(n),
    capabilities={Capability.SUPPORTS_DRIFT},
))

register(SwitchModel(
    name="tcp-hashing",
    description=(
        "Flow-hashing load balancing: order-safe per flow, skew-limited "
        "balance (salted from the run seed)."
    ),
    builder=_build_hashing,
    capabilities={Capability.SUPPORTS_DRIFT},
    params=(
        ParamSpec("per_flow", bool, True,
                  "hash on flow ids (True) or whole VOQs (False)"),
    ),
))
