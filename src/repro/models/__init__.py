"""First-class switch-model plugin API.

One registry for everything the system knows about a switch algorithm:

* the **object-engine builder** ``(n, matrix, seed, **params) -> switch``;
* the optional **vectorized kernel** ``(batch, matrix, seed) ->
  (Departures, extras)`` the batch engine dispatches to;
* the optional **stream kernel** ``(matrix, seeds, total_slots,
  **params) -> streamer`` — the kernel's resumable form, replaying a run
  window-by-window with bounded memory and, where the capability set
  says ``seed-batched``, many seeds in one stacked pass;
* a declared **capability set** (:class:`Capability`: exact-replay vs
  feedback-coupled, supports-drift, supports-adaptive, streaming,
  seed-batched);
* a **parameter schema** (:class:`ParamSpec`) for constructor knobs.

Usage::

    from repro import models

    model = models.get("sprinklers")
    switch = model.build(32, matrix, seed=0)
    models.available(engine="vectorized")
    # ('foff', 'load-balanced', 'output-queued', 'pf', 'sprinklers', 'ufs')

Registering a custom switch::

    models.register(models.SwitchModel(
        name="my-switch",
        builder=lambda n, matrix, seed: MySwitch(n),
        capabilities={models.Capability.SUPPORTS_DRIFT},
    ))

Third-party packages can instead expose a ``repro.switch_models`` entry
point resolving to a :class:`SwitchModel` (or a factory / list thereof);
the registry discovers those lazily on first use.

The legacy names (``repro.sim.experiment.SWITCH_BUILDERS`` /
``build_switch``, ``repro.sim.fast_engine.supports_fast_engine`` /
``FAST_ENGINE_SWITCHES``) remain as deprecation shims backed by this
registry.
"""

from .model import Capability, ParamSpec, SwitchModel
from .registry import (
    ENTRY_POINT_GROUP,
    available,
    build,
    canonical_name,
    discover_entry_points,
    get,
    register,
)

#: The five curves of the paper's Figs. 6-7, in the paper's legend order.
#: Defined here (not in .builtin) so the layers that import it during
#: package initialization — sim.experiment, sim.parallel, the figures —
#: find it on the partially initialized module while .builtin below pulls
#: those very layers in for the kernels.
PAPER_SWITCHES = (
    "load-balanced",
    "ufs",
    "foff",
    "pf",
    "sprinklers",
)

# Importing the built-ins registers them.
from . import builtin as _builtin  # noqa: E402,F401

# Composite fabrics resolve stage names against the registry at
# construction, so they load after the built-ins.
from .composite import (  # noqa: E402
    CompositeSwitchModel,
    FabricSpec,
    available_fabrics,
    get_fabric,
    lookup_fabric,
    register_fabric,
    resolve_fabric,
)

__all__ = [
    "Capability",
    "CompositeSwitchModel",
    "ENTRY_POINT_GROUP",
    "FabricSpec",
    "PAPER_SWITCHES",
    "ParamSpec",
    "SwitchModel",
    "available",
    "available_fabrics",
    "build",
    "canonical_name",
    "discover_entry_points",
    "get",
    "get_fabric",
    "lookup_fabric",
    "register",
    "register_fabric",
    "resolve_fabric",
]
