"""Sprinklers: reordering-free load-balanced switching (CoNeXT 2014).

A from-scratch Python reproduction of Ding, Xu, Dai, Song & Lin,
*"Sprinklers: A Randomized Variable-Size Striping Approach to
Reordering-Free Load-Balanced Switching"* — the switch itself, every
baseline it is compared against, the slotted-time simulator substrate, the
traffic generators, and the paper's analytical results (Theorem 1/2 bounds,
the §5 delay model).

Quickstart::

    import numpy as np
    from repro import SprinklersSwitch, TrafficGenerator, simulate
    from repro.traffic.matrices import uniform_matrix

    matrix = uniform_matrix(32, 0.8)                  # N=32, 80% load
    switch = SprinklersSwitch.from_rates(matrix, seed=1)
    traffic = TrafficGenerator(matrix, np.random.default_rng(2))
    result = simulate(switch, traffic, num_slots=20_000, load_label=0.8)
    assert result.is_ordered                          # never reorders
    print(result.mean_delay)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured comparison of every table and figure.
"""

from .core.dyadic import DyadicInterval, dyadic_interval_for
from .core.interval_assignment import PlacementMode, StripeIntervalAssignment
from .core.latin import weakly_uniform_ols
from .core.sprinklers_switch import SprinklersSwitch
from .core.striping import Stripe, StripeAssembler, stripe_size_for_rate
from .models import Capability, SwitchModel
from .models import register as register_switch_model
from .sim.engine import SimulationEngine, simulate
from .sim.experiment import delay_vs_load_sweep, run_single
from .sim.fast_engine import run_single_fast
from .sim.metrics import SimulationResult

# Imported after .sim on purpose: sim.experiment pulls in scenarios.build,
# which reaches back for sim.rng — loading sim first keeps that resolvable.
from .scenarios import ScenarioSpec, get_scenario, list_scenarios
from .store import ExperimentStore
from .switching.baseline import BaselineLoadBalancedSwitch
from .switching.foff import FoffSwitch
from .switching.hashing import TcpHashingSwitch
from .switching.output_queued import OutputQueuedSwitch
from .switching.packet import Packet
from .switching.pf import PaddedFramesSwitch
from .switching.ufs import UfsSwitch
from .traffic.generator import TrafficGenerator

__version__ = "1.0.0"

__all__ = [
    "BaselineLoadBalancedSwitch",
    "Capability",
    "DyadicInterval",
    "ExperimentStore",
    "FoffSwitch",
    "OutputQueuedSwitch",
    "Packet",
    "PaddedFramesSwitch",
    "PlacementMode",
    "ScenarioSpec",
    "SimulationEngine",
    "SimulationResult",
    "SprinklersSwitch",
    "Stripe",
    "StripeAssembler",
    "StripeIntervalAssignment",
    "SwitchModel",
    "TcpHashingSwitch",
    "TrafficGenerator",
    "UfsSwitch",
    "delay_vs_load_sweep",
    "dyadic_interval_for",
    "get_scenario",
    "list_scenarios",
    "register_switch_model",
    "run_single",
    "run_single_fast",
    "simulate",
    "stripe_size_for_rate",
    "weakly_uniform_ols",
    "__version__",
]
