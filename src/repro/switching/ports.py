"""Queue primitives shared by every switch implementation.

These are deliberately thin wrappers over :class:`collections.deque` that
add the occupancy accounting the simulator's metrics and the conservation
tests rely on (current depth, high-water mark, totals).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from .packet import Packet

__all__ = ["FifoQueue", "VoqBank", "PerOutputBank"]


class FifoQueue:
    """A FIFO of packets with occupancy statistics."""

    __slots__ = ("_items", "max_depth", "total_enqueued", "total_dequeued")

    def __init__(self) -> None:
        self._items: Deque[Packet] = deque()
        self.max_depth = 0
        self.total_enqueued = 0
        self.total_dequeued = 0

    def push(self, packet: Packet) -> None:
        """Append a packet at the tail."""
        self._items.append(packet)
        self.total_enqueued += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def pop(self) -> Packet:
        """Remove and return the head packet."""
        self.total_dequeued += 1
        return self._items.popleft()

    def peek(self) -> Packet:
        """Return (without removing) the head packet."""
        return self._items[0]

    def extend(self, packets: Iterable[Packet]) -> None:
        """Append several packets, preserving their order."""
        for packet in packets:
            self.push(packet)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self):
        return iter(self._items)

    def __repr__(self) -> str:
        return f"FifoQueue(depth={len(self._items)}, max={self.max_depth})"


class VoqBank:
    """The N virtual output queues of one input port."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.queues: List[FifoQueue] = [FifoQueue() for _ in range(n)]

    def push(self, packet: Packet) -> None:
        """Enqueue a packet into the VOQ of its output port."""
        self.queues[packet.output_port].push(packet)

    def queue(self, output_port: int) -> FifoQueue:
        """The VOQ holding packets for ``output_port``."""
        return self.queues[output_port]

    def occupancy(self) -> int:
        """Total packets across all VOQs."""
        return sum(len(q) for q in self.queues)

    def longest(self) -> Optional[int]:
        """Index of the longest nonempty VOQ (ties to the lowest index)."""
        best_len = 0
        best: Optional[int] = None
        for j, q in enumerate(self.queues):
            if len(q) > best_len:
                best_len = len(q)
                best = j
        return best

    def nonempty_outputs(self) -> List[int]:
        """Outputs with at least one queued packet."""
        return [j for j, q in enumerate(self.queues) if q]

    def __repr__(self) -> str:
        return f"VoqBank(n={self.n}, occupancy={self.occupancy()})"


class PerOutputBank:
    """Per-output FIFOs at an intermediate port (second-stage buffers)."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.queues: List[FifoQueue] = [FifoQueue() for _ in range(n)]

    def push(self, packet: Packet) -> None:
        """Enqueue a packet into the FIFO of its output port."""
        self.queues[packet.output_port].push(packet)

    def queue(self, output_port: int) -> FifoQueue:
        """The FIFO of packets heading to ``output_port``."""
        return self.queues[output_port]

    def occupancy(self) -> int:
        """Total packets buffered at this intermediate port."""
        return sum(len(q) for q in self.queues)

    def __repr__(self) -> str:
        return f"PerOutputBank(n={self.n}, occupancy={self.occupancy()})"
