"""Abstract two-stage load-balanced switch and its slot protocol.

Every switch in this library — Sprinklers and all the baselines — shares the
same physical architecture (paper Fig. 1): N inputs, N intermediate ports,
N outputs, and the two deterministic periodic fabrics of
:mod:`repro.switching.fabric`.  What differs is purely the *logic* at the
input and intermediate ports, so this base class fixes the per-slot protocol
and the bookkeeping, and subclasses implement three hooks.

Slot protocol (the timing convention of DESIGN.md §1.5), executed by
:meth:`TwoStageSwitch.step` for each slot ``t``:

1. **deliver** — packets that crossed fabric 1 during slot ``t-1`` are
   delivered to their intermediate ports (they become eligible for stage-2
   service from this slot on);
2. **accept** — packets arriving at the inputs in slot ``t`` are handed to
   the input logic (eligible for stage-1 service in the same slot);
3. **stage 1** — each input may transmit one packet to the intermediate
   port fabric 1 currently connects it to;
4. **stage 2** — each intermediate port may transmit one packet to the
   output fabric 2 currently connects it to; those packets depart.

The base class enforces the fabric constraints (one packet per connection,
correct endpoint) and maintains conservation counters used by tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .fabric import decreasing_connection, increasing_connection
from .packet import Packet

__all__ = ["TwoStageSwitch"]


class TwoStageSwitch:
    """Base class for all two-stage load-balanced switches.

    Subclasses implement:

    * :meth:`_accept` — file newly arrived packets into input-side state;
    * :meth:`_serve_input` — pick (at most) the one packet input ``i``
      transmits to intermediate port ``m`` this slot;
    * :meth:`_deliver` — file a packet that just crossed fabric 1 into
      intermediate-port state;
    * :meth:`_serve_intermediate` — pick (at most) the one packet
      intermediate ``m`` transmits to output ``j`` this slot;
    * :meth:`buffered_packets` — total packets currently buffered (for
      conservation checks).

    Subclasses may also override :meth:`_on_departure` (e.g. to feed
    resequencers or clearance accounting).
    """

    #: Human-readable algorithm name (overridden by subclasses).
    name = "two-stage"
    #: Whether the algorithm guarantees in-order delivery per VOQ.
    guarantees_ordering = False

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"switch size must be positive, got {n}")
        self.n = n
        self.now = 0
        self.injected = 0
        self.departed = 0
        self.fake_departed = 0
        self.dropped = 0
        # Packets in flight between the stages: delivered next slot.
        self._crossing: List[Tuple[int, Packet]] = []

    def _drop(self, packet: Packet) -> None:
        """Record an arrival rejected for lack of buffer space.

        Switches with finite buffers call this from :meth:`_accept` instead
        of enqueueing; the packet leaves the conservation equation through
        the ``dropped`` counter.
        """
        self.dropped += 1

    # -- hooks for subclasses -------------------------------------------------

    def _accept(self, slot: int, packets: List[Packet]) -> None:
        """File arrivals into input-side state."""
        raise NotImplementedError

    def _serve_input(self, slot: int, input_port: int, mid_port: int) -> Optional[Packet]:
        """Packet input ``input_port`` sends to intermediate ``mid_port``."""
        raise NotImplementedError

    def _deliver(self, slot: int, mid_port: int, packet: Packet) -> None:
        """File a packet arriving at intermediate ``mid_port``."""
        raise NotImplementedError

    def _serve_intermediate(
        self, slot: int, mid_port: int, output_port: int
    ) -> Optional[Packet]:
        """Packet intermediate ``mid_port`` sends to output ``output_port``."""
        raise NotImplementedError

    def buffered_packets(self) -> int:
        """Packets currently buffered anywhere in the switch."""
        raise NotImplementedError

    def _on_departure(self, slot: int, packet: Packet) -> None:
        """Hook invoked as each packet reaches its output."""

    # -- fabric hooks ------------------------------------------------------------

    def _stage1_connection(self, input_port: int, slot: int) -> int:
        """Intermediate port fabric 1 connects to ``input_port`` at ``slot``.

        Default: the paper's "increasing" sequence.  Overridable so tests
        can demonstrate that the increasing/decreasing *pairing* of the two
        fabrics is load-bearing for stripe continuity (DESIGN.md §2.3).
        """
        return increasing_connection(input_port, slot, self.n)

    def _stage2_connection(self, mid_port: int, slot: int) -> int:
        """Output port fabric 2 connects to ``mid_port`` at ``slot``.

        Default: the paper's "decreasing" sequence.
        """
        return decreasing_connection(mid_port, slot, self.n)

    # -- the slot protocol -----------------------------------------------------

    def step(self, slot: int, arrivals: List[Packet]) -> List[Packet]:
        """Advance the switch by one slot; return the packets departing now.

        ``slot`` must advance by exactly one per call (the fabrics are
        time-indexed).  Fake (padding) packets may appear in the return
        value; they carry ``fake=True`` and are excluded from the
        conservation counters' real-packet totals.
        """
        if slot != self.now:
            raise ValueError(f"expected slot {self.now}, got {slot}")
        n = self.n

        # Phase 1: deliver packets that crossed fabric 1 last slot.
        for mid_port, packet in self._crossing:
            self._deliver(slot, mid_port, packet)
        self._crossing = []

        # Phase 2: accept this slot's arrivals.
        for packet in arrivals:
            if packet.arrival_slot != slot:
                raise ValueError(
                    f"packet {packet!r} arrival slot does not match {slot}"
                )
            if not 0 <= packet.input_port < n:
                raise ValueError(f"bad input port on {packet!r}")
            if not 0 <= packet.output_port < n:
                raise ValueError(f"bad output port on {packet!r}")
        if arrivals:
            self.injected += sum(1 for p in arrivals if not p.fake)
            self._accept(slot, arrivals)

        # Phase 3: stage-1 service along fabric 1's current matching.
        for input_port in range(n):
            mid_port = self._stage1_connection(input_port, slot)
            packet = self._serve_input(slot, input_port, mid_port)
            if packet is not None:
                packet.tx_slot = slot
                self._crossing.append((mid_port, packet))

        # Phase 4: stage-2 service along fabric 2's current matching.
        wire: List[Packet] = []
        for mid_port in range(n):
            output_port = self._stage2_connection(mid_port, slot)
            packet = self._serve_intermediate(slot, mid_port, output_port)
            if packet is None:
                continue
            if packet.output_port != output_port:
                raise AssertionError(
                    f"{self.name}: intermediate {mid_port} sent {packet!r} "
                    f"to output {output_port}"
                )
            wire.append(packet)
        departures = self._finalize_departures(slot, wire)

        self.now = slot + 1
        return departures

    def _finalize_departures(self, slot: int, wire: List[Packet]) -> List[Packet]:
        """Turn packets reaching the outputs into departed packets.

        The default marks every wire packet as departing now.  Switches with
        output resequencers (FOFF) override this to buffer out-of-order
        packets and depart them at their in-order release instant.
        """
        for packet in wire:
            self._depart(slot, packet)
        return wire

    def _depart(self, slot: int, packet: Packet) -> None:
        """Stamp and count a single departing packet."""
        packet.departure_slot = slot
        if packet.fake:
            self.fake_departed += 1
        else:
            self.departed += 1
        self._on_departure(slot, packet)

    def run(self, slotted_arrivals: Iterable[Tuple[int, List[Packet]]]) -> List[Packet]:
        """Drive the switch over a pre-generated arrival stream.

        Convenience wrapper for tests; the simulation engine in
        :mod:`repro.sim.engine` offers warm-up handling and metrics.
        """
        all_departures: List[Packet] = []
        for slot, packets in slotted_arrivals:
            all_departures.extend(self.step(slot, packets))
        return all_departures

    def drain(self, max_slots: int, idle_limit: Optional[int] = None) -> List[Packet]:
        """Step with no arrivals until the switch stops releasing packets.

        Stops after ``idle_limit`` consecutive departure-free slots
        (default ``4n`` — a staged Sprinklers stripe can wait up to ``n``
        slots for aligned insertion and then take two fabric revolutions to
        reach its output) or after ``max_slots``, whichever comes first.
        Note that partially filled stripes/frames legitimately never depart,
        so "drained" means "quiescent", not "empty".
        """
        if idle_limit is None:
            idle_limit = 4 * self.n
        departures: List[Packet] = []
        idle = 0
        for _ in range(max_slots):
            out = self.step(self.now, [])
            departures.extend(out)
            idle = 0 if out else idle + 1
            if idle >= idle_limit:
                break
        return departures

    # -- accounting -------------------------------------------------------------

    def in_flight(self) -> int:
        """Real packets inside the switch (accepted but not departed)."""
        return self.injected - self.departed - self.dropped

    def conservation_ok(self) -> bool:
        """Whether buffered + crossing packets account for all in-flight ones.

        Subclasses whose :meth:`buffered_packets` counts fake packets too
        should override; the stock check ignores fakes by comparing against
        real-packet counters only, so switches that inject fakes (Padded
        Frames) provide their own accounting.
        """
        crossing_real = sum(1 for _, p in self._crossing if not p.fake)
        return self.buffered_packets() + crossing_real == self.in_flight()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, t={self.now}, "
            f"in_flight={self.in_flight()})"
        )
