"""Uniform Frame Spreading (UFS) — paper §2.2, reference [11].

UFS prevents reordering by *full-frame aggregation*: an input may only begin
transmitting a VOQ's packets once it has accumulated a full frame of N
packets, and it then spreads the frame over N consecutive slots, one packet
to each of the N intermediate ports.  Every per-output FIFO at the
intermediate stage therefore grows by exactly one packet per frame, keeping
their lengths equal, so every packet of a flow experiences the same
queueing delay and order is preserved.

The cost is the accumulation delay: a VOQ with arrival rate ``r`` waits
``Θ(N / r)`` slots to fill a frame — ``O(N^3)`` in the worst admissible
case, and painfully long at light load (the hockey-stick left end of the
paper's Figs. 6-7 that motivates Sprinklers' rate-proportional stripes).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .packet import Packet
from .ports import PerOutputBank, VoqBank
from .switch_base import TwoStageSwitch

__all__ = ["UfsSwitch"]


class UfsSwitch(TwoStageSwitch):
    """Uniform Frame Spreading load-balanced switch.

    ``input_buffer`` optionally caps each input line card's total memory
    (accumulating VOQs + completed frames awaiting service); arrivals to a
    full input are dropped (drop-tail).  Must be at least N, or no frame
    could ever form.
    """

    name = "ufs"
    guarantees_ordering = True

    def __init__(self, n: int, input_buffer: Optional[int] = None) -> None:
        super().__init__(n)
        if input_buffer is not None and input_buffer < n:
            raise ValueError(
                f"input_buffer must be at least N={n} to form frames"
            )
        self.input_buffer = input_buffer
        self._input_occupancy = [0] * n
        self._voqs: List[VoqBank] = [VoqBank(n) for _ in range(n)]
        # Completed frames per input, FCFS by completion time.
        self._ready_frames: List[Deque[Deque[Packet]]] = [deque() for _ in range(n)]
        # Frame currently being spread by each input (one at a time).
        self._active_frame: List[Optional[Deque[Packet]]] = [None] * n
        self._mid_banks: List[PerOutputBank] = [PerOutputBank(n) for _ in range(n)]

    def _accept(self, slot: int, packets: List[Packet]) -> None:
        for packet in packets:
            i = packet.input_port
            bank = self._voqs[i]
            if (
                self.input_buffer is not None
                and self._input_occupancy[i] >= self.input_buffer
            ):
                self._drop(packet)
                continue
            self._input_occupancy[i] += 1
            bank.push(packet)
            voq = bank.queue(packet.output_port)
            if len(voq) >= self.n:
                frame: Deque[Packet] = deque(voq.pop() for _ in range(self.n))
                for member in frame:
                    member.assembled_slot = slot
                self._ready_frames[packet.input_port].append(frame)

    def _serve_input(
        self, slot: int, input_port: int, mid_port: int
    ) -> Optional[Packet]:
        active = self._active_frame[input_port]
        if active is None:
            # Frames are cycle-aligned: packet k of a frame must go to
            # intermediate port k, so a frame may only start when fabric 1
            # is at port 0.  This keeps the per-output queue-depth profile
            # identical across intermediate ports, which is what makes UFS
            # reordering-free; an unaligned frame wraps the port ring and
            # the output's cyclic polling would drain it out of order.
            if mid_port != 0:
                return None
            ready = self._ready_frames[input_port]
            if not ready:
                return None
            active = ready.popleft()
            self._active_frame[input_port] = active
        packet = active.popleft()
        self._input_occupancy[input_port] -= 1
        if not active:
            self._active_frame[input_port] = None
        return packet

    def _deliver(self, slot: int, mid_port: int, packet: Packet) -> None:
        self._mid_banks[mid_port].push(packet)

    def _serve_intermediate(
        self, slot: int, mid_port: int, output_port: int
    ) -> Optional[Packet]:
        queue = self._mid_banks[mid_port].queue(output_port)
        if queue:
            return queue.pop()
        return None

    def buffered_packets(self) -> int:
        total = 0
        for i in range(self.n):
            total += self._voqs[i].occupancy()
            total += sum(len(f) for f in self._ready_frames[i])
            active = self._active_frame[i]
            if active is not None:
                total += len(active)
        total += sum(bank.occupancy() for bank in self._mid_banks)
        return total
