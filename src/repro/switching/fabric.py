"""Deterministic periodic connection patterns of the two switching fabrics.

A load-balanced switch (paper Fig. 1) contains two fabrics that each execute
a fixed periodic sequence of permutation connections, so that every
input/output pair of a fabric is connected exactly once every N slots — no
scheduler, no arbitration.

With 0-indexed ports, the paper's patterns (§3.4) become:

* **first fabric** ("increasing"): at slot ``t``, input ``i`` is connected
  to intermediate port ``(i + t) mod N``;
* **second fabric** ("decreasing"): at slot ``t``, intermediate port ``m``
  is connected to output ``(m - t) mod N`` — equivalently, output ``j``
  receives from intermediate ``(j + t) mod N``.

The pairing matters: from a single input's viewpoint the target intermediate
port *increases* by one each slot, and from a single output's viewpoint the
source intermediate port also increases by one each slot.  A stripe written
to consecutive intermediate ports in consecutive slots is therefore read out
in consecutive slots as well — the alignment behind Sprinklers' distributed
Largest-Stripe-First consistency (§3.4.3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.permutation import is_permutation

__all__ = [
    "increasing_connection",
    "decreasing_connection",
    "output_source",
    "input_poll_slot",
    "PeriodicFabric",
    "IncreasingFabric",
    "DecreasingFabric",
]


def increasing_connection(input_port: int, slot: int, n: int) -> int:
    """Intermediate port connected to ``input_port`` at ``slot`` (fabric 1)."""
    return (input_port + slot) % n


def decreasing_connection(intermediate_port: int, slot: int, n: int) -> int:
    """Output port connected to ``intermediate_port`` at ``slot`` (fabric 2)."""
    return (intermediate_port - slot) % n


def output_source(output_port: int, slot: int, n: int) -> int:
    """Intermediate port that output ``output_port`` reads at ``slot``.

    Inverse view of :func:`decreasing_connection`:

    >>> n = 8
    >>> all(
    ...     decreasing_connection(output_source(j, t, n), t, n) == j
    ...     for j in range(n) for t in range(2 * n)
    ... )
    True
    """
    return (output_port + slot) % n


def input_poll_slot(input_port: int, intermediate_port: int, n: int) -> int:
    """The smallest nonnegative slot at which fabric 1 connects the pair.

    Fabric 1 reconnects them every ``n`` slots thereafter.
    """
    return (intermediate_port - input_port) % n


class PeriodicFabric:
    """A fabric executing an arbitrary periodic sequence of permutations.

    ``sequence[k]`` is the permutation used at slots ``t`` with
    ``t mod len(sequence) == k``; ``sequence[k][a]`` is the egress port
    connected to ingress ``a``.  The two standard fabrics are special cases;
    this generic form supports experimenting with other patterns (e.g.
    bit-reversal sequences).

    Subclasses that define the pattern by formula override :meth:`egress`
    and construct with ``(n=..., period=...)`` instead of an explicit
    sequence; the permutation table is then never materialized unless
    :attr:`sequence` is read, keeping construction O(1) rather than O(N²).
    """

    def __init__(
        self,
        sequence: Optional[Sequence[Sequence[int]]] = None,
        *,
        n: Optional[int] = None,
        period: Optional[int] = None,
    ) -> None:
        if sequence is not None:
            if n is not None or period is not None:
                raise ValueError(
                    "pass either an explicit sequence or (n=, period=), "
                    "not both"
                )
            if not sequence:
                raise ValueError("fabric sequence must be nonempty")
            n = len(sequence[0])
            perms: List[List[int]] = []
            for k, perm in enumerate(sequence):
                perm = list(perm)
                if len(perm) != n or not is_permutation(perm):
                    raise ValueError(
                        f"sequence[{k}] is not a permutation of 0..{n-1}"
                    )
                perms.append(perm)
            self.n = n
            self.period = len(perms)
            self._perms: Optional[List[List[int]]] = perms
        else:
            if n is None or period is None:
                raise ValueError(
                    "without an explicit sequence, both n= and period= "
                    "are required"
                )
            if n <= 0 or period <= 0:
                raise ValueError("n and period must be positive")
            self.n = int(n)
            self.period = int(period)
            self._perms = None

    @property
    def sequence(self) -> List[List[int]]:
        """The full permutation table, built lazily from :meth:`egress`."""
        if self._perms is None:
            perms = [
                [self.egress(i, t) for i in range(self.n)]
                for t in range(self.period)
            ]
            for k, perm in enumerate(perms):
                if not is_permutation(perm):
                    raise ValueError(
                        f"egress() at slot {k} is not a permutation of "
                        f"0..{self.n - 1}"
                    )
            self._perms = perms
        return self._perms

    def egress(self, ingress: int, slot: int) -> int:
        """The egress port connected to ``ingress`` at ``slot``."""
        return self.sequence[slot % self.period][ingress]

    def connects_each_pair_once_per_period(self) -> bool:
        """Whether every (ingress, egress) pair appears exactly once per period.

        This is the property both standard fabrics have with period N; it is
        what gives every ingress a dedicated 1/N-rate channel to every
        egress.
        """
        if self.period != self.n:
            return False
        for ingress in range(self.n):
            targets = {self.egress(ingress, t) for t in range(self.period)}
            if len(targets) != self.n:
                return False
        return True


class IncreasingFabric(PeriodicFabric):
    """The first-stage fabric: ``ingress i -> (i + t) mod N``."""

    def __init__(self, n: int) -> None:
        super().__init__(n=n, period=n)

    def egress(self, ingress: int, slot: int) -> int:
        return (ingress + slot) % self.n


class DecreasingFabric(PeriodicFabric):
    """The second-stage fabric: ``ingress m -> (m - t) mod N``."""

    def __init__(self, n: int) -> None:
        super().__init__(n=n, period=n)

    def egress(self, ingress: int, slot: int) -> int:
        return (ingress - slot) % self.n
