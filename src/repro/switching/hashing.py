"""TCP hashing / Application Flow Based Routing — paper §2.1, reference [11].

The simplest reordering fix: force all packets of an application flow
through one intermediate port, chosen by hashing the flow identifier.  Every
packet of a flow then sees the same queueing delay, so flows stay in order.

The fatal flaw — and the reason the paper keeps it only as a cautionary
baseline — is that hashing provides no admission control at the
intermediate ports: enough large flows can land on the same port, and the
per-(input, intermediate) queue, served at fixed rate 1/N, overflows.  The
library keeps this switch precisely to demonstrate that instability (see
``examples/reordering_demo.py`` and the hashing tests).

Hash granularity:

* ``per_flow=True`` (default) hashes ``packet.flow_id`` (packets without a
  flow id fall back to their VOQ), modeling real AFBR;
* ``per_flow=False`` hashes the VOQ, modeling the coarsest variant — this
  makes the instability easiest to trigger.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from .packet import Packet
from .ports import FifoQueue, PerOutputBank
from .switch_base import TwoStageSwitch

__all__ = ["TcpHashingSwitch"]


class TcpHashingSwitch(TwoStageSwitch):
    """Per-flow hashing load-balanced switch (unstable; kept as baseline)."""

    name = "tcp-hashing"
    guarantees_ordering = True  # per application flow; VOQs may interleave

    def __init__(
        self,
        n: int,
        salt: int = 0,
        per_flow: bool = True,
        input_buffer: Optional[int] = None,
    ) -> None:
        super().__init__(n)
        if input_buffer is not None and input_buffer < 1:
            raise ValueError("input_buffer must be positive")
        self.salt = salt
        self.per_flow = per_flow
        self.input_buffer = input_buffer
        # At each input, one FIFO per intermediate port assignment.
        self._input_fifos: List[List[FifoQueue]] = [
            [FifoQueue() for _ in range(n)] for _ in range(n)
        ]
        self._mid_banks: List[PerOutputBank] = [PerOutputBank(n) for _ in range(n)]

    def assigned_port(self, packet: Packet) -> int:
        """The intermediate port this packet's flow hashes to."""
        if self.per_flow and packet.flow_id is not None:
            key = ("flow", packet.flow_id)
        else:
            key = ("voq", packet.input_port, packet.output_port)
        digest = zlib.crc32(repr((self.salt, key)).encode("utf-8"))
        return digest % self.n

    def _accept(self, slot: int, packets: List[Packet]) -> None:
        for packet in packets:
            port = self.assigned_port(packet)
            fifo = self._input_fifos[packet.input_port][port]
            if self.input_buffer is not None and len(fifo) >= self.input_buffer:
                self._drop(packet)
                continue
            fifo.push(packet)

    def _serve_input(
        self, slot: int, input_port: int, mid_port: int
    ) -> Optional[Packet]:
        fifo = self._input_fifos[input_port][mid_port]
        if fifo:
            return fifo.pop()
        return None

    def _deliver(self, slot: int, mid_port: int, packet: Packet) -> None:
        self._mid_banks[mid_port].push(packet)

    def _serve_intermediate(
        self, slot: int, mid_port: int, output_port: int
    ) -> Optional[Packet]:
        queue = self._mid_banks[mid_port].queue(output_port)
        if queue:
            return queue.pop()
        return None

    def buffered_packets(self) -> int:
        total = 0
        for fifos in self._input_fifos:
            total += sum(len(f) for f in fifos)
        total += sum(bank.occupancy() for bank in self._mid_banks)
        return total

    def max_input_backlog(self) -> int:
        """High-water mark over the per-(input, intermediate) FIFOs.

        An oversubscribed assignment shows up as this growing without bound
        over the run — the instability witness.
        """
        return max(
            fifo.max_depth for fifos in self._input_fifos for fifo in fifos
        )
