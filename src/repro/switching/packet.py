"""Packet (fixed-size cell) model shared by every switch in the library.

The paper operates on fixed-size packets in slotted time: each port can
receive and transmit exactly one packet per time slot.  A :class:`Packet`
carries the identity needed by the switches (input, output), the metadata
needed for measurement (arrival slot, per-VOQ sequence number), and the
Sprinklers stripe header of the paper's §3.4.3 (stripe size, carried across
the first fabric in ``log2 log2 N`` bits so intermediate ports can run the
distributed Largest-Stripe-First policy).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Packet"]


class Packet:
    """A fixed-size cell traversing a two-stage load-balanced switch.

    Attributes
    ----------
    input_port:
        Index of the ingress line card (0-based).
    output_port:
        Index of the egress line card (0-based).
    arrival_slot:
        Slot at which the packet arrived at its input port.
    seq:
        Per-VOQ sequence number assigned at arrival, used to detect
        reordering at the outputs.
    flow_id:
        Optional application-flow identifier (used by the TCP-hashing switch
        and by flow-level reordering measurements).
    stripe_size:
        Sprinklers stripe header: size of the stripe this packet belongs to
        (a power of two), or ``0`` for switches that do not stripe.
    stripe_id:
        Identifier of the stripe (unique per switch run); lets tests verify
        stripe continuity at input departure and output arrival.
    stripe_pos:
        Position of this packet within its stripe, ``0 .. stripe_size - 1``.
    fake:
        ``True`` for padding cells injected by the Padded Frames switch;
        fakes consume fabric capacity but are dropped at the output and are
        excluded from all delay/throughput statistics.
    departure_slot:
        Slot at which the packet left the switch (set by the switch).
    assembled_slot:
        Slot at which the packet's scheduling unit (stripe or frame)
        finished forming, or -1 for switches without aggregation.  Together
        with ``tx_slot`` this decomposes the total delay into aggregation
        wait, input queueing, and intermediate queueing.
    tx_slot:
        Slot at which the packet crossed the first fabric (stamped by the
        base switch), or -1 while still at the input.
    """

    __slots__ = (
        "input_port",
        "output_port",
        "arrival_slot",
        "seq",
        "flow_id",
        "stripe_size",
        "stripe_id",
        "stripe_pos",
        "fake",
        "departure_slot",
        "assembled_slot",
        "tx_slot",
    )

    def __init__(
        self,
        input_port: int,
        output_port: int,
        arrival_slot: int,
        seq: int = 0,
        flow_id: Optional[int] = None,
        fake: bool = False,
    ) -> None:
        self.input_port = input_port
        self.output_port = output_port
        self.arrival_slot = arrival_slot
        self.seq = seq
        self.flow_id = flow_id
        self.stripe_size = 0
        self.stripe_id = -1
        self.stripe_pos = -1
        self.fake = fake
        self.departure_slot = -1
        self.assembled_slot = -1
        self.tx_slot = -1

    @property
    def voq(self) -> tuple:
        """The (input, output) pair identifying this packet's VOQ."""
        return (self.input_port, self.output_port)

    @property
    def delay(self) -> int:
        """Departure minus arrival slot; only valid after departure."""
        if self.departure_slot < 0:
            raise ValueError("packet has not departed yet")
        return self.departure_slot - self.arrival_slot

    def __repr__(self) -> str:
        tail = ""
        if self.stripe_size:
            tail = (
                f", stripe={self.stripe_id}@{self.stripe_pos}/"
                f"{self.stripe_size}"
            )
        if self.fake:
            tail += ", fake"
        return (
            f"Packet(in={self.input_port}, out={self.output_port}, "
            f"t={self.arrival_slot}, seq={self.seq}{tail})"
        )
