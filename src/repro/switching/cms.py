"""Concurrent Matching Switch (CMS) — paper §2.3, reference [13].

CMS (Lin & Keslassy) is the matching-based route to reordering-free
load-balanced switching: instead of constraining *where packets go*
(hashing, frames, stripes), it constrains *when they are allowed to move*.
Inputs load-balance **request tokens** — not packets — over the
intermediate ports; each intermediate port independently solves a small
matching problem over its local token counts once per frame (N slots, so
the matching cost is amortized by N); granted packets then flow
input → intermediate → output along the deterministic fabrics.

Frame pipeline implemented here (frames are ``N``-slot blocks):

* frame F: tokens accumulate; at its start each intermediate ``m``
  computes a round-robin greedy matching over its counters ``C_m[i][j]``
  (at most one grant per input and per output);
* frame F+1: input ``i`` transmits one granted packet to each granting
  intermediate at the slot fabric 1 visits it;
* frame F+2: the intermediates release those packets to fabric 2, and
  output ``j`` collects them in increasing ``(m - j) mod N`` order.

Ordering is by construction: each packet backs exactly one token, a VOQ's
grants within a frame are filled FCFS in the order the output will read
them, and frame F's packets all depart strictly before frame F+1's.
Tokens travel instantly (the real system spends a slot; the abstraction
only shifts delay by a constant).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .packet import Packet
from .ports import PerOutputBank, VoqBank
from .switch_base import TwoStageSwitch

__all__ = ["CmsSwitch"]


class CmsSwitch(TwoStageSwitch):
    """Concurrent Matching Switch (frame-pipelined token matching)."""

    name = "cms"
    guarantees_ordering = True

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._voqs: List[VoqBank] = [VoqBank(n) for _ in range(n)]
        # Token counters per intermediate: tokens[m][i][j].
        self._tokens: List[List[List[int]]] = [
            [[0] * n for _ in range(n)] for _ in range(n)
        ]
        self._token_rr: List[int] = [0] * n  # per-input token spreading
        self._match_input_rr: List[int] = [0] * n  # per-mid input pointer
        self._match_output_rr: List[int] = [0] * n  # per-mid output pointer
        # Granted packets awaiting stage-1 transmission: granted[i][m].
        self._granted: List[Dict[int, Packet]] = [{} for _ in range(n)]
        # Packets landed at an intermediate, held until the frame boundary.
        self._mid_hold: List[List[Packet]] = [[] for _ in range(n)]
        self._mid_banks: List[PerOutputBank] = [PerOutputBank(n) for _ in range(n)]
        self.grants_issued = 0

    # -- frame machinery ---------------------------------------------------------

    def step(self, slot: int, arrivals: List[Packet]) -> List[Packet]:
        if slot % self.n == 0 and slot == self.now:
            self._frame_boundary()
        return super().step(slot, arrivals)

    def _frame_boundary(self) -> None:
        """Release held packets; run all intermediate matchings; grant."""
        n = self.n
        for mid in range(n):
            if self._mid_hold[mid]:
                for packet in self._mid_hold[mid]:
                    self._mid_banks[mid].push(packet)
                self._mid_hold[mid] = []

        # grants_by_voq[(i, j)] = list of granting intermediates.
        grants_by_voq: Dict[tuple, List[int]] = {}
        for mid in range(n):
            matched_outputs = [False] * n
            tokens = self._tokens[mid]
            start_i = self._match_input_rr[mid]
            start_j = self._match_output_rr[mid]
            matched_any = False
            for di in range(n):
                i = (start_i + di) % n
                row = tokens[i]
                for dj in range(n):
                    j = (start_j + dj) % n
                    if row[j] > 0 and not matched_outputs[j]:
                        row[j] -= 1
                        matched_outputs[j] = True
                        grants_by_voq.setdefault((i, j), []).append(mid)
                        self.grants_issued += 1
                        matched_any = True
                        break
            if matched_any:
                self._match_input_rr[mid] = (start_i + 1) % n
                self._match_output_rr[mid] = (start_j + 1) % n

        # Fill grants FCFS in the order output j will read them: fabric 2
        # reads intermediate m for output j at in-frame offset (m - j) % n.
        for (i, j), mids in grants_by_voq.items():
            mids.sort(key=lambda m: (m - j) % self.n)
            voq = self._voqs[i].queue(j)
            for mid in mids:
                packet = voq.pop()
                packet.assembled_slot = self.now  # grant instant
                self._granted[i][mid] = packet

    # -- the TwoStageSwitch hooks -----------------------------------------------

    def _accept(self, slot: int, packets: List[Packet]) -> None:
        for packet in packets:
            self._voqs[packet.input_port].push(packet)
            mid = self._token_rr[packet.input_port]
            self._token_rr[packet.input_port] = (mid + 1) % self.n
            self._tokens[mid][packet.input_port][packet.output_port] += 1

    def _serve_input(
        self, slot: int, input_port: int, mid_port: int
    ) -> Optional[Packet]:
        return self._granted[input_port].pop(mid_port, None)

    def _deliver(self, slot: int, mid_port: int, packet: Packet) -> None:
        # A packet delivered at a frame-boundary slot crossed fabric 1 in
        # the *last slot of the previous frame* — its read round is the
        # frame starting now, so it must bypass the hold (which this
        # frame's boundary has already released).  All other deliveries
        # wait for the next boundary so no packet is read a frame early.
        if slot % self.n == 0:
            self._mid_banks[mid_port].push(packet)
        else:
            self._mid_hold[mid_port].append(packet)

    def _serve_intermediate(
        self, slot: int, mid_port: int, output_port: int
    ) -> Optional[Packet]:
        queue = self._mid_banks[mid_port].queue(output_port)
        if queue:
            return queue.pop()
        return None

    # -- accounting -----------------------------------------------------------------

    def outstanding_tokens(self) -> int:
        """Tokens not yet converted into grants (== packets still in VOQs)."""
        return sum(
            count
            for per_mid in self._tokens
            for row in per_mid
            for count in row
        )

    def buffered_packets(self) -> int:
        total = sum(bank.occupancy() for bank in self._voqs)
        total += sum(len(grants) for grants in self._granted)
        total += sum(len(hold) for hold in self._mid_hold)
        total += sum(bank.occupancy() for bank in self._mid_banks)
        return total
