"""Output-side resequencing buffers and reordering measurement.

FOFF (paper §2.2) lets packets reach their output out of order, bounded by
O(N^2), and restores order with a resequencing buffer at each output.  The
:class:`Resequencer` here implements that buffer for arbitrary flow keys
(per-VOQ by default) and records the statistics the paper's claims are
checked against: peak buffer occupancy and per-packet resequencing delay.

The companion :class:`ReorderingDetector` measures — without buffering —
how out-of-order a packet stream is; it is how tests certify that
Sprinklers, UFS and PF never reorder while the baseline load-balanced
switch does.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from .packet import Packet

__all__ = ["Resequencer", "ReorderingDetector"]


class Resequencer:
    """In-order release of per-flow sequence-numbered packets.

    Packets of each flow (keyed by VOQ ``(input, output)`` by default) carry
    consecutive sequence numbers assigned at arrival.  :meth:`offer` accepts
    a packet off the wire and returns every packet that can now be released
    in order — possibly none (the packet is buffered) or several (the packet
    filled a gap).
    """

    def __init__(self) -> None:
        self._next_seq: Dict[Hashable, int] = {}
        self._buffers: Dict[Hashable, Dict[int, Packet]] = {}
        self.occupancy = 0
        self.max_occupancy = 0
        self.total_buffered = 0

    @staticmethod
    def _key(packet: Packet) -> Hashable:
        return (packet.input_port, packet.output_port)

    def offer(self, packet: Packet) -> List[Packet]:
        """Accept a packet; return the packets releasable in order (FIFO)."""
        key = self._key(packet)
        expected = self._next_seq.get(key, 0)
        if packet.seq != expected:
            if packet.seq < expected:
                raise ValueError(
                    f"duplicate or stale seq {packet.seq} (< {expected}) "
                    f"for flow {key}"
                )
            buffer = self._buffers.setdefault(key, {})
            if packet.seq in buffer:
                raise ValueError(f"duplicate seq {packet.seq} for flow {key}")
            buffer[packet.seq] = packet
            self.occupancy += 1
            self.total_buffered += 1
            if self.occupancy > self.max_occupancy:
                self.max_occupancy = self.occupancy
            return []
        released = [packet]
        expected += 1
        buffer = self._buffers.get(key)
        if buffer:
            while expected in buffer:
                released.append(buffer.pop(expected))
                self.occupancy -= 1
                expected += 1
        self._next_seq[key] = expected
        return released

    def pending(self) -> int:
        """Packets currently held waiting for earlier sequence numbers."""
        return self.occupancy


class ReorderingDetector:
    """Streaming measurement of packet mis-sequencing per flow.

    For each flow it tracks the highest sequence number seen so far; a
    packet with a smaller sequence number than a predecessor is *late*
    (it was overtaken).  Reports:

    * ``late_packets`` — how many packets arrived after a higher-seq packet
      of their flow (zero iff the stream is reordering-free);
    * ``max_displacement`` — the worst gap ``highest_seen - seq`` observed,
      an analogue of the reorder-buffer size the stream would need.
    """

    def __init__(self) -> None:
        self._highest: Dict[Tuple[int, int], int] = {}
        self.observed = 0
        self.late_packets = 0
        self.max_displacement = 0

    def observe(self, packet: Packet) -> None:
        """Feed one departed packet (fakes are ignored)."""
        if packet.fake:
            return
        key = (packet.input_port, packet.output_port)
        self.observed += 1
        highest = self._highest.get(key, -1)
        if packet.seq > highest:
            self._highest[key] = packet.seq
        else:
            self.late_packets += 1
            displacement = highest - packet.seq
            if displacement > self.max_displacement:
                self.max_displacement = displacement

    @property
    def is_ordered(self) -> bool:
        """Whether no packet has (yet) been observed out of order."""
        return self.late_packets == 0

    def __repr__(self) -> str:
        return (
            f"ReorderingDetector(observed={self.observed}, "
            f"late={self.late_packets}, max_disp={self.max_displacement})"
        )
