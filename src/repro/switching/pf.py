"""Padded Frames (PF) — paper §2.3, reference [9] (Jaramillo, Milan, Srikant).

PF keeps UFS's reordering-free full-frame spreading but avoids waiting
indefinitely for frames to fill: when an input has no full frame, it finds
its longest VOQ and — if that VOQ holds at least ``threshold`` packets —
*pads* it with fake cells up to a full frame of N and spreads it like UFS.
Fake cells consume fabric and intermediate-buffer capacity exactly like real
ones (that is the price of padding) and are discarded at the output.

Because every frame, padded or not, contributes exactly one cell to each
per-output intermediate FIFO, the equal-queue-length invariant of UFS is
preserved and no resequencer is needed.

``threshold`` defaults to ``N // 2``: low enough to cap the padding wait at
light load, high enough to bound the fake-cell bandwidth overhead (a padded
frame is at least half real).  The original paper expresses the same
trade-off through a threshold parameter T; the exact constant only shifts
the light-load delay floor.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .packet import Packet
from .ports import PerOutputBank, VoqBank
from .switch_base import TwoStageSwitch

__all__ = ["PaddedFramesSwitch"]


class PaddedFramesSwitch(TwoStageSwitch):
    """Padded Frames load-balanced switch."""

    name = "pf"
    guarantees_ordering = True

    def __init__(self, n: int, threshold: Optional[int] = None) -> None:
        super().__init__(n)
        if threshold is None:
            threshold = max(1, n // 2)
        if not 1 <= threshold <= n:
            raise ValueError(f"threshold must be in [1, {n}], got {threshold}")
        self.threshold = threshold
        self._voqs: List[VoqBank] = [VoqBank(n) for _ in range(n)]
        self._active_frame: List[Optional[Deque[Packet]]] = [None] * n
        self._full_rr: List[int] = [0] * n
        self._mid_banks: List[PerOutputBank] = [PerOutputBank(n) for _ in range(n)]
        self.fakes_injected = 0

    def _accept(self, slot: int, packets: List[Packet]) -> None:
        for packet in packets:
            self._voqs[packet.input_port].push(packet)

    def _pick_frame(self, slot: int, input_port: int) -> Optional[Deque[Packet]]:
        """Full frames first (round-robin); else pad the longest VOQ >= T."""
        bank = self._voqs[input_port]
        n = self.n
        pointer = self._full_rr[input_port]
        for offset in range(n):
            j = (pointer + offset) % n
            voq = bank.queue(j)
            if len(voq) >= n:
                self._full_rr[input_port] = (j + 1) % n
                frame = deque(voq.pop() for _ in range(n))
                for member in frame:
                    member.assembled_slot = slot
                return frame
        longest = bank.longest()
        if longest is None:
            return None
        voq = bank.queue(longest)
        if len(voq) < self.threshold:
            return None
        count = len(voq)
        frame: Deque[Packet] = deque(voq.pop() for _ in range(count))
        for member in frame:
            member.assembled_slot = slot
        for _ in range(n - count):
            fake = Packet(
                input_port=input_port,
                output_port=longest,
                arrival_slot=slot,
                seq=-1,
                fake=True,
            )
            frame.append(fake)
            self.fakes_injected += 1
        return frame

    def _serve_input(
        self, slot: int, input_port: int, mid_port: int
    ) -> Optional[Packet]:
        active = self._active_frame[input_port]
        if active is None:
            # Cycle-aligned like UFS: padded frames are always full, so
            # starting every frame at port 0 preserves the equal-queue
            # invariant and hence ordering.
            if mid_port != 0:
                return None
            active = self._pick_frame(slot, input_port)
            if active is None:
                return None
            self._active_frame[input_port] = active
        packet = active.popleft()
        if not active:
            self._active_frame[input_port] = None
        return packet

    def _deliver(self, slot: int, mid_port: int, packet: Packet) -> None:
        self._mid_banks[mid_port].push(packet)

    def _serve_intermediate(
        self, slot: int, mid_port: int, output_port: int
    ) -> Optional[Packet]:
        queue = self._mid_banks[mid_port].queue(output_port)
        if queue:
            return queue.pop()
        return None

    def buffered_packets(self) -> int:
        """Real (non-fake) packets buffered in the switch."""
        total = 0
        for i in range(self.n):
            total += self._voqs[i].occupancy()
            active = self._active_frame[i]
            if active is not None:
                total += sum(1 for p in active if not p.fake)
        for bank in self._mid_banks:
            for queue in bank.queues:
                total += sum(1 for p in queue if not p.fake)
        return total

    def padding_overhead(self) -> float:
        """Fraction of stage-1 transmissions spent on fake cells so far."""
        sent = self.departed + self.fake_departed
        if sent == 0:
            return 0.0
        return self.fake_departed / sent
