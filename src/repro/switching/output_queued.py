"""Ideal output-queued switch: the delay lower bound reference.

An output-queued (OQ) switch places every arriving packet directly into a
FIFO at its output port, which drains at line rate.  It requires an N-fold
internal speedup, so it is not buildable at scale — which is the entire
motivation for load-balanced architectures — but it is the canonical
performance yardstick: no work-conserving switch can beat its delay.

It is not a two-stage switch, so it implements the ``step`` protocol
directly rather than inheriting :class:`~repro.switching.switch_base.TwoStageSwitch`.
"""

from __future__ import annotations

from typing import List

from .packet import Packet
from .ports import FifoQueue

__all__ = ["OutputQueuedSwitch"]


class OutputQueuedSwitch:
    """Ideal output-queued switch (infinite fabric speedup)."""

    name = "output-queued"
    guarantees_ordering = True

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"switch size must be positive, got {n}")
        self.n = n
        self.now = 0
        self.injected = 0
        self.departed = 0
        self.fake_departed = 0
        self._queues: List[FifoQueue] = [FifoQueue() for _ in range(n)]

    def step(self, slot: int, arrivals: List[Packet]) -> List[Packet]:
        """One slot: enqueue arrivals at outputs, serve one per output."""
        if slot != self.now:
            raise ValueError(f"expected slot {self.now}, got {slot}")
        for packet in arrivals:
            if packet.arrival_slot != slot:
                raise ValueError("packet arrival slot mismatch")
            self._queues[packet.output_port].push(packet)
            self.injected += 1
        departures: List[Packet] = []
        for queue in self._queues:
            if queue:
                packet = queue.pop()
                packet.departure_slot = slot + 1  # cut-through floor of 1 slot
                self.departed += 1
                departures.append(packet)
        self.now = slot + 1
        return departures

    def drain(self, max_slots: int) -> List[Packet]:
        """Step without arrivals until all queues are empty."""
        departures: List[Packet] = []
        for _ in range(max_slots):
            if self.buffered_packets() == 0:
                break
            departures.extend(self.step(self.now, []))
        return departures

    def buffered_packets(self) -> int:
        """Packets waiting in output queues."""
        return sum(len(q) for q in self._queues)

    def in_flight(self) -> int:
        """Injected but not yet departed packets."""
        return self.injected - self.departed

    def conservation_ok(self) -> bool:
        """Queued packets must account for every in-flight packet."""
        return self.buffered_packets() == self.in_flight()

    def __repr__(self) -> str:
        return f"OutputQueuedSwitch(n={self.n}, t={self.now})"
