"""The baseline load-balanced switch of Chang et al. (paper reference [2]).

Arriving packets queue in a single FIFO at their input port and are sprayed,
one per slot, to whichever intermediate port fabric 1 currently connects —
no per-destination logic at all.  Intermediate ports keep one FIFO per
output and serve it when fabric 2 polls.

This is the architecture every other switch here descends from: it achieves
100% throughput for admissible traffic and has the lowest delay of the
family (the paper uses it as the delay lower envelope in Figs. 6-7), but
consecutive packets of a flow take different paths with different queueing
delays, so it reorders packets badly — the very problem Sprinklers solves.
"""

from __future__ import annotations

from typing import List, Optional

from .packet import Packet
from .ports import FifoQueue, PerOutputBank
from .switch_base import TwoStageSwitch

__all__ = ["BaselineLoadBalancedSwitch"]


class BaselineLoadBalancedSwitch(TwoStageSwitch):
    """Classic two-stage load-balanced switch (no ordering guarantee).

    ``input_buffer`` optionally caps each input's FIFO (drop-tail); the
    default is infinite buffering, the regime of the paper's analysis.
    """

    name = "baseline-lb"
    guarantees_ordering = False

    def __init__(self, n: int, input_buffer: Optional[int] = None) -> None:
        super().__init__(n)
        if input_buffer is not None and input_buffer < 1:
            raise ValueError("input_buffer must be positive")
        self.input_buffer = input_buffer
        self._input_fifos: List[FifoQueue] = [FifoQueue() for _ in range(n)]
        self._mid_banks: List[PerOutputBank] = [PerOutputBank(n) for _ in range(n)]

    def _accept(self, slot: int, packets: List[Packet]) -> None:
        for packet in packets:
            fifo = self._input_fifos[packet.input_port]
            if self.input_buffer is not None and len(fifo) >= self.input_buffer:
                self._drop(packet)
                continue
            fifo.push(packet)

    def _serve_input(
        self, slot: int, input_port: int, mid_port: int
    ) -> Optional[Packet]:
        fifo = self._input_fifos[input_port]
        if fifo:
            return fifo.pop()
        return None

    def _deliver(self, slot: int, mid_port: int, packet: Packet) -> None:
        self._mid_banks[mid_port].push(packet)

    def _serve_intermediate(
        self, slot: int, mid_port: int, output_port: int
    ) -> Optional[Packet]:
        queue = self._mid_banks[mid_port].queue(output_port)
        if queue:
            return queue.pop()
        return None

    def buffered_packets(self) -> int:
        return sum(len(f) for f in self._input_fifos) + sum(
            bank.occupancy() for bank in self._mid_banks
        )
