"""Two-stage load-balanced switching substrate and baseline switches."""

from .baseline import BaselineLoadBalancedSwitch
from .cms import CmsSwitch
from .fabric import DecreasingFabric, IncreasingFabric, PeriodicFabric
from .foff import FoffSwitch
from .hashing import TcpHashingSwitch
from .output_queued import OutputQueuedSwitch
from .packet import Packet
from .pf import PaddedFramesSwitch
from .ports import FifoQueue, PerOutputBank, VoqBank
from .resequencer import ReorderingDetector, Resequencer
from .switch_base import TwoStageSwitch
from .ufs import UfsSwitch

__all__ = [
    "BaselineLoadBalancedSwitch",
    "CmsSwitch",
    "DecreasingFabric",
    "FifoQueue",
    "FoffSwitch",
    "IncreasingFabric",
    "OutputQueuedSwitch",
    "Packet",
    "PaddedFramesSwitch",
    "PerOutputBank",
    "PeriodicFabric",
    "ReorderingDetector",
    "Resequencer",
    "TcpHashingSwitch",
    "TwoStageSwitch",
    "UfsSwitch",
    "VoqBank",
]
