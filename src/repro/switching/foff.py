"""Full Ordered Frames First (FOFF) — paper §2.2, reference [11].

FOFF removes UFS's full-frame wait: when an input has a full frame (N
packets of one VOQ) it serves it exactly like UFS; when it has none, it
serves *partial* frames from nonempty VOQs in round-robin order rather than
idling.  Partial frames break the equal-queue-length invariant at the
intermediate stage, so packets can reach their output out of order — but
only boundedly so (O(N^2) in [11]) — and a resequencing buffer at each
output restores order before delivery.

Mechanics implemented here (choices documented in DESIGN.md §2.5):

* frame-at-a-time service per input; a new frame starts the slot after the
  previous one finishes, at whatever fabric offset that is;
* full frames take strict priority; among VOQs with full frames a
  round-robin pointer picks the next; among partial frames a second
  round-robin pointer picks the next nonempty VOQ;
* a partial frame takes everything currently in the VOQ (< N packets);
* departures are the *resequenced* releases: a packet departs when it and
  all its VOQ predecessors have reached the output.  Reported delay
  therefore includes resequencing delay, as in the paper's evaluation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .packet import Packet
from .ports import PerOutputBank, VoqBank
from .resequencer import Resequencer
from .switch_base import TwoStageSwitch

__all__ = ["FoffSwitch"]


class FoffSwitch(TwoStageSwitch):
    """Full Ordered Frames First load-balanced switch."""

    name = "foff"
    guarantees_ordering = True  # via output resequencers

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._voqs: List[VoqBank] = [VoqBank(n) for _ in range(n)]
        self._active_frame: List[Optional[Deque[Packet]]] = [None] * n
        self._full_rr: List[int] = [0] * n  # round-robin over full frames
        self._partial_rr: List[int] = [0] * n  # round-robin over partial frames
        self._mid_banks: List[PerOutputBank] = [PerOutputBank(n) for _ in range(n)]
        self.resequencers: List[Resequencer] = [Resequencer() for _ in range(n)]

    # -- input side -------------------------------------------------------------

    def _accept(self, slot: int, packets: List[Packet]) -> None:
        for packet in packets:
            self._voqs[packet.input_port].push(packet)

    def _pick_frame(self, slot: int, input_port: int) -> Optional[Deque[Packet]]:
        """Select the next frame to serve: full frames first, else partial."""
        bank = self._voqs[input_port]
        n = self.n
        frame: Optional[Deque[Packet]] = None
        # Full frames, round-robin starting at the pointer.
        pointer = self._full_rr[input_port]
        for offset in range(n):
            j = (pointer + offset) % n
            voq = bank.queue(j)
            if len(voq) >= n:
                self._full_rr[input_port] = (j + 1) % n
                frame = deque(voq.pop() for _ in range(n))
                break
        if frame is None:
            # Partial frames, separate round-robin pointer.
            pointer = self._partial_rr[input_port]
            for offset in range(n):
                j = (pointer + offset) % n
                voq = bank.queue(j)
                if voq:
                    self._partial_rr[input_port] = (j + 1) % n
                    count = len(voq)
                    frame = deque(voq.pop() for _ in range(count))
                    break
        if frame is not None:
            for member in frame:
                member.assembled_slot = slot
        return frame

    def _serve_input(
        self, slot: int, input_port: int, mid_port: int
    ) -> Optional[Packet]:
        active = self._active_frame[input_port]
        if active is None:
            # Cycle-aligned like UFS: frames start only at port 0, so full
            # frames deposit one packet at ports 0..N-1 in port order and
            # stay in order; residual reordering comes only from partial
            # frames (absorbed by the output resequencers).
            if mid_port != 0:
                return None
            active = self._pick_frame(slot, input_port)
            if active is None:
                return None
            self._active_frame[input_port] = active
        packet = active.popleft()
        if not active:
            self._active_frame[input_port] = None
        return packet

    # -- intermediate and output side ---------------------------------------------

    def _deliver(self, slot: int, mid_port: int, packet: Packet) -> None:
        self._mid_banks[mid_port].push(packet)

    def _serve_intermediate(
        self, slot: int, mid_port: int, output_port: int
    ) -> Optional[Packet]:
        queue = self._mid_banks[mid_port].queue(output_port)
        if queue:
            return queue.pop()
        return None

    def _finalize_departures(self, slot: int, wire: List[Packet]) -> List[Packet]:
        """Route wire packets through the per-output resequencers."""
        departures: List[Packet] = []
        for packet in wire:
            for released in self.resequencers[packet.output_port].offer(packet):
                self._depart(slot, released)
                departures.append(released)
        return departures

    # -- accounting ---------------------------------------------------------------

    def max_resequencer_occupancy(self) -> int:
        """Peak packets held across all output resequencers (O(N^2) claim)."""
        return max(r.max_occupancy for r in self.resequencers)

    def buffered_packets(self) -> int:
        total = 0
        for i in range(self.n):
            total += self._voqs[i].occupancy()
            active = self._active_frame[i]
            if active is not None:
                total += len(active)
        total += sum(bank.occupancy() for bank in self._mid_banks)
        total += sum(r.pending() for r in self.resequencers)
        return total
