"""Span tracing: timed, nested regions of a run, exportable as JSONL.

A span is one timed region — ``run.fabric``, ``replay.window``,
``stage.feed`` — with a dotted name, free-form attributes, a wall-clock
duration from :func:`time.perf_counter`, and its position in the call
tree (``id``/``parent``/``depth``).  Nesting is tracked per thread with
a plain stack, so spans telescope correctly even when sweep jobs run on
worker threads.

The JSONL trace format (one JSON object per line):

* ``{"record": "meta", ...}`` — first line: format version, export
  timestamp, process id.
* ``{"record": "span", "id": 3, "parent": 1, "depth": 2,
  "name": "stage.feed", "start_s": ..., "dur_s": ...,
  "attrs": {...}}`` — one per finished span, in completion order.
* ``{"record": "metrics", "metrics": {...}}`` — final line: the metrics
  registry snapshot taken at export time.

``start_s`` is relative to the tracer's epoch (its construction), so
subtracting two spans' ``start_s`` is meaningful within one trace and
meaningless across traces — diffs therefore compare durations, never
absolute starts.

The module also carries the trace *consumers* (:func:`read_trace`,
:func:`summarize_trace`, :func:`diff_traces`, :func:`check_trace`) used
by the ``repro telemetry`` CLI and the CI smoke job, so producer and
consumer stay in one file and cannot drift apart.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "read_trace",
    "validate_nesting",
    "summarize_trace",
    "diff_traces",
    "check_trace",
]

TRACE_FORMAT_VERSION = 1


class Span:
    """One finished (or in-flight) timed region."""

    __slots__ = ("id", "parent", "depth", "name", "attrs", "start_s", "dur_s")

    def __init__(
        self,
        span_id: int,
        parent: Optional[int],
        depth: int,
        name: str,
        attrs: Dict[str, Any],
        start_s: float,
    ) -> None:
        self.id = span_id
        self.parent = parent
        self.depth = depth
        self.name = name
        self.attrs = attrs
        self.start_s = start_s
        self.dur_s: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "record": "span",
            "id": self.id,
            "parent": self.parent,
            "depth": self.depth,
            "name": self.name,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "attrs": self.attrs,
        }


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`.

    Attributes can be added while the span is open (``handle.set(k=v)``)
    — used for values only known at the end of the region, like the
    packet count of a window.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def set(self, **attrs: Any) -> None:
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self._span)


class _NullHandle:
    """The disabled-path stand-in: a reusable, do-nothing span handle."""

    __slots__ = ()
    span = None

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_HANDLE = _NullHandle()


class Tracer:
    """Collects spans with per-thread nesting; thread-safe appends."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self._spans: List[Span] = []  # guarded by: self._lock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0  # guarded by: self._lock

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a span; close it by exiting the returned context."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            span_id,
            parent.id if parent is not None else None,
            len(stack),
            name,
            dict(attrs),
            time.perf_counter() - self.epoch,
        )
        stack.append(span)
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        span.dur_s = (time.perf_counter() - self.epoch) - span.start_s
        stack = self._stack()
        # Pop through any abandoned children (an exception may have
        # unwound past their __exit__ on another code path).
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def export_jsonl(self, path, metrics_snapshot: Optional[dict] = None) -> int:
        """Write the trace file described in the module docstring.

        Returns the number of span records written.
        """
        spans = self.spans
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "record": "meta",
                        "format": TRACE_FORMAT_VERSION,
                        "exported_at": time.time(),
                        "pid": os.getpid(),
                        "spans": len(spans),
                    }
                )
                + "\n"
            )
            for span in spans:
                # default=str: span attrs are caller-provided and may
                # carry non-JSON values (paths, numpy scalars); a trace
                # export must never crash the run it observed.
                fh.write(json.dumps(span.to_dict(), default=str) + "\n")
            if metrics_snapshot is not None:
                fh.write(
                    json.dumps({"record": "metrics", "metrics": metrics_snapshot})
                    + "\n"
                )
        return len(spans)


# ---------------------------------------------------------------------------
# Trace consumers (CLI + CI smoke job).
# ---------------------------------------------------------------------------


def read_trace(path) -> dict:
    """Parse a JSONL trace into ``{"meta": ..., "spans": [...], "metrics": ...}``.

    Raises ``ValueError`` on an unparseable line or a missing/foreign
    header, so the CI smoke job's "the JSONL parses" assertion is just a
    call to this function.
    """
    meta: Optional[dict] = None
    spans: List[dict] = []
    metrics: Optional[dict] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            kind = record.get("record")
            if kind == "meta":
                meta = record
            elif kind == "span":
                spans.append(record)
            elif kind == "metrics":
                metrics = record.get("metrics")
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown record type {kind!r}"
                )
    if meta is None:
        raise ValueError(f"{path}: missing meta record (not a repro trace?)")
    return {"meta": meta, "spans": spans, "metrics": metrics}


def _span_index(spans: List[dict]) -> Dict[int, dict]:
    return {s["id"]: s for s in spans}


def validate_nesting(spans: List[dict]) -> List[str]:
    """Structural checks on a trace's span tree; returns problem strings.

    A clean trace yields an empty list.  Checked invariants:
    every parent id resolves; ``depth == parent.depth + 1``; every child
    interval lies within its parent's interval (small float slack).
    """
    problems: List[str] = []
    index = _span_index(spans)
    slack = 1e-6
    for span in spans:
        if span.get("dur_s") is None:
            problems.append(f"span {span['id']} ({span['name']}) never finished")
            continue
        parent_id = span.get("parent")
        if parent_id is None:
            if span["depth"] != 0:
                problems.append(
                    f"span {span['id']} ({span['name']}) has no parent "
                    f"but depth {span['depth']}"
                )
            continue
        parent = index.get(parent_id)
        if parent is None:
            problems.append(
                f"span {span['id']} ({span['name']}) parent {parent_id} missing"
            )
            continue
        if span["depth"] != parent["depth"] + 1:
            problems.append(
                f"span {span['id']} ({span['name']}) depth {span['depth']} "
                f"!= parent depth {parent['depth']} + 1"
            )
        if span["start_s"] < parent["start_s"] - slack:
            problems.append(
                f"span {span['id']} ({span['name']}) starts before its parent"
            )
        if parent.get("dur_s") is not None:
            parent_end = parent["start_s"] + parent["dur_s"]
            child_end = span["start_s"] + span["dur_s"]
            if child_end > parent_end + slack:
                problems.append(
                    f"span {span['id']} ({span['name']}) ends after its parent"
                )
    return problems


def summarize_trace(trace: dict) -> dict:
    """Aggregate a parsed trace per span name.

    Returns ``{"total_spans": n, "by_name": {name: {count, total_s,
    mean_s, max_s}}, "roots": [...], "metrics": ...}`` — the shape the
    ``repro telemetry summarize`` renderer walks.
    """
    by_name: Dict[str, dict] = {}
    roots: List[dict] = []
    for span in trace["spans"]:
        entry = by_name.setdefault(
            span["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        dur = span.get("dur_s") or 0.0
        entry["total_s"] += dur
        if dur > entry["max_s"]:
            entry["max_s"] = dur
        if span.get("parent") is None:
            roots.append(span)
    for entry in by_name.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return {
        "total_spans": len(trace["spans"]),
        "by_name": dict(sorted(by_name.items())),
        "roots": roots,
        "metrics": trace.get("metrics"),
    }


def diff_traces(a: dict, b: dict) -> List[dict]:
    """Per-name duration deltas between two parsed traces.

    Returns rows sorted by absolute delta, largest first:
    ``{"name", "a_total_s", "b_total_s", "delta_s", "ratio"}`` (ratio is
    ``b/a``, ``None`` when a's total is ~zero).  Names present in only
    one trace appear with the other side's total as 0.
    """
    sa = summarize_trace(a)["by_name"]
    sb = summarize_trace(b)["by_name"]
    rows: List[dict] = []
    for name in sorted(set(sa) | set(sb)):
        a_total = sa.get(name, {}).get("total_s", 0.0)
        b_total = sb.get(name, {}).get("total_s", 0.0)
        rows.append(
            {
                "name": name,
                "a_total_s": a_total,
                "b_total_s": b_total,
                "delta_s": b_total - a_total,
                "ratio": (b_total / a_total) if a_total > 1e-12 else None,
            }
        )
    rows.sort(key=lambda row: abs(row["delta_s"]), reverse=True)
    return rows


def check_trace(trace: dict, coverage: float = 0.95) -> List[str]:
    """The CI gate: nesting is valid and children telescope to parents.

    For every span that has children, the children's summed durations
    must not exceed the parent (physically impossible for same-thread
    nesting) and — for the replay spans, which are designed to be fully
    covered by child spans — must reach at least ``coverage`` of it.
    Returns a list of problem strings; empty means the trace passes.
    """
    problems = validate_nesting(trace["spans"])
    children: Dict[int, float] = {}
    for span in trace["spans"]:
        parent = span.get("parent")
        if parent is not None and span.get("dur_s") is not None:
            children[parent] = children.get(parent, 0.0) + span["dur_s"]
    covered_names = ("replay.stream", "replay.fabric")
    for span in trace["spans"]:
        dur = span.get("dur_s")
        if dur is None or span["id"] not in children:
            continue
        child_sum = children[span["id"]]
        if child_sum > dur * 1.001 + 1e-6:
            problems.append(
                f"span {span['id']} ({span['name']}): children sum "
                f"{child_sum:.6f}s exceeds parent {dur:.6f}s"
            )
        if span["name"] in covered_names and dur > 1e-4:
            if child_sum < dur * coverage:
                problems.append(
                    f"span {span['id']} ({span['name']}): children cover "
                    f"{child_sum / dur:.1%} < {coverage:.0%} of the span"
                )
    return problems
