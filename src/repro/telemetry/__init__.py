"""`repro.telemetry` — spans, metrics, logging, and memory capture.

The observability layer for the whole run path.  Zero dependencies
(stdlib only), disabled by default, and engineered so that the disabled
probes cost a single flag check — the replay kernels instrumented here
stay within noise of their uninstrumented throughput
(``benchmarks/bench_telemetry.py`` asserts it).

Quick tour::

    from repro import telemetry

    telemetry.enable()                       # or REPRO_TELEMETRY=1
    with telemetry.trace("replay.window", slots=8192):
        ...                                  # timed, nested span
    telemetry.count("replay.windows")        # counter += 1
    telemetry.observe("stage.feed_s.demo", 0.01)   # histogram sample
    telemetry.set_gauge("fabric.in_flight.stage1", 42)
    telemetry.export_jsonl("trace.jsonl")    # spans + metrics snapshot

Everything here is a thin veneer over the process-wide
:class:`~repro.telemetry.core.TelemetryState`; see the submodules for
the instruments themselves (``spans``, ``metrics``), the logging setup
(``log``), and memory capture (``memory``).
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Iterator, Optional

from .core import (
    ENV_MEMORY_VAR,
    ENV_VAR,
    TelemetryState,
    disable,
    enable,
    enabled,
    enabled_from_env,
    memory_from_env,
    scope,
    state,
)
from .log import get_logger, setup_logging, verbosity_level
from .memory import MemoryProbe, peak_rss_bytes
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import (
    NULL_HANDLE,
    Span,
    Tracer,
    check_trace,
    diff_traces,
    read_trace,
    summarize_trace,
)

__all__ = [
    # switch / state
    "enabled",
    "enable",
    "disable",
    "scope",
    "state",
    "enabled_from_env",
    "memory_from_env",
    "ENV_VAR",
    "ENV_MEMORY_VAR",
    "TelemetryState",
    # spans
    "trace",
    "traced_iter",
    "Span",
    "Tracer",
    "export_jsonl",
    "read_trace",
    "summarize_trace",
    "diff_traces",
    "check_trace",
    # metrics
    "count",
    "observe",
    "set_gauge",
    "counter",
    "histogram",
    "gauge",
    "snapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # logging
    "get_logger",
    "setup_logging",
    "verbosity_level",
    # memory / capture
    "MemoryProbe",
    "peak_rss_bytes",
    "capture",
    "RunCapture",
]


# ---------------------------------------------------------------------------
# Spans.
# ---------------------------------------------------------------------------


def trace(name: str, **attrs: Any):
    """Open a timed span (context manager); no-op when disabled.

    The handle supports ``.set(key=value)`` for attributes only known
    at the end of the region.
    """
    st = state()
    if not st.enabled:
        return NULL_HANDLE
    return st.tracer.span(name, **attrs)


def traced_iter(name: str, iterable: Iterable, **attrs: Any) -> Iterator:
    """Attribute an iterable's production time to spans named ``name``.

    Each ``next()`` runs inside its own span, so generator work (e.g.
    drawing a traffic window) shows up as a sibling of the consumer's
    spans instead of silently inflating the parent.  When telemetry is
    disabled this returns the original iterable untouched — zero
    wrapping cost.
    """
    if not state().enabled:
        return iter(iterable)

    def _wrapped() -> Iterator:
        iterator = iter(iterable)
        while True:
            with trace(name, **attrs):
                try:
                    item = next(iterator)
                except StopIteration:
                    return
            yield item

    return _wrapped()


def export_jsonl(path) -> int:
    """Write the current trace (+ metrics snapshot) as JSONL; span count."""
    st = state()
    return st.tracer.export_jsonl(path, st.registry.snapshot())


# ---------------------------------------------------------------------------
# Metrics.
# ---------------------------------------------------------------------------


def count(name: str, amount=1) -> None:
    """Increment counter ``name`` (no-op when disabled)."""
    st = state()
    if st.enabled:
        st.registry.counter(name).add(amount)


def observe(name: str, value: float) -> None:
    """Record one histogram sample (no-op when disabled)."""
    st = state()
    if st.enabled:
        st.registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    st = state()
    if st.enabled:
        st.registry.gauge(name).set(value)


def counter(name: str) -> Counter:
    """The live counter instrument (creates it if needed)."""
    return state().registry.counter(name)


def histogram(name: str) -> Histogram:
    """The live histogram instrument (creates it if needed)."""
    return state().registry.histogram(name)


def gauge(name: str) -> Gauge:
    """The live gauge instrument (creates it if needed)."""
    return state().registry.gauge(name)


def snapshot() -> dict:
    """JSON-serializable snapshot of every registered instrument."""
    return state().registry.snapshot()


# ---------------------------------------------------------------------------
# Per-run capture (RunResult.extras["telemetry"]).
# ---------------------------------------------------------------------------


class RunCapture:
    """Bracket one run; ``.result`` is the extras payload (or ``None``).

    Usage (see ``repro.sim.experiment``)::

        cap = telemetry.capture("run.single")
        with cap:
            result = execute()
        if cap.result is not None:
            result.extras["telemetry"] = cap.result

    When telemetry is disabled the enter/exit are no-ops and ``result``
    stays ``None``, so the disabled run path allocates nothing and —
    crucially — the result dict is byte-identical to an uninstrumented
    run.  The payload: span name, wall seconds, peak RSS, optional
    tracemalloc peak, and the metrics snapshot at exit (all plain JSON,
    so it survives the store round-trip).
    """

    __slots__ = ("_name", "_active", "_t0", "_mem", "_handle", "result")

    def __init__(self, name: str) -> None:
        self._name = name
        self._active = False
        self._t0 = 0.0
        self._mem: Optional[MemoryProbe] = None
        self._handle = None
        self.result: Optional[dict] = None

    def __enter__(self) -> "RunCapture":
        st = state()
        if not st.enabled:
            return self
        self._active = True
        self._handle = st.tracer.span(self._name)
        self._mem = MemoryProbe(use_tracemalloc=st.memory)
        self._mem.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._active:
            return
        wall_s = time.perf_counter() - self._t0
        self._mem.__exit__(exc_type, exc, tb)
        self._handle.__exit__(exc_type, exc, tb)
        if exc_type is not None:
            return
        payload: dict = {"span": self._name, "wall_s": wall_s}
        payload.update(self._mem.result or {})
        payload["metrics"] = state().registry.snapshot()
        self.result = payload


def capture(name: str) -> RunCapture:
    """A :class:`RunCapture` for one run (inert while disabled)."""
    return RunCapture(name)
