"""Peak-memory capture: ru_maxrss always, tracemalloc on request.

``resource.getrusage`` is effectively free, so the peak-RSS figure is
recorded whenever telemetry is on.  ``tracemalloc`` costs real
throughput (every allocation is traced), so it only runs when the run
opted in (``REPRO_TELEMETRY_MEM=1`` or ``telemetry.capture(memory=True)``)
— never implicitly.
"""

from __future__ import annotations

import sys
from typing import Optional

__all__ = ["peak_rss_bytes", "MemoryProbe"]

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None  # type: ignore[assignment]

import tracemalloc


def peak_rss_bytes() -> Optional[int]:
    """Process peak RSS in bytes, or ``None`` where rusage is missing.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS — normalize
    to bytes so the JSON artifacts compare across machines.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


class MemoryProbe:
    """Bracket a region: peak RSS delta plus optional tracemalloc peak.

    The tracemalloc section is careful not to stomp an outer trace: if
    tracing was already started (e.g. by ``benchmarks/bench_memory.py``)
    the probe only reads the peak, never stops tracing.
    """

    __slots__ = ("_use_tracemalloc", "_started_tracemalloc", "_rss_before", "result")

    def __init__(self, use_tracemalloc: bool = False) -> None:
        self._use_tracemalloc = use_tracemalloc
        self._started_tracemalloc = False
        self._rss_before: Optional[int] = None
        self.result: Optional[dict] = None

    def __enter__(self) -> "MemoryProbe":
        self._rss_before = peak_rss_bytes()
        if self._use_tracemalloc:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            else:
                tracemalloc.reset_peak()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        out: dict = {}
        rss_after = peak_rss_bytes()
        if rss_after is not None:
            out["peak_rss_bytes"] = rss_after
            if self._rss_before is not None:
                # ru_maxrss is a high-water mark; the delta is 0 when
                # this region did not push a new peak.
                out["peak_rss_delta_bytes"] = max(0, rss_after - self._rss_before)
        if self._use_tracemalloc and tracemalloc.is_tracing():
            _, traced_peak = tracemalloc.get_traced_memory()
            out["tracemalloc_peak_bytes"] = int(traced_peak)
            if self._started_tracemalloc:
                tracemalloc.stop()
        self.result = out
