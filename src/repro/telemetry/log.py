"""Logging setup for the ``repro`` namespace.

All repro modules log through ``telemetry.get_logger(__name__)``, which
maps ``repro.store.store`` → logger ``repro.store.store`` under the
``repro`` root logger.  By default nothing is configured — the root
``repro`` logger has a ``NullHandler`` so library use stays silent — and
:func:`setup_logging` (called by the CLI from ``-v``/``--quiet``)
attaches a stderr handler at the requested level.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "setup_logging", "verbosity_level"]

ROOT = "repro"

logging.getLogger(ROOT).addHandler(logging.NullHandler())

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` root (pass ``__name__``)."""
    if not name:
        return logging.getLogger(ROOT)
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def verbosity_level(verbose: int = 0, quiet: bool = False) -> int:
    """Map CLI ``-v`` counts / ``--quiet`` to a logging level."""
    if quiet:
        return logging.ERROR
    if verbose >= 2:
        return logging.DEBUG
    if verbose == 1:
        return logging.INFO
    return logging.WARNING


def setup_logging(verbose: int = 0, quiet: bool = False) -> logging.Logger:
    """Attach (or retune) one stderr handler on the ``repro`` logger.

    Idempotent: repeated calls adjust the level instead of stacking
    handlers, so tests and nested CLI invocations stay clean.
    """
    root = logging.getLogger(ROOT)
    level = verbosity_level(verbose, quiet)
    handler = None
    for existing in root.handlers:
        if getattr(existing, "_repro_cli_handler", False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        handler._repro_cli_handler = True  # type: ignore[attr-defined]
        root.addHandler(handler)
    handler.setLevel(level)
    root.setLevel(level)
    return root
