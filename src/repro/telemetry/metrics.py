"""Counters, gauges, and histograms for the run-path probes.

Plain-Python instruments (no numpy — the package must import in any
context, including spawn-mode pool workers before the heavy modules).
All three are monotone-cheap: recording is an attribute update plus, for
histograms, streaming moment accumulation; nothing allocates per
observation.

The registry is a flat name → instrument dict.  Names are dotted paths
mirroring the span names (``replay.window.slots_per_s``,
``store.fetch_s``, ``kernel.frames.lane_advances`` …) so a trace file
and a metrics snapshot read as one vocabulary.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (events, packets, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value instrument that also remembers its extrema.

    Used for occupancy-style signals (in-flight packets between fabric
    stages, pool utilization) where both the final value and the peak
    matter.
    """

    __slots__ = ("name", "value", "max", "min", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.max: float = -math.inf
        self.min: float = math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value
        self.updates += 1

    def snapshot(self) -> dict:
        if not self.updates:
            return {"type": "gauge", "value": None, "updates": 0}
        return {
            "type": "gauge",
            "value": self.value,
            "max": self.max,
            "min": self.min,
            "updates": self.updates,
        }


class Histogram:
    """Streaming summary of a distribution: count/sum/min/max/mean/std.

    Uses Welford's online algorithm so the memory footprint is O(1)
    regardless of how many windows or store accesses a run observes —
    the probes can fire millions of times without growing a list.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_mean", "_m2")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))

    def snapshot(self) -> dict:
        if not self.count:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "std": self.std,
        }


class MetricsRegistry:
    """Name-addressed instrument store; instruments are created lazily.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when the name is already registered (probes from different modules
    can share one counter without coordination).  Lookups are
    double-checked: the hot path is a lock-free ``dict.get`` (safe under
    the GIL — the dict only ever grows), and only a creation miss takes
    the registry lock, so two threads racing to create the same name
    converge on one instrument instead of silently dropping counts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Reads race the lock intentionally (double-checked creation).
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}  # guarded by: self._lock [writes]

    def _get_or_create(self, name: str, cls) -> Union[Counter, Gauge, Histogram]:
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(name)
                if inst is None:
                    inst = self._instruments[name] = cls(name)
        if not isinstance(inst, cls):
            raise TypeError(
                f"{name!r} is a {type(inst).__name__}, not a {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        inst = self._get_or_create(name, Counter)
        assert isinstance(inst, Counter)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._get_or_create(name, Gauge)
        assert isinstance(inst, Gauge)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._get_or_create(name, Histogram)
        assert isinstance(inst, Histogram)
        return inst

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-serializable view of every instrument, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }
