"""Global telemetry state: the on/off switch and the active instruments.

One process holds exactly one telemetry state: a boolean ``enabled``
flag, the span :class:`~repro.telemetry.spans.Tracer`, and the
:class:`~repro.telemetry.metrics.MetricsRegistry`.  The flag is read at
import time from ``REPRO_TELEMETRY`` (``"1"``/``"true"``/``"on"`` enable
it; anything else — the default — leaves it off) and flipped at runtime
by :func:`enable` / :func:`disable` / the :func:`scope` context manager.

Why a module-level flag and not a config object threaded through every
call: the probes sit on the replay hot paths (per window, per store
access, per formation cycle) and the *disabled* cost must be one
attribute check — that is what lets the instrumented kernels stay within
noise of the uninstrumented ones (``benchmarks/bench_telemetry.py``
gates it).  Probes never touch RNG state or cache-key parameters, so
flipping the flag cannot perturb results or store keys
(``tests/test_telemetry.py`` pins both).

Process pools: workers inherit the flag (fork) or re-read the
environment (spawn); each process records into its own tracer and
registry.  Cross-process aggregation is the caller's job (the parent
folds what the results carry — see ``repro.sim.parallel``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import MetricsRegistry
from .spans import Tracer

__all__ = [
    "TelemetryState",
    "enabled",
    "enable",
    "disable",
    "scope",
    "state",
    "enabled_from_env",
    "memory_from_env",
]

#: Environment switch; values accepted as "on" (case-insensitive).
ENV_VAR = "REPRO_TELEMETRY"
_TRUTHY = ("1", "true", "on", "yes")

#: Environment switch for the (expensive) tracemalloc capture.
ENV_MEMORY_VAR = "REPRO_TELEMETRY_MEM"


def enabled_from_env(environ=None) -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for telemetry (pure function)."""
    environ = os.environ if environ is None else environ
    return str(environ.get(ENV_VAR, "")).strip().lower() in _TRUTHY


def memory_from_env(environ=None) -> bool:
    """Whether ``REPRO_TELEMETRY_MEM`` asks for tracemalloc capture."""
    environ = os.environ if environ is None else environ
    return str(environ.get(ENV_MEMORY_VAR, "")).strip().lower() in _TRUTHY


class TelemetryState:
    """The process-wide instrument set behind the module accessors."""

    __slots__ = ("enabled", "memory", "tracer", "registry")

    def __init__(self, enabled: bool = False, memory: bool = False) -> None:
        self.enabled = enabled
        self.memory = memory
        self.tracer = Tracer()
        self.registry = MetricsRegistry()

    def reset(self) -> None:
        """Drop every recorded span and metric (flag unchanged)."""
        self.tracer = Tracer()
        self.registry = MetricsRegistry()


_STATE = TelemetryState(
    enabled=enabled_from_env(), memory=memory_from_env()
)


def state() -> TelemetryState:
    """The live state (probes read it through the module accessors)."""
    return _STATE


def enabled() -> bool:
    """Whether telemetry is recording — THE hot-path guard.

    Disabled is the default; every probe in the run path checks this (or
    receives a no-op instrument) before doing any work, so an
    uninstrumented-looking run stays uninstrumented-fast.
    """
    return _STATE.enabled


def enable(memory: Optional[bool] = None, fresh: bool = True) -> None:
    """Turn telemetry on (optionally with tracemalloc memory capture).

    ``fresh=True`` (default) starts from empty instruments, so a run's
    trace contains that run only.
    """
    if fresh:
        _STATE.reset()
    if memory is not None:
        _STATE.memory = memory
    _STATE.enabled = True


def disable() -> None:
    """Turn telemetry off (recorded spans/metrics are kept until the
    next :func:`enable` or :meth:`TelemetryState.reset`)."""
    _STATE.enabled = False


@contextmanager
def scope(memory: bool = False) -> Iterator[TelemetryState]:
    """Enable telemetry for a ``with`` block; restore the prior flag after.

    The test-suite idiom: instruments start fresh, the block records,
    and the yielded state is readable after the block::

        with telemetry.scope() as tel:
            run_single_fast(...)
        assert tel.registry.counter("replay.windows").value > 0
    """
    prior_enabled = _STATE.enabled
    prior_memory = _STATE.memory
    enable(memory=memory, fresh=True)
    try:
        yield _STATE
    finally:
        _STATE.enabled = prior_enabled
        _STATE.memory = prior_memory
