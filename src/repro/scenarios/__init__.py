"""Declarative workload scenarios.

A :class:`~repro.scenarios.spec.ScenarioSpec` composes a traffic-matrix
family, a load schedule, a burstiness model, an optional flow-size
distribution, and an optional matrix drift into one named, serializable
workload description.  The registry ships the paper's §6 patterns plus a
battery of stress scenarios (hotspots, bursts, ramps, drift, adversarial
concentration), each runnable on both simulation engines with bit-identical
seeded results.

Specs are plain data: load them from TOML/JSON files, build them from CLI
flags, or construct them in Python; :mod:`repro.scenarios.build` turns a
spec into the object- or batch-traffic generator with identical RNG
consumption for both.
"""

from .build import build_batch_traffic, build_traffic
from .registry import (
    SCENARIOS,
    get_scenario,
    list_scenarios,
    register_scenario,
    register_trace_scenario,
    resolve_scenario,
)
from .schedules import (
    ConstantSchedule,
    LoadSchedule,
    RampSchedule,
    SineSchedule,
    StepSchedule,
    make_schedule,
)
from .spec import (
    MATRIX_FAMILIES,
    ScenarioSpec,
    apply_overrides,
    effective_matrix,
    load_scenario_file,
    matrix_shape,
    save_scenario_file,
)

__all__ = [
    "MATRIX_FAMILIES",
    "SCENARIOS",
    "ScenarioSpec",
    "apply_overrides",
    "ConstantSchedule",
    "LoadSchedule",
    "RampSchedule",
    "SineSchedule",
    "StepSchedule",
    "build_batch_traffic",
    "build_traffic",
    "effective_matrix",
    "get_scenario",
    "list_scenarios",
    "load_scenario_file",
    "make_schedule",
    "matrix_shape",
    "register_scenario",
    "register_trace_scenario",
    "resolve_scenario",
    "save_scenario_file",
]
