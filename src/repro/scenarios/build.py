"""Turn a :class:`~repro.scenarios.spec.ScenarioSpec` into traffic.

One builder per engine family — :func:`build_traffic` (object packets) and
:func:`build_batch_traffic` (structure-of-arrays) — constructed from the
*same* components in the *same* order with the *same* derived seeds, so a
scenario produces an identical seeded arrival stream on both engines.
That lock-step is the foundation of the scenario parity tests.

RNG discipline
--------------
* ``derive_seed(seed, "traffic")`` feeds one shared generator used by the
  arrival process and the destination sampler, interleaved chunk-wise —
  exactly the pre-scenario convention of ``run_single``.
* Flow labeling (object engine only) draws from
  ``derive_seed(seed, "flows")``: a disjoint stream, so labeled and
  unlabeled runs of a scenario see the same packets, and the batch
  generator's ignorance of flows cannot break parity.
* Schedules are deterministic in the slot index and consume no RNG.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..sim.rng import spawn_generator, traffic_rng
from ..traffic.arrivals import (
    ArrivalProcess,
    ModulatedBernoulliArrivals,
    OnOffArrivals,
)
from ..traffic.batch import BatchTrafficGenerator
from ..traffic.generator import (
    DestinationSampler,
    DriftingDestinations,
    FlowModel,
    SteppedPermutations,
    TrafficGenerator,
)
from ..traffic.matrices import scale_to_load
from .schedules import make_schedule
from .spec import ScenarioSpec, effective_matrix, matrix_shape

__all__ = ["build_traffic", "build_batch_traffic"]

#: Longest geometric mean ON period of the on/off model (slots).
_ONOFF_MEAN_ON = 48.0
#: Duty cycle floor: bursts stay at least this peaky until the offered
#: load itself exceeds the floor.
_ONOFF_DUTY_FLOOR = 0.75


def _make_arrivals(
    spec: ScenarioSpec,
    matrix: np.ndarray,
    num_slots: int,
    rng: np.random.Generator,
) -> Optional[ArrivalProcess]:
    """The scenario's arrival process, or None for plain Bernoulli.

    Returning None lets the generator build its default
    ``BernoulliArrivals`` from the matrix row sums — the exact historical
    path, byte-identical seeds for stationary scenarios.
    """
    kind = spec.arrivals.get("kind", "bernoulli")
    n = matrix.shape[0]
    if kind == "bernoulli":
        sched_kind = spec.schedule.get("kind", "constant")
        if sched_kind == "constant" and spec.schedule.get("value", 1.0) == 1.0:
            return None
        schedule = make_schedule(spec.schedule, num_slots)
        return ModulatedBernoulliArrivals(matrix.sum(axis=1), schedule, rng)
    if kind == "onoff":
        mean_on = float(spec.arrivals.get("mean_on", _ONOFF_MEAN_ON))
        duty_floor = float(
            spec.arrivals.get("duty_floor", _ONOFF_DUTY_FLOOR)
        )
        # ``phases`` shares modulator chains across inputs (input i
        # follows chain i mod phases; 1 = the whole switch breathes in
        # lock-step).  Absent means one chain per input, the classic
        # independent model — construction (and RNG consumption) is then
        # unchanged, so pre-existing scenarios keep their exact streams.
        phases = spec.arrivals.get("phases")
        row_rates = matrix.sum(axis=1)
        row_peak = float(row_rates.max()) if n else 0.0
        # One duty cycle for the whole switch (a common burst cadence),
        # sized so the heaviest input's peak stays feasible: at least the
        # floor (bursty at low loads), at least the offered load, and low
        # enough that the mean OFF period is a full slot.  Peaks are then
        # *per input* — a skewed matrix's light rows burst at their own
        # rate, keeping every input's long-run rate at its row sum (so
        # admissibility of the effective matrix is preserved).
        duty = min(max(duty_floor, row_peak), mean_on / (mean_on + 1.0))
        peaks = (
            np.minimum(1.0, row_rates / duty)
            if duty > 0
            else np.zeros(n)
        )
        mean_off = max(1.0, mean_on * (1.0 - duty) / duty)
        # Clamped to n so one spec runs across the whole N grid (a
        # 4-phase scenario at N=2 degenerates to per-input chains).
        return OnOffArrivals(
            n, peaks, mean_on, mean_off, rng,
            phases=min(int(phases), n) if phases is not None else None,
        )
    raise ValueError(f"unknown arrival kind {kind!r}")  # pragma: no cover


def _make_destinations(
    spec: ScenarioSpec, n: int, load: float, num_slots: int
) -> Optional[DestinationSampler]:
    """The collective/drift sampler, or None for stationary matrix
    destinations."""
    if spec.collective is not None:
        return SteppedPermutations(
            int(spec.collective.get("phase_slots", 256))
        )
    if spec.drift is None:
        return None
    start = scale_to_load(matrix_shape(spec.matrix, n), load)
    end = scale_to_load(matrix_shape(spec.drift, n), load)
    return DriftingDestinations(start, end, num_slots)


def _components(
    spec: ScenarioSpec, n: int, load: float, seed: int, num_slots: int
) -> Tuple[np.ndarray, np.random.Generator, Optional[ArrivalProcess],
           Optional[DestinationSampler]]:
    """The shared (matrix, rng, arrivals, destinations) quadruple.

    Both engine builders call this exactly once, so any future component
    that consumes RNG at construction time stays at the same stream
    position for both.
    """
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    matrix = effective_matrix(spec, n, load)
    rng = traffic_rng(seed)
    arrivals = _make_arrivals(spec, matrix, num_slots, rng)
    destinations = _make_destinations(spec, n, load, num_slots)
    return matrix, rng, arrivals, destinations


def build_traffic(
    spec: ScenarioSpec, n: int, load: float, seed: int, num_slots: int
):
    """The scenario as an object-engine packet source.

    Trace scenarios return a :func:`~repro.traffic.trace_io.
    replay_generator` source (recorded timing and destinations, no RNG);
    everything else a :class:`TrafficGenerator`.
    """
    if spec.trace is not None:
        from ..traffic.trace_io import read_trace, replay_generator

        return replay_generator(n, read_trace(spec.trace["path"]))
    matrix, rng, arrivals, destinations = _components(
        spec, n, load, seed, num_slots
    )
    flow_model = None
    if spec.flows is not None:
        flow_model = FlowModel(
            flows_per_voq=int(spec.flows.get("flows_per_voq", 32)),
            zipf_exponent=float(spec.flows.get("zipf_exponent", 1.2)),
            rng=spawn_generator(seed, "flows"),
        )
    return TrafficGenerator(
        matrix,
        rng,
        arrivals=arrivals,
        flow_model=flow_model,
        destinations=destinations,
    )


def build_batch_traffic(
    spec: ScenarioSpec, n: int, load: float, seed: int, num_slots: int
):
    """The scenario as a batch (vectorized-engine) packet source.

    Flow labels are object-engine-only; everything that determines packet
    timing and destinations is built identically to :func:`build_traffic`.
    Trace scenarios return a :class:`~repro.traffic.trace_io.
    TraceBatchSource` replaying the recorded stream.
    """
    if spec.trace is not None:
        from ..traffic.trace_io import TraceBatchSource, read_trace

        return TraceBatchSource(n, read_trace(spec.trace["path"]))
    matrix, rng, arrivals, destinations = _components(
        spec, n, load, seed, num_slots
    )
    return BatchTrafficGenerator(
        matrix, rng, arrivals=arrivals, destinations=destinations
    )
