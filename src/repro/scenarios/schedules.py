"""Load schedules: slot-varying rate multipliers for nonstationary traffic.

A schedule maps simulation time to a multiplier in ``[0, 1]`` applied to
every input's offered load; :class:`~repro.traffic.arrivals.
ModulatedBernoulliArrivals` consumes it chunk by chunk.  Multipliers are
*relative to the scenario's target load* — a ramp to 1.0 tops out at the
load the experiment requested, never above it, so a schedule can never
push an admissible matrix into inadmissibility.

Schedules are deterministic functions of the slot index (no RNG), which is
what lets the object and batch traffic generators share them without any
parity bookkeeping.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "LoadSchedule",
    "ConstantSchedule",
    "RampSchedule",
    "SineSchedule",
    "StepSchedule",
    "SCHEDULE_KINDS",
    "make_schedule",
]


class LoadSchedule:
    """Interface: per-slot load multipliers in ``[0, 1]``."""

    def multipliers(self, start_slot: int, num_slots: int) -> np.ndarray:
        """Multipliers for slots ``[start_slot, start_slot + num_slots)``."""
        raise NotImplementedError

    def mean_multiplier(self, horizon: int) -> float:
        """Average multiplier over ``[0, horizon)`` (for reporting)."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return float(np.mean(self.multipliers(0, horizon)))


def _check_unit(value: float, name: str) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


class ConstantSchedule(LoadSchedule):
    """The stationary case: a fixed multiplier (default 1.0)."""

    def __init__(self, value: float = 1.0) -> None:
        self.value = _check_unit(value, "value")

    def multipliers(self, start_slot: int, num_slots: int) -> np.ndarray:
        return np.full(num_slots, self.value)


class RampSchedule(LoadSchedule):
    """Linear ramp from ``start`` to ``end`` over ``horizon`` slots.

    Past the horizon the multiplier holds at ``end`` — a run longer than
    the ramp sees a loaded steady state after a controlled warm ramp.
    """

    def __init__(self, start: float, end: float, horizon: int) -> None:
        self.start = _check_unit(start, "start")
        self.end = _check_unit(end, "end")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = int(horizon)

    def multipliers(self, start_slot: int, num_slots: int) -> np.ndarray:
        t = np.arange(start_slot, start_slot + num_slots, dtype=float)
        frac = np.minimum(t / self.horizon, 1.0)
        return self.start + (self.end - self.start) * frac


class SineSchedule(LoadSchedule):
    """Sinusoidal modulation between ``1 - depth`` and ``1`` (diurnal-style).

    ``multiplier(t) = 1 - depth * (1 + sin(2 pi (t + phase) / period)) / 2``
    — peaks at the target load, dips to ``1 - depth`` of it, period in
    slots.
    """

    def __init__(
        self, depth: float, period: int, phase: float = 0.0
    ) -> None:
        self.depth = _check_unit(depth, "depth")
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = int(period)
        self.phase = float(phase)

    def multipliers(self, start_slot: int, num_slots: int) -> np.ndarray:
        t = np.arange(start_slot, start_slot + num_slots, dtype=float)
        wave = np.sin(2.0 * math.pi * (t + self.phase) / self.period)
        return 1.0 - self.depth * (1.0 + wave) / 2.0


class StepSchedule(LoadSchedule):
    """Piecewise-constant levels over equal segments of ``horizon`` slots.

    Models abrupt regime changes (failover, tenant arrival); past the
    horizon the last level holds.
    """

    def __init__(self, levels: Sequence[float], horizon: int) -> None:
        if len(levels) == 0:
            raise ValueError("levels must be nonempty")
        self.levels = tuple(_check_unit(v, "level") for v in levels)
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = int(horizon)

    def multipliers(self, start_slot: int, num_slots: int) -> np.ndarray:
        t = np.arange(start_slot, start_slot + num_slots, dtype=np.int64)
        seg = np.minimum(
            t * len(self.levels) // self.horizon, len(self.levels) - 1
        )
        return np.asarray(self.levels, dtype=float)[seg]


#: Schedule spec kinds understood by :func:`make_schedule`.
SCHEDULE_KINDS = ("constant", "ramp", "sine", "steps")


def make_schedule(spec: Mapping, num_slots: int) -> LoadSchedule:
    """Build a schedule from a spec mapping, binding run length.

    ``spec["kind"]`` selects the class; horizon-relative kinds (ramp,
    steps) default their horizon to ``num_slots`` so "ramp over the run"
    needs no explicit slot count in the scenario file.
    """
    kind = spec.get("kind", "constant")
    params = {k: v for k, v in spec.items() if k != "kind"}
    if kind == "constant":
        return ConstantSchedule(**params)
    if kind == "ramp":
        params.setdefault("horizon", num_slots)
        return RampSchedule(**params)
    if kind == "sine":
        return SineSchedule(**params)
    if kind == "steps":
        params.setdefault("horizon", num_slots)
        return StepSchedule(**params)
    known = ", ".join(SCHEDULE_KINDS)
    raise ValueError(f"unknown schedule kind {kind!r}; known: {known}")
