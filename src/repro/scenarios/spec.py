"""The declarative scenario description and its matrix families.

A :class:`ScenarioSpec` is plain data — name, matrix family, load
schedule, burstiness model, flow labeling, optional matrix drift — with a
stable dict form for TOML/JSON files, CLI flags, cache keys, and pickling
across process pools.  Everything stochastic is *derived* from the spec
plus a master seed at build time (:mod:`repro.scenarios.build`), so a spec
fully determines a workload.

Matrix families produce a *shape* (an arbitrary-scale nonnegative matrix);
the effective matrix at a target load is the shape rescaled with
:func:`repro.traffic.matrices.scale_to_load`, which guarantees
admissibility for any load in ``[0, 1]`` regardless of how skewed the
family is — the property the scenario admissibility tests pin.
"""

from __future__ import annotations

import copy
import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Union

import numpy as np

from ..traffic.matrices import (
    diagonal_matrix,
    hotspot_matrix,
    lognormal_matrix,
    quasi_diagonal_matrix,
    scale_to_load,
    uniform_matrix,
)

__all__ = [
    "MATRIX_FAMILIES",
    "ScenarioSpec",
    "apply_overrides",
    "effective_matrix",
    "load_scenario_file",
    "matrix_shape",
    "save_scenario_file",
]


# ---------------------------------------------------------------------------
# Matrix families (shape functions; scale is normalized away)
# ---------------------------------------------------------------------------


def _stride_shape(n: int, stride: int = 2) -> np.ndarray:
    """All of input ``i``'s traffic to output ``(i * stride) mod n``.

    For strides that collide (several inputs mapping to one output) the
    shape oversubscribes columns; rescaling restores admissibility by
    lowering the per-input rate, leaving maximally concentrated single-VOQ
    rows — the adversarial case for variable-size striping.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if stride <= 0:
        raise ValueError("stride must be positive")
    matrix = np.zeros((n, n))
    for i in range(n):
        matrix[i][(i * stride) % n] = 1.0
    return matrix


def _hotspot_shape(n: int, weight: float = 4.0) -> np.ndarray:
    """Output 0 draws ``weight`` times a uniform output's share of each row."""
    if weight <= 0:
        raise ValueError("weight must be positive")
    return hotspot_matrix(n, 1.0, hotspot_fraction=weight / (weight + n - 1))


def _lognormal_shape(n: int, sigma: float = 1.0, seed: int = 7) -> np.ndarray:
    """Heavy-tailed iid VOQ weights from a spec-pinned internal seed.

    The seed lives in the spec (not the experiment's master seed) so the
    *shape* is part of the scenario identity: every run of the scenario
    stresses the same skewed matrix, while traffic randomness still varies
    with the experiment seed.
    """
    # repro: lint-ignore[RNG003] -- the shape seed is pinned in the spec, part of scenario identity
    return lognormal_matrix(n, 1.0, sigma, np.random.default_rng(seed))


#: family name -> shape function ``(n, **params) -> matrix``.
MATRIX_FAMILIES: Dict[str, Callable[..., np.ndarray]] = {
    "uniform": lambda n: uniform_matrix(n, 1.0),
    "diagonal": lambda n: diagonal_matrix(n, 1.0),
    "quasi-diagonal": lambda n: quasi_diagonal_matrix(n, 1.0),
    "hotspot": _hotspot_shape,
    "stride": _stride_shape,
    "lognormal": _lognormal_shape,
}


def matrix_shape(spec: Mapping, n: int) -> np.ndarray:
    """Instantiate a matrix-family spec mapping at size ``n``."""
    family = spec.get("family")
    if family not in MATRIX_FAMILIES:
        known = ", ".join(sorted(MATRIX_FAMILIES))
        raise ValueError(f"unknown matrix family {family!r}; known: {known}")
    params = {k: v for k, v in spec.items() if k != "family"}
    return MATRIX_FAMILIES[family](n, **params)


# ---------------------------------------------------------------------------
# The spec itself
# ---------------------------------------------------------------------------

_SPEC_FIELDS = ("name", "description", "matrix", "schedule", "arrivals",
                "flows", "drift", "collective", "trace")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative workload scenario.

    Fields (all serializable primitives / mappings):

    ``matrix``
        Matrix-family mapping, e.g. ``{"family": "hotspot", "weight": 4}``.
    ``schedule``
        Load-schedule mapping (:func:`repro.scenarios.schedules.
        make_schedule`), e.g. ``{"kind": "sine", "depth": 0.6,
        "period": 2048}``.
    ``arrivals``
        Burstiness model: ``{"kind": "bernoulli"}`` (paper §6 i.i.d.) or
        ``{"kind": "onoff", "mean_on": 48.0, "duty_floor": 0.75}`` for
        two-state Markov-modulated bursts.
    ``flows``
        Optional application-flow labeling for hashing experiments, e.g.
        ``{"flows_per_voq": 32, "zipf_exponent": 1.2}``.  Ignored by the
        batch generator (flow ids never influence non-hashing switches);
        drawn from a dedicated RNG stream so labeling cannot perturb
        engine parity.
    ``drift``
        Optional matrix-family mapping the traffic matrix morphs toward
        over the run (:class:`repro.traffic.generator.
        DriftingDestinations`).
    ``collective``
        Optional collective-communication destination pattern, e.g.
        ``{"kind": "ring", "phase_slots": 256}``: destinations follow a
        permutation stepping each phase
        (:class:`repro.traffic.generator.SteppedPermutations`).  Owns
        the destination pattern — incompatible with ``drift`` and with a
        non-default ``matrix`` family (the time-averaged matrix is
        uniform off-diagonal by construction).
    ``trace``
        Optional recorded-trace replay, ``{"path": "<file.csv[.gz]>"}``
        (:mod:`repro.traffic.trace_io` format).  The trace owns packet
        timing *and* destinations, so it is incompatible with every
        other workload section (non-default matrix/schedule/arrivals,
        drift, collective); the target load only rescales the empirical
        matrix used for switch provisioning.
    """

    name: str
    description: str = ""
    matrix: Mapping = field(default_factory=lambda: {"family": "uniform"})
    schedule: Mapping = field(default_factory=lambda: {"kind": "constant"})
    arrivals: Mapping = field(default_factory=lambda: {"kind": "bernoulli"})
    flows: Optional[Mapping] = None
    drift: Optional[Mapping] = None
    collective: Optional[Mapping] = None
    trace: Optional[Mapping] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be nonempty")
        # Fail fast on typo'd families/kinds instead of at build time.
        if self.matrix.get("family") not in MATRIX_FAMILIES:
            known = ", ".join(sorted(MATRIX_FAMILIES))
            raise ValueError(
                f"scenario {self.name!r}: unknown matrix family "
                f"{self.matrix.get('family')!r}; known: {known}"
            )
        if self.drift is not None and self.drift.get("family") not in MATRIX_FAMILIES:
            known = ", ".join(sorted(MATRIX_FAMILIES))
            raise ValueError(
                f"scenario {self.name!r}: unknown drift family "
                f"{self.drift.get('family')!r}; known: {known}"
            )
        arrival_kind = self.arrivals.get("kind", "bernoulli")
        if arrival_kind not in ("bernoulli", "onoff"):
            raise ValueError(
                f"scenario {self.name!r}: unknown arrival kind "
                f"{arrival_kind!r}; known: bernoulli, onoff"
            )
        if (
            arrival_kind == "onoff"
            and self.schedule.get("kind", "constant") != "constant"
        ):
            # The on/off process generates its own rate dynamics; a load
            # schedule on top would be silently ignored by the builder,
            # so refuse the combination instead of misdescribing the run.
            raise ValueError(
                f"scenario {self.name!r}: on/off arrivals cannot be "
                f"combined with a load schedule (the burst process owns "
                f"the rate dynamics); drop one of the two"
            )
        if self.collective is not None:
            kind = self.collective.get("kind")
            if kind != "ring":
                raise ValueError(
                    f"scenario {self.name!r}: unknown collective kind "
                    f"{kind!r}; known: ring"
                )
            if int(self.collective.get("phase_slots", 256)) <= 0:
                raise ValueError(
                    f"scenario {self.name!r}: collective phase_slots "
                    f"must be positive"
                )
            # The collective owns the destination pattern; a drift or a
            # non-default matrix family would be silently ignored by the
            # builder, so refuse the misdescription outright.
            if self.drift is not None:
                raise ValueError(
                    f"scenario {self.name!r}: collective destinations "
                    f"cannot be combined with drift"
                )
            if self.matrix.get("family") != "uniform":
                raise ValueError(
                    f"scenario {self.name!r}: collective destinations own "
                    f"the matrix (uniform off-diagonal time average); "
                    f"leave the matrix family at its default"
                )
        if self.trace is not None:
            if not self.trace.get("path"):
                raise ValueError(
                    f"scenario {self.name!r}: trace requires a 'path'"
                )
            # The recorded trace owns both timing and destinations;
            # every other workload section must stay at its default.
            defaulted = (
                self.matrix.get("family") == "uniform"
                and self.schedule.get("kind", "constant") == "constant"
                and self.schedule.get("value", 1.0) == 1.0
                and arrival_kind == "bernoulli"
                and self.drift is None
                and self.collective is None
            )
            if not defaulted:
                raise ValueError(
                    f"scenario {self.name!r}: a trace replays recorded "
                    f"timing and destinations; matrix/schedule/arrivals/"
                    f"drift/collective must be left at their defaults"
                )

    def to_dict(self) -> Dict:
        """A deep plain-dict form (stable for JSON/TOML/cache keys)."""
        out: Dict = {
            "name": self.name,
            "description": self.description,
            "matrix": copy.deepcopy(dict(self.matrix)),
            "schedule": copy.deepcopy(dict(self.schedule)),
            "arrivals": copy.deepcopy(dict(self.arrivals)),
        }
        if self.flows is not None:
            out["flows"] = copy.deepcopy(dict(self.flows))
        if self.drift is not None:
            out["drift"] = copy.deepcopy(dict(self.drift))
        if self.collective is not None:
            out["collective"] = copy.deepcopy(dict(self.collective))
        if self.trace is not None:
            out["trace"] = copy.deepcopy(dict(self.trace))
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        unknown = set(data) - set(_SPEC_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown scenario fields {sorted(unknown)}; "
                f"expected a subset of {list(_SPEC_FIELDS)}"
            )
        return cls(**{k: copy.deepcopy(v) for k, v in data.items()})


def effective_matrix(spec: ScenarioSpec, n: int, load: float) -> np.ndarray:
    """The scenario's time-averaged rate matrix at a target load.

    For drifting scenarios this is the midpoint of the start and end
    shapes (the linear drift's time average); rescaling the *combined*
    shape keeps the result admissible for any ``load <= 1``.  This is the
    matrix used for switch provisioning (Sprinklers' oracle placement) and
    for the admissibility guarantees the analysis layer assumes.
    """
    if load < 0:
        raise ValueError("load must be nonnegative")
    if spec.collective is not None:
        # A stepped-permutation collective visits every peer once per
        # n-1 phases: the time average is uniform off-diagonal.
        shape = np.ones((n, n)) - np.eye(n) if n > 1 else np.ones((1, 1))
        return scale_to_load(shape, load)
    if spec.trace is not None:
        from ..traffic.trace_io import read_trace, trace_matrix

        shape = trace_matrix(n, read_trace(spec.trace["path"]))
        return scale_to_load(shape, load)
    shape = matrix_shape(spec.matrix, n)
    if spec.drift is not None:
        shape = (shape + matrix_shape(spec.drift, n)) / 2.0
    return scale_to_load(shape, load)


# ---------------------------------------------------------------------------
# File I/O and CLI overrides
# ---------------------------------------------------------------------------


def load_scenario_file(path: Union[str, Path]) -> ScenarioSpec:
    """Load a spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if path.suffix == ".toml":
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    elif path.suffix == ".json":
        with open(path) as handle:
            data = json.load(handle)
    else:
        raise ValueError(
            f"unsupported scenario file {path.name!r} (want .toml or .json)"
        )
    return ScenarioSpec.from_dict(data)


def save_scenario_file(spec: ScenarioSpec, path: Union[str, Path]) -> Path:
    """Write a spec as JSON (the round-trippable interchange form)."""
    path = Path(path)
    if path.suffix != ".json":
        raise ValueError("scenario files are written as .json")
    path.write_text(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return path


def apply_overrides(spec: ScenarioSpec, assignments) -> ScenarioSpec:
    """Apply CLI ``--set section.key=value`` overrides to a spec.

    Values parse as JSON when possible (numbers, booleans, quoted
    strings), falling back to the raw string; dotted paths address nested
    mappings, creating the section (e.g. ``drift``) when absent.
    """
    data = spec.to_dict()
    for assignment in assignments:
        if "=" not in assignment:
            raise ValueError(f"override {assignment!r} is not key=value")
        dotted, raw = assignment.split("=", 1)
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        keys = dotted.split(".")
        node = data
        for key in keys[:-1]:
            nxt = node.get(key)
            if nxt is None:
                nxt = {}
                node[key] = nxt
            if not isinstance(nxt, dict):
                raise ValueError(f"cannot descend into {key!r} of {dotted!r}")
            node = nxt
        node[keys[-1]] = value
    return ScenarioSpec.from_dict(data)
