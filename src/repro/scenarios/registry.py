"""The named-scenario registry.

Every entry is a :class:`~repro.scenarios.spec.ScenarioSpec` whose
``description`` documents what stress it applies to variable-size striping
(the registry's one-line summaries are reproduced in EXPERIMENTS.md).  Use
:func:`get_scenario` / :func:`list_scenarios` programmatically,
``repro scenarios list`` from the shell, and :func:`resolve_scenario` to
accept "anything scenario-shaped" (name, file path, dict, or spec) at API
boundaries.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

from .spec import ScenarioSpec, load_scenario_file

__all__ = [
    "SCENARIOS",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "register_trace_scenario",
    "resolve_scenario",
]

#: All registered scenarios, by name.
SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (refusing silent overwrites)."""
    if not replace and spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


def register_trace_scenario(
    path: Union[str, Path],
    name: str = None,
    description: str = None,
    replace: bool = True,
) -> ScenarioSpec:
    """Register a recorded packet trace as a first-class scenario.

    The spec carries only ``trace={"path": ...}`` (see
    :mod:`repro.traffic.trace_io` for the CSV format); its default name is
    the ``trace:<path>`` designator itself, so anything that accepted the
    designator string — sweeps, the service job model, ``repro scenarios
    show`` — now finds the same spec in the registry.  ``replace=True``
    because the spec is a pure function of the path: re-registering the
    same trace is always harmless.
    """
    path = str(path)
    spec = ScenarioSpec(
        name=name if name is not None else f"trace:{path}",
        description=(
            description
            if description is not None
            else f"Recorded packet trace replayed from {path}."
        ),
        trace={"path": path},
    )
    return register_scenario(spec, replace=replace)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None


def list_scenarios() -> Tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(SCENARIOS))


def resolve_scenario(
    scenario: Union[str, Path, Mapping, ScenarioSpec]
) -> ScenarioSpec:
    """Coerce any scenario designator to a spec.

    Accepts a :class:`ScenarioSpec`, a spec dict (:meth:`ScenarioSpec.
    from_dict` form, e.g. off a process-pool job), a registered name, a
    path to a ``.toml``/``.json`` spec file, or ``trace:<path>`` — a
    recorded packet trace (:mod:`repro.traffic.trace_io` CSV, plain or
    gzip'd) replayed as a first-class scenario.
    """
    if isinstance(scenario, ScenarioSpec):
        return scenario
    if isinstance(scenario, Mapping):
        return ScenarioSpec.from_dict(scenario)
    if isinstance(scenario, Path):
        return load_scenario_file(scenario)
    if isinstance(scenario, str):
        if scenario.startswith("trace:"):
            # Resolving a trace designator registers it, so the trace
            # becomes a first-class entry: later `scenarios list|show`
            # and service job submissions can name it like any built-in.
            if scenario in SCENARIOS:
                return SCENARIOS[scenario]
            return register_trace_scenario(scenario[len("trace:"):])
        if scenario in SCENARIOS:
            return SCENARIOS[scenario]
        if scenario.endswith((".toml", ".json")):
            return load_scenario_file(scenario)
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown scenario {scenario!r}; known: {known} "
            f"(or pass a .toml/.json spec file, or trace:<path>)"
        )
    raise TypeError(f"cannot resolve scenario from {type(scenario).__name__}")


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------
#
# Descriptions double as the registry's documentation: first line is the
# summary shown by `repro scenarios list`, the rest explains the stress
# the scenario applies to variable-size striping.

register_scenario(ScenarioSpec(
    name="paper-uniform",
    description=(
        "Paper §6 Fig. 6: i.i.d. Bernoulli arrivals, uniform destinations. "
        "The friendliest admissible workload — every VOQ carries rate "
        "load/N, so all stripes are minimal and striping overhead is the "
        "only thing measured. The baseline every stress scenario is read "
        "against."
    ),
))

register_scenario(ScenarioSpec(
    name="quasi-diagonal",
    description=(
        "Paper §6 Fig. 7 ('Quasi-diagonal'): output i draws half of input "
        "i's traffic, the rest spread uniformly. Mixes one large stripe "
        "per input with many minimal ones — the first real test of "
        "Largest-Stripe-First priority and of Sprinklers' variable stripe "
        "sizing."
    ),
    matrix={"family": "diagonal"},
))

register_scenario(ScenarioSpec(
    name="hotspot-4x",
    description=(
        "Single hot output drawing 4x a uniform output's share of every "
        "input's traffic. Concentrates load on one output column, so one "
        "intermediate-stage output class saturates first — stresses the "
        "stage-2 queues and the balance of randomized interval placement "
        "across inputs that all favor the same output."
    ),
    matrix={"family": "hotspot", "weight": 4.0},
))

register_scenario(ScenarioSpec(
    name="lognormal-skew",
    description=(
        "Heavy-tailed iid lognormal VOQ rates (sigma=1), rescaled to the "
        "target load. Heterogeneous rates are exactly what variable-size "
        "striping exists for: stripe sizes span multiple dyadic classes, "
        "exercising the full LSF priority ladder and the Chernoff "
        "overload analysis' worst cases."
    ),
    matrix={"family": "lognormal", "sigma": 1.0, "seed": 7},
))

register_scenario(ScenarioSpec(
    name="zipf-flows",
    description=(
        "Uniform matrix with Zipf(1.2) application-flow labels, 32 flows "
        "per VOQ. Timing and destinations match paper-uniform; the skewed "
        "flow sizes are what TCP-hashing switches hash on, quantifying "
        "how much reordering-freedom costs hashing compared to striping."
    ),
    flows={"flows_per_voq": 32, "zipf_exponent": 1.2},
))

register_scenario(ScenarioSpec(
    name="mmpp-bursty",
    description=(
        "Two-state Markov-modulated (on/off) arrivals at a 75% duty "
        "cycle, mean burst 48 slots, uniform destinations. Bursts arrive "
        "faster than the provisioned rate while they last, filling "
        "stripes in clumps — stresses stripe-assembly latency and the "
        "input-side LSF backlog beyond the paper's i.i.d. assumption."
    ),
    arrivals={"kind": "onoff", "mean_on": 48.0, "duty_floor": 0.75},
))

register_scenario(ScenarioSpec(
    name="load-ramp",
    description=(
        "Offered load ramps linearly from 20% to 100% of the target over "
        "the run (uniform destinations). The early light phase leaves "
        "stripes half-filled for long stretches (assembly-delay stress); "
        "the late heavy phase tests whether queues stay stable once the "
        "ramp tops out at the provisioned rate."
    ),
    schedule={"kind": "ramp", "start": 0.2, "end": 1.0},
))

register_scenario(ScenarioSpec(
    name="load-sine",
    description=(
        "Diurnal-style sinusoidal load between 40% and 100% of the "
        "target, period 2048 slots (uniform destinations). Alternating "
        "busy and quiet phases stress the interaction between stripe "
        "assembly (worst when quiet) and queueing (worst when busy) "
        "within a single run."
    ),
    schedule={"kind": "sine", "depth": 0.6, "period": 2048},
))

register_scenario(ScenarioSpec(
    name="matrix-drift",
    description=(
        "Destinations drift linearly from uniform to the paper's "
        "quasi-diagonal pattern over the run at constant per-input rate. "
        "The oracle placement is provisioned from the time-averaged "
        "matrix, so by the end every input's dominant VOQ runs at twice "
        "its provisioned rate — the stress case for static variable-size "
        "striping and the motivation for adaptive resizing."
    ),
    drift={"family": "diagonal"},
))

register_scenario(ScenarioSpec(
    name="incast",
    description=(
        "Fan-in incast: every input sends most of its traffic to one hot "
        "output (8x a uniform share) in synchronized on/off bursts (mean "
        "32 slots at a 50% duty floor). During an episode the hot "
        "output's intermediate-stage class is offered roughly twice its "
        "service rate, so the fan-in backlog spikes and drains — the "
        "datacenter incast pattern, stressing stage-2 queues, FOFF's "
        "resequencers and PF's padding under clumped arrivals at once."
    ),
    matrix={"family": "hotspot", "weight": 8.0},
    arrivals={"kind": "onoff", "mean_on": 32.0, "duty_floor": 0.5},
))

register_scenario(ScenarioSpec(
    name="correlated-bursts",
    description=(
        "Every input shares ONE on/off modulator phase (mean burst 32 "
        "slots, 50% duty floor, uniform destinations): the whole switch "
        "bursts in lock-step instead of independently. During an episode "
        "the aggregate offered load doubles at every input simultaneously "
        "— the correlated overload the paper's i.i.d. analysis (and the "
        "Chernoff bound's independence assumptions) never sees — then the "
        "switch drains in the shared silence. Stresses frame formation "
        "(every input starts frames in the same cycles), stage-2 fan-in, "
        "and the drain dynamics of frame-at-a-time service."
    ),
    arrivals={
        "kind": "onoff", "mean_on": 32.0, "duty_floor": 0.5, "phases": 1,
    },
))

register_scenario(ScenarioSpec(
    name="ring-allreduce",
    description=(
        "Ring-collective destinations: every input sends all traffic to "
        "one peer, stepping to the next peer every 256 slots (a "
        "permutation per phase, each a derangement). The time-averaged "
        "matrix is uniform — provisioning sees the friendliest workload "
        "— but every instant concentrates each input on a single VOQ at "
        "full load, the adversarial case for static variable-size "
        "striping and the canonical AI-training collective that "
        "multi-stage fabrics must load-balance."
    ),
    collective={"kind": "ring", "phase_slots": 256},
))

register_scenario(ScenarioSpec(
    name="alltoall-phased",
    description=(
        "Synchronized compute/communicate phases: uniform all-to-all "
        "destinations under ONE shared on/off modulator (mean burst 64 "
        "slots, 50% duty floor, every input on the same chain). The "
        "whole fabric alternates between near-silent compute phases and "
        "all-ports-blasting exchange phases — the alltoall cadence of "
        "training workloads, doubling the offered load at every input "
        "simultaneously during an exchange."
    ),
    arrivals={
        "kind": "onoff", "mean_on": 64.0, "duty_floor": 0.5, "phases": 1,
    },
))

register_scenario(ScenarioSpec(
    name="incast-fanin",
    description=(
        "Multi-stage incast: every input concentrates on one hot output "
        "(16x a uniform share) in synchronized on/off bursts (mean 32 "
        "slots, 50% duty floor). Through a fabric, the hot column "
        "collapses onto a single downstream input — the deepest fan-in "
        "a leaf/spine sees — so episode backlogs compound across "
        "stages instead of draining between them."
    ),
    matrix={"family": "hotspot", "weight": 16.0},
    arrivals={"kind": "onoff", "mean_on": 32.0, "duty_floor": 0.5},
))

register_scenario(ScenarioSpec(
    name="adversarial-stride",
    description=(
        "Each input concentrates all traffic on output (2i mod N): "
        "maximally concentrated single-VOQ rows with pairwise output "
        "collisions. After admissibility rescaling each active VOQ "
        "carries rate load/2 — the largest dyadic stripe classes the "
        "sizing function produces — and colliding inputs compete for one "
        "output's service, the adversarial case for randomized interval "
        "placement."
    ),
    matrix={"family": "stride", "stride": 2},
))
