"""Core machinery for the project linter.

This module owns everything that is not a rule: loading sources into
:class:`ModuleSource` (text + AST + comment map), the
``# repro: lint-ignore[CODE]`` suppression protocol, rule selection,
and the orchestration entry points :func:`lint_project` /
:func:`lint_paths` used by the CLI and the tests.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintResult",
    "ModuleSource",
    "Project",
    "Suppression",
    "collect_python_files",
    "lint_paths",
    "lint_project",
]

# Matches "repro: lint-ignore" directives carrying one code, a family
# prefix, or a comma list, with an optional "-- justification" tail.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ignore\[(?P<codes>[A-Z0-9,\s]+)\](?:\s*--\s*(?P<why>.*))?"
)

_CODE_RE = re.compile(r"^[A-Z]+[0-9]*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation (or meta-finding) at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


@dataclass
class Suppression:
    """A parsed ``lint-ignore`` directive and its bookkeeping."""

    codes: Tuple[str, ...]
    line: int  # line the comment sits on (1-based)
    used: bool = False

    def matches(self, code: str) -> bool:
        """True when *code* is covered — exact or by family prefix."""
        for pattern in self.codes:
            if code == pattern or (
                not pattern[-1].isdigit() and code.startswith(pattern)
            ):
                return True
        return False


@dataclass
class ModuleSource:
    """A parsed source file: text, AST, comments, and suppressions."""

    path: Path
    relpath: str
    modname: str
    text: str
    tree: ast.Module
    # line number -> full comment text (without leading whitespace)
    comments: Dict[int, str] = field(default_factory=dict)
    suppressions: List[Suppression] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, root: Path) -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        modname = _modname_for(relpath)
        src = cls(
            path=path, relpath=relpath, modname=modname, text=text, tree=tree
        )
        src._scan_comments()
        return src

    def _scan_comments(self) -> None:
        reader = io.StringIO(self.text).readline
        try:
            for tok in tokenize.generate_tokens(reader):
                if tok.type != tokenize.COMMENT:
                    continue
                line = tok.start[0]
                self.comments[line] = tok.string
                match = _SUPPRESS_RE.search(tok.string)
                if match is None:
                    continue
                codes = tuple(
                    c.strip()
                    for c in match.group("codes").split(",")
                    if c.strip()
                )
                if codes and all(_CODE_RE.match(c) for c in codes):
                    self.suppressions.append(Suppression(codes=codes, line=line))
        except tokenize.TokenError:
            # Unterminated strings etc. — the AST parsed, so just keep
            # whatever comments were collected before the error.
            pass

    def comment_on(self, line: int) -> Optional[str]:
        return self.comments.get(line)

    def suppressed(self, finding: Finding) -> bool:
        """Check (and mark used) any directive covering *finding*.

        A directive covers its own line and, when it is the only thing
        on its line (a standalone comment), the next line as well.
        """
        hit = False
        for sup in self.suppressions:
            if not sup.matches(finding.code):
                continue
            if finding.line == sup.line or (
                finding.line == sup.line + 1 and self._standalone(sup.line)
            ):
                sup.used = True
                hit = True
        return hit

    def _standalone(self, line: int) -> bool:
        idx = line - 1
        lines = self.text.splitlines()
        if 0 <= idx < len(lines):
            return lines[idx].lstrip().startswith("#")
        return False


def _modname_for(relpath: str) -> str:
    parts = Path(relpath).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class Project:
    """The full set of modules under analysis."""

    root: Path
    modules: List[ModuleSource] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.by_modname: Dict[str, ModuleSource] = {
            m.modname: m for m in self.modules
        }

    @classmethod
    def load(cls, root: Path, paths: Sequence[Path]) -> "Project":
        modules = []
        for path in sorted(set(paths)):
            modules.append(ModuleSource.load(path, root))
        return cls(root=root, modules=modules)

    def module(self, modname: str) -> Optional[ModuleSource]:
        return self.by_modname.get(modname)


@dataclass
class LintResult:
    """Findings that survived suppression, plus run metadata."""

    findings: List[Finding]
    checked: int
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for p in paths:
        if p.is_dir():
            out.update(
                f
                for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
            )
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def lint_project(
    project: Project,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run every (selected) rule over *project* and apply suppressions."""
    # Imported here to keep core free of rule-module import cycles.
    from .rules import resolve_selection, run_rules

    active = resolve_selection(select, ignore)
    raw = run_rules(project, active)

    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(raw, key=Finding.sort_key):
        module = _module_for_path(project, finding.path)
        if module is not None and module.suppressed(finding):
            suppressed += 1
            continue
        kept.append(finding)

    # Unused-suppression check: every directive must have earned its keep.
    if _selected("SUP001", active):
        for module in project.modules:
            for sup in module.suppressions:
                if sup.used:
                    continue
                unused = Finding(
                    code="SUP001",
                    message=(
                        "unused suppression lint-ignore[%s] — nothing to "
                        "suppress here; remove the directive"
                        % ",".join(sup.codes)
                    ),
                    path=module.relpath,
                    line=sup.line,
                )
                kept.append(unused)

    kept.sort(key=Finding.sort_key)
    return LintResult(
        findings=kept, checked=len(project.modules), suppressed=suppressed
    )


def _selected(code: str, active: Set[str]) -> bool:
    return code in active


def _module_for_path(project: Project, relpath: str) -> Optional[ModuleSource]:
    for module in project.modules:
        if module.relpath == relpath:
            return module
    return None


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Convenience wrapper: load *paths* under *root* and lint them."""
    base = root if root is not None else Path.cwd()
    files = collect_python_files(paths)
    project = Project.load(base, files)
    return lint_project(project, select=select, ignore=ignore)
