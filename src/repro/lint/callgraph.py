"""A best-effort project call graph for reachability rules.

Static call resolution in Python is necessarily approximate; this graph
is tuned to over-approximate on the project's own code (so the key-path
rule cannot silently miss a helper) while refusing to guess about
attribute calls that look like builtin container methods.

Resolution strategy, in order, for a ``Call`` inside function ``f`` of
module ``m``:

1. ``name(...)``   — a function defined in ``m``, else a ``from x import
   name`` binding pointing at a project function.
2. ``alias.attr(...)`` — ``alias`` is an imported project module (plain
   or ``import x.y as alias``): resolve to ``x.y:attr``.
3. ``self.attr(...)`` — a method on the lexically enclosing class.
4. ``obj.attr(...)`` — if exactly **one** class in the whole project
   defines a method ``attr`` and ``attr`` is not a common builtin-method
   name, resolve to that method (unique-method fallback).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import ModuleSource, Project

__all__ = ["CallGraph", "FunctionInfo", "build_call_graph"]

# Attribute-call names too generic to attribute to a project class.
_BUILTIN_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "index",
        "count", "sort", "reverse", "copy", "get", "items", "keys",
        "values", "update", "setdefault", "add", "discard", "union",
        "intersection", "difference", "join", "split", "rsplit", "strip",
        "lstrip", "rstrip", "startswith", "endswith", "format", "replace",
        "encode", "decode", "lower", "upper", "read", "write", "close",
        "open", "flush", "readline", "readlines", "seek", "tell", "mkdir",
        "exists", "is_dir", "is_file", "glob", "rglob", "resolve",
        "relative_to", "as_posix", "with_suffix", "read_text",
        "write_text", "read_bytes", "write_bytes", "unlink", "touch",
        "acquire", "release", "wait", "notify", "notify_all", "put",
        "task_done", "submit", "result", "cancel", "start", "is_alive",
        "terminate", "kill", "send", "recv", "poll", "fileno", "item",
        "tolist", "astype", "reshape", "sum", "mean", "max", "min",
        "cumsum", "argsort", "searchsorted", "fill", "ravel", "flatten",
        "group", "match", "search", "findall", "sub", "finditer",
    }
)


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    key: str  # "modname:qualname", e.g. "repro.store.store:ExperimentStore.cache_key"
    modname: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    calls: List[ast.Call] = field(default_factory=list)


@dataclass
class CallGraph:
    functions: Dict[str, FunctionInfo]
    edges: Dict[str, Set[str]]

    def reachable(self, roots: List[str]) -> Set[str]:
        """All function keys reachable from *roots* (roots included)."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self.edges.get(key, ()))
        return seen

    def lookup(self, modname: str, name: str) -> List[str]:
        """Keys whose qualname is *name* (or ends with ``.name``) in *modname*."""
        out = []
        for key, info in self.functions.items():
            if info.modname != modname:
                continue
            if info.qualname == name or info.qualname.endswith("." + name):
                out.append(key)
        return out


def _iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, Optional[str], ast.AST]]:
    """Yield ``(qualname, classname, node)`` for every def in *tree*."""

    def walk(
        body: List[ast.stmt], prefix: str, classname: Optional[str]
    ) -> Iterator[Tuple[str, Optional[str], ast.AST]]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = prefix + node.name
                yield qual, classname, node
                # Nested defs attribute their calls to the outer function
                # via _collect_calls; no separate graph node needed.
            elif isinstance(node, ast.ClassDef):
                yield from walk(
                    node.body, prefix + node.name + ".", node.name
                )

    yield from walk(tree.body, "", None)


def _collect_calls(node: ast.AST) -> List[ast.Call]:
    calls = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            calls.append(sub)
    return calls


def _import_map(module: ModuleSource) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Return (module-aliases, from-imports) for *module*.

    module-aliases: local name -> full module path ("np" -> "numpy").
    from-imports:   local name -> "modpath:name".
    """
    mod_alias: Dict[str, str] = {}
    from_names: Dict[str, str] = {}
    pkg_parts = module.modname.split(".")
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mod_alias[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this module's package.
                base = pkg_parts[: len(pkg_parts) - node.level]
                target = ".".join(base + ([node.module] if node.module else []))
            else:
                target = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                from_names[alias.asname or alias.name] = (
                    "%s:%s" % (target, alias.name)
                )
    return mod_alias, from_names


def build_call_graph(project: Project) -> CallGraph:
    functions: Dict[str, FunctionInfo] = {}
    # method name -> list of owning function keys (for the unique fallback)
    methods_by_name: Dict[str, List[str]] = {}

    for module in project.modules:
        for qualname, classname, node in _iter_functions(module.tree):
            key = "%s:%s" % (module.modname, qualname)
            info = FunctionInfo(
                key=key,
                modname=module.modname,
                qualname=qualname,
                node=node,
                calls=_collect_calls(node),
            )
            functions[key] = info
            if classname is not None:
                methods_by_name.setdefault(
                    qualname.rsplit(".", 1)[-1], []
                ).append(key)

    edges: Dict[str, Set[str]] = {key: set() for key in functions}
    for module in project.modules:
        mod_alias, from_names = _import_map(module)
        for qualname, classname, node in _iter_functions(module.tree):
            key = "%s:%s" % (module.modname, qualname)
            for call in functions[key].calls:
                target = _resolve(
                    call,
                    module,
                    classname,
                    functions,
                    methods_by_name,
                    mod_alias,
                    from_names,
                )
                if target is not None:
                    edges[key].add(target)
    return CallGraph(functions=functions, edges=edges)


def _resolve(
    call: ast.Call,
    module: ModuleSource,
    classname: Optional[str],
    functions: Dict[str, FunctionInfo],
    methods_by_name: Dict[str, List[str]],
    mod_alias: Dict[str, str],
    from_names: Dict[str, str],
) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        local = "%s:%s" % (module.modname, func.id)
        if local in functions:
            return local
        imported = from_names.get(func.id)
        if imported is not None and imported in functions:
            return imported
        return None
    if isinstance(func, ast.Attribute):
        attr = func.attr
        value = func.value
        if isinstance(value, ast.Name):
            if value.id == "self" and classname is not None:
                method = "%s:%s.%s" % (module.modname, classname, attr)
                if method in functions:
                    return method
            target_mod = mod_alias.get(value.id)
            if target_mod is not None:
                key = "%s:%s" % (target_mod, attr)
                if key in functions:
                    return key
            # ``from x import y`` where y is a project module
            imported = from_names.get(value.id)
            if imported is not None:
                modpath, name = imported.split(":", 1)
                key = "%s.%s:%s" % (modpath, name, attr)
                if key in functions:
                    return key
        # Unique-method fallback, blocklist-guarded.
        if attr not in _BUILTIN_METHODS:
            owners = methods_by_name.get(attr, [])
            if len(owners) == 1:
                return owners[0]
    return None
