"""Registry-consistency rules (REG001-REG005).

REG001-REG003 and REG005 are *dynamic* cross-checks: they import the
switch registry and verify that what the models declare matches what
their kernel modules actually provide, that the paper-grid coverage
floor holds, that the built-in fabrics resolve, and that every switch
advertising the COMPILED capability resolves compiled pass
implementations (:func:`repro.sim.kernels.compiled.resolve_compiled_passes`).
They replace the ad-hoc shell gates the CI tier-1 job used to carry and
only run when the linted file set includes ``repro/models/builtin.py``
(so fixture-only lint runs in tests stay hermetic).

REG004 is static: in every module that declares ``__all__``, the list
must name exactly the module's public API — every listed name is
defined (or re-exported), and every public ``def``/``class`` is listed.
"""

from __future__ import annotations

import ast
import sys
from typing import List, Optional, Set

from ..core import Finding, ModuleSource, Project

__all__ = ["check"]

#: The switches whose vectorized + streamed coverage is the CI floor
#: (the five paper curves plus the output-queued reference).
COVERAGE_FLOOR = (
    "sprinklers",
    "ufs",
    "foff",
    "pf",
    "load-balanced",
    "output-queued",
)

#: The built-in fabrics that must resolve and run vectorized.
FABRIC_FLOOR = ("leaf-spine", "dual-sprinklers")

_BUILTIN_RELPATH_SUFFIX = "repro/models/builtin.py"


def check(project: Project, active: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        findings.extend(_check_all_exports(module))

    builtin = next(
        (
            m
            for m in project.modules
            if m.relpath.endswith(_BUILTIN_RELPATH_SUFFIX)
        ),
        None,
    )
    if builtin is not None and any(
        code in active for code in ("REG001", "REG002", "REG003", "REG005")
    ):
        findings.extend(_check_registry(builtin))
    return findings


# -- REG001-REG003: dynamic registry checks -----------------------------------


def _check_registry(builtin: ModuleSource) -> List[Finding]:
    findings: List[Finding] = []
    try:
        from repro import models
        from repro.models.composite import (
            CompositeSwitchModel,
            get_fabric,
        )
        from repro.models.model import Capability
    except Exception as exc:  # registry import must itself succeed
        return [
            Finding(
                code="REG001",
                message="cannot import the switch registry: %s" % (exc,),
                path=builtin.relpath,
                line=1,
            )
        ]

    def fail(code: str, message: str) -> None:
        findings.append(
            Finding(code=code, message=message, path=builtin.relpath, line=1)
        )

    # REG001 — per-model capability coherence against the kernel module.
    for name in models.available():
        model = models.get(name)
        caps = model.capabilities
        if Capability.STREAMING in caps and model.stream_kernel is None:
            fail(
                "REG001",
                "switch %r declares streaming but has no stream kernel"
                % name,
            )
        if Capability.FEEDBACK_COUPLED in caps and model.kernel is not None:
            fail(
                "REG001",
                "switch %r declares feedback-coupled yet carries an "
                "exact kernel" % name,
            )
        if model.kernel is not None and Capability.EXACT_REPLAY not in caps:
            fail(
                "REG001",
                "switch %r has a vectorized kernel but does not declare "
                "exact-replay — either the kernel is parity-tested "
                "(declare it) or it must not be registered" % name,
            )
        if model.stream_kernel is not None:
            kmod = sys.modules.get(model.stream_kernel.__module__)
            streamer_classes = [
                obj
                for obj in vars(kmod).values()
                if isinstance(obj, type)
                and hasattr(obj, "feed")
                and hasattr(obj, "finish")
            ] if kmod is not None else []
            if Capability.COMPOSABLE in caps and not streamer_classes:
                fail(
                    "REG001",
                    "switch %r declares composable but its kernel module "
                    "%s has no feed/finish streamer class"
                    % (name, model.stream_kernel.__module__),
                )
            if Capability.SEED_BATCHED in caps and not any(
                hasattr(c, "finish_stacked") for c in streamer_classes
            ):
                fail(
                    "REG001",
                    "switch %r declares seed-batched but no streamer "
                    "class in %s implements finish_stacked"
                    % (name, model.stream_kernel.__module__),
                )

    # REG002 — the vectorized + streamed coverage floor.
    vectorized = set(models.available(engine="vectorized"))
    streaming = set(
        models.available(engine="vectorized", capability="streaming")
    )
    for name in COVERAGE_FLOOR:
        if name not in vectorized:
            fail(
                "REG002",
                "coverage floor: switch %r lost its vectorized kernel"
                % name,
            )
        elif name not in streaming:
            fail(
                "REG002",
                "coverage floor: switch %r lost its streamed (windowed) "
                "kernel form" % name,
            )
    missing_stream = vectorized - streaming
    if missing_stream:
        fail(
            "REG002",
            "vectorized switches missing a stream kernel: %s"
            % sorted(missing_stream),
        )

    # REG003 — built-in fabrics resolve and support the vectorized engine.
    for fname in FABRIC_FLOOR:
        try:
            CompositeSwitchModel(get_fabric(fname)).require_engine(
                "vectorized"
            )
        except Exception as exc:
            fail(
                "REG003",
                "built-in fabric %r unusable on the vectorized engine: %s"
                % (fname, exc),
            )

    # REG005 — a switch advertising COMPILED must resolve compiled
    # implementations for its kernel module's hot passes.
    from repro.sim.kernels.compiled import resolve_compiled_passes

    for name in models.available():
        model = models.get(name)
        if Capability.COMPILED not in model.capabilities:
            continue
        if model.kernel is None:
            fail(
                "REG005",
                "switch %r advertises the compiled backend but has no "
                "vectorized kernel to accelerate" % name,
            )
            continue
        try:
            passes = resolve_compiled_passes(model.kernel.__module__)
        except Exception as exc:
            fail(
                "REG005",
                "switch %r: compiled passes for kernel module %s do not "
                "resolve: %s" % (name, model.kernel.__module__, exc),
            )
            continue
        if not passes or not all(callable(p) for p in passes):
            fail(
                "REG005",
                "switch %r: kernel module %s resolved no compiled pass "
                "implementations" % (name, model.kernel.__module__),
            )
    return findings


# -- REG004: __all__ vs. public definitions -----------------------------------


def _check_all_exports(module: ModuleSource) -> List[Finding]:
    declared = _declared_all(module.tree)
    if declared is None:
        return []
    names, decl_line = declared

    defined: Set[str] = set()  # anything assignable/importable at top level
    public_defs: Set[str] = set()  # def/class names that belong in __all__
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
            if not node.name.startswith("_"):
                public_defs.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                defined.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                defined.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    defined.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING / fallback-import blocks: count their
            # bindings as defined (one level deep is enough here).
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    defined.add(sub.name)
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            defined.add(alias.asname or alias.name)

    # A module-level ``__getattr__`` provides names lazily (the
    # deprecation-shim idiom), so "listed but undefined" cannot be
    # decided statically there.
    lazy = "__getattr__" in defined
    findings: List[Finding] = []
    if not lazy:
        for name in sorted(set(names) - defined):
            findings.append(
                Finding(
                    code="REG004",
                    message=(
                        "__all__ lists %r but the module defines no such "
                        "name" % name
                    ),
                    path=module.relpath,
                    line=decl_line,
                )
            )
    for name in sorted(public_defs - set(names)):
        findings.append(
            Finding(
                code="REG004",
                message=(
                    "public definition %r missing from __all__ — export "
                    "it or rename it with a leading underscore" % name
                ),
                path=module.relpath,
                line=decl_line,
            )
        )
    return findings


def _declared_all(tree: ast.Module) -> Optional[tuple]:
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [
                        el.value
                        for el in value.elts
                        if isinstance(el, ast.Constant)
                        and isinstance(el.value, str)
                    ]
                    return names, node.lineno
    return None
