"""RNG-discipline rules (RNG001-RNG004).

Every random stream in the project must be a named, seed-derived
:class:`numpy.random.Generator` built through :mod:`repro.sim.rng` —
that is what makes runs replayable, shards store-addressable, and the
object/vectorized engines bit-comparable.  These rules pin the
convention: no process-global RNG state, no stdlib ``random``, every
``default_rng`` argument derived from the master seed, and no draws
whose *execution* depends on a branch in the parity-critical modules
(the two engines must consume identical variate sequences).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import Finding, ModuleSource, Project

__all__ = ["check"]

#: Modules exempt from the RNG rules: the stream helpers themselves
#: (they are the one sanctioned ``default_rng`` call site) and the
#: linter (whose docstrings discuss the forbidden spellings).
_EXEMPT_PREFIXES = ("repro.sim.rng", "repro.lint")

#: Legacy numpy global-state draws (``np.random.<draw>()``), all of
#: which mutate hidden process state.
_LEGACY_NP_DRAWS = frozenset(
    {
        "seed", "set_state", "rand", "randn", "randint", "random",
        "random_sample", "choice", "shuffle", "permutation", "uniform",
        "normal", "exponential", "poisson", "binomial", "geometric",
        "lognormal", "standard_normal", "bytes",
    }
)

#: Generator draw methods considered for the conditional-draw rule.
_DRAW_METHODS = frozenset(
    {
        "random", "integers", "choice", "shuffle", "permutation",
        "normal", "uniform", "exponential", "poisson", "binomial",
        "geometric", "lognormal", "standard_normal", "bytes",
    }
)

#: Module path fragments whose draws are parity-critical (RNG004).
_PARITY_CRITICAL = ("repro.sim.kernels.", "repro.traffic.")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _default_rng_names(tree: ast.Module) -> Set[str]:
    """Local names bound to ``numpy.random.default_rng`` by from-import."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
            for alias in node.names:
                if alias.name == "default_rng":
                    names.add(alias.asname or alias.name)
    return names


def _stdlib_random_imported(tree: ast.Module) -> List[ast.stmt]:
    hits: List[ast.stmt] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name == "random" for a in node.names):
                hits.append(node)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and not node.level:
                hits.append(node)
    return hits


def _iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Module plus every function scope (for local seed-flow tracking)."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _derived_names(scope: ast.AST) -> Set[str]:
    """Names assigned from ``derive_seed(...)`` within *scope*."""
    out: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = _dotted(node.value.func)
            if callee is not None and callee.split(".")[-1] == "derive_seed":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
    return out


def _seed_flows(arg: ast.expr, derived: Set[str]) -> bool:
    if isinstance(arg, ast.Call):
        callee = _dotted(arg.func)
        return callee is not None and callee.split(".")[-1] in (
            "derive_seed",
            "spawn_seedseq",
        )
    if isinstance(arg, ast.Name):
        return arg.id in derived
    return False


def check(project: Project, active: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        if module.modname.startswith(_EXEMPT_PREFIXES):
            continue
        findings.extend(_check_module(module))
    return findings


def _check_module(module: ModuleSource) -> List[Finding]:
    findings: List[Finding] = []
    tree = module.tree
    np_aliases = _numpy_aliases(tree)
    rng_names = _default_rng_names(tree)

    # RNG002 — stdlib random imports (any use implies the import).
    for node in _stdlib_random_imported(tree):
        findings.append(
            Finding(
                code="RNG002",
                message=(
                    "stdlib `random` imported — use named numpy streams "
                    "from repro.sim.rng (derive_seed/spawn_generator)"
                ),
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
            )
        )

    for call in (n for n in ast.walk(tree) if isinstance(n, ast.Call)):
        callee = _dotted(call.func)
        if callee is None:
            continue
        parts = callee.split(".")
        # RNG001 — process-global numpy RNG state.
        if (
            len(parts) == 3
            and parts[0] in np_aliases
            and parts[1] == "random"
            and parts[2] in _LEGACY_NP_DRAWS
        ):
            findings.append(
                Finding(
                    code="RNG001",
                    message=(
                        "`%s` touches process-global RNG state — build a "
                        "Generator via repro.sim.rng instead" % callee
                    ),
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                )
            )
        # RNG001 — stdlib random.seed (global state even if RNG002 missed
        # an exotic import spelling).
        if callee == "random.seed":
            findings.append(
                Finding(
                    code="RNG001",
                    message="`random.seed` seeds process-global state",
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                )
            )

    # RNG003 — default_rng argument provenance, per scope.  Nested
    # functions are visited as their own scope *and* by the enclosing
    # walk, so findings dedupe by location.
    rng3_seen: Set[Tuple[int, int]] = set()
    for scope in _iter_scopes(tree):
        derived = _derived_names(scope)
        body = scope.body if isinstance(scope, ast.Module) else [scope]
        for node in body:
            for call in (n for n in ast.walk(node) if isinstance(n, ast.Call)):
                callee = _dotted(call.func)
                if callee is None:
                    continue
                parts = callee.split(".")
                is_default_rng = (
                    len(parts) == 3
                    and parts[0] in np_aliases
                    and parts[1] == "random"
                    and parts[2] == "default_rng"
                ) or (len(parts) == 1 and parts[0] in rng_names)
                if not is_default_rng:
                    continue
                # Only report against the *innermost* scope containing
                # the call (module scope would double-report calls that
                # sit inside functions).
                if isinstance(scope, ast.Module) and _inside_function(
                    tree, call
                ):
                    continue
                loc = (call.lineno, call.col_offset)
                if loc in rng3_seen:
                    continue
                rng3_seen.add(loc)
                if not call.args or not _seed_flows(call.args[0], derived):
                    findings.append(
                        Finding(
                            code="RNG003",
                            message=(
                                "default_rng argument does not flow from "
                                "derive_seed — use spawn_generator(seed, "
                                "name) or derive_seed(seed, name)"
                            ),
                            path=module.relpath,
                            line=call.lineno,
                            col=call.col_offset,
                        )
                    )

    # RNG004 — conditional draws in parity-critical modules.
    if module.modname.startswith(_PARITY_CRITICAL) or any(
        module.modname == p.rstrip(".") for p in _PARITY_CRITICAL
    ):
        findings.extend(_conditional_draws(module))
    return findings


def _inside_function(tree: ast.Module, target: ast.Call) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is target:
                    return True
    return False


def _conditional_draws(module: ModuleSource) -> List[Finding]:
    findings: List[Finding] = []
    conditionals: List[ast.AST] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.If):
            conditionals.extend(node.body)
            conditionals.extend(node.orelse)
        elif isinstance(node, ast.IfExp):
            conditionals.append(node.body)
            conditionals.append(node.orelse)
    seen: Set[Tuple[int, int]] = set()
    for branch in conditionals:
        for call in (n for n in ast.walk(branch) if isinstance(n, ast.Call)):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _DRAW_METHODS:
                continue
            recv = func.value
            if not (isinstance(recv, ast.Name) and "rng" in recv.id.lower()):
                continue
            loc = (call.lineno, call.col_offset)
            if loc in seen:
                continue
            seen.add(loc)
            findings.append(
                Finding(
                    code="RNG004",
                    message=(
                        "RNG draw `%s.%s` inside a conditional branch of a "
                        "parity-critical module — both engines must "
                        "consume identical variate sequences"
                        % (recv.id, func.attr)
                    ),
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                )
            )
    return findings
