"""Store-key determinism rules (KEY001-KEY003).

PR 8's central identity — ``shard identity == store identity`` — holds
only if every function on the path that *computes* a cache key is a pure
function of the run parameters.  A wall-clock read, an entropy source,
an ``id()``, or an iteration whose order varies across processes would
make the same logical run hash to different keys on different hosts (or
the same host, twice), silently defeating dedup and cache reuse.

The rule computes the project call graph reachable from the key roots
(:func:`resolve_run_params`, the store's ``canonical_params`` /
``cache_key``, and ``jobs.expand_shards``) and forbids the hazardous
APIs anywhere in that set.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..callgraph import CallGraph, build_call_graph
from ..core import Finding, Project

__all__ = ["KEY_ROOTS", "check"]

#: ``(module, function name)`` pairs whose reachable call graph must be
#: deterministic.  Methods match by trailing name (``Cls.name``).
KEY_ROOTS: Tuple[Tuple[str, str], ...] = (
    ("repro.sim.experiment", "resolve_run_params"),
    ("repro.store.store", "canonical_params"),
    ("repro.store.store", "cache_key"),
    ("repro.service.jobs", "expand_shards"),
)

#: Dotted calls that read wall clocks or entropy (KEY001).
_FORBIDDEN_EXACT = frozenset(
    {
        "time.time",
        "time.time_ns",
        "os.urandom",
        "uuid.uuid4",
        "uuid.uuid1",
        "secrets.token_bytes",
        "secrets.token_hex",
    }
)

#: Listing calls that must be wrapped in ``sorted(...)`` (KEY002).
_LISTING_ATTRS = frozenset({"listdir", "scandir", "glob", "iglob", "rglob", "iterdir"})


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def check(project: Project, active: Set[str]) -> List[Finding]:
    graph = build_call_graph(project)
    roots: List[str] = []
    for modname, name in KEY_ROOTS:
        roots.extend(graph.lookup(modname, name))
    reachable = graph.reachable(roots)
    if not reachable:
        return []

    findings: List[Finding] = []
    relpath_by_mod: Dict[str, str] = {
        m.modname: m.relpath for m in project.modules
    }
    for key in sorted(reachable):
        info = graph.functions[key]
        relpath = relpath_by_mod.get(info.modname)
        if relpath is None:
            continue
        parents = _parent_map(info.node)
        for call in info.calls:
            findings.extend(
                _check_call(call, key, relpath, parents)
            )
        findings.extend(_check_set_iteration(info.node, key, relpath))
    return findings


def _parent_map(fn: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(fn):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _check_call(
    call: ast.Call,
    fn_key: str,
    relpath: str,
    parents: Dict[ast.AST, ast.AST],
) -> List[Finding]:
    findings: List[Finding] = []
    callee = _dotted(call.func)
    where = "key-path function `%s`" % fn_key.split(":", 1)[1]

    # KEY001 — wall clock / entropy / object identity.
    hazard: Optional[str] = None
    if callee is not None:
        if callee in _FORBIDDEN_EXACT:
            hazard = callee
        else:
            parts = callee.split(".")
            if parts[-1] in ("now", "utcnow") and "datetime" in parts:
                hazard = callee
    if callee == "id" and call.args:
        hazard = "id()"
    if hazard is not None:
        findings.append(
            Finding(
                code="KEY001",
                message=(
                    "`%s` in %s — cache keys must be pure functions of "
                    "the run parameters" % (hazard, where)
                ),
                path=relpath,
                line=call.lineno,
                col=call.col_offset,
            )
        )

    # KEY002 — unsorted directory listings.
    if callee is not None:
        parts = callee.split(".")
        is_listing = parts[-1] in _LISTING_ATTRS and (
            len(parts) > 1 or parts[-1] in ("iglob",)
        )
        if is_listing and not _wrapped_in_sorted(call, parents):
            findings.append(
                Finding(
                    code="KEY002",
                    message=(
                        "unsorted `%s` in %s — filesystem order is not "
                        "deterministic; wrap in sorted(...)"
                        % (callee, where)
                    ),
                    path=relpath,
                    line=call.lineno,
                    col=call.col_offset,
                )
            )
    return findings


def _wrapped_in_sorted(
    call: ast.Call, parents: Dict[ast.AST, ast.AST]
) -> bool:
    node: Optional[ast.AST] = parents.get(call)
    # Allow one intervening node (e.g. a generator expression argument).
    for _ in range(3):
        if node is None:
            return False
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            return True
        node = parents.get(node)
    return False


def _check_set_iteration(
    fn: ast.AST, fn_key: str, relpath: str
) -> List[Finding]:
    findings: List[Finding] = []
    where = "key-path function `%s`" % fn_key.split(":", 1)[1]
    iters: List[ast.expr] = []
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            iters.extend(gen.iter for gen in node.generators)
    for it in iters:
        is_set = isinstance(it, ast.Set) or (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id in ("set", "frozenset")
        )
        if is_set:
            findings.append(
                Finding(
                    code="KEY003",
                    message=(
                        "iteration over a bare set in %s — order varies "
                        "with hash seeding; sort first" % where
                    ),
                    path=relpath,
                    line=it.lineno,
                    col=it.col_offset,
                )
            )
    return findings
