"""Rule registry: codes, docs, selection, and the run loop.

Each family module exposes ``check(project, active) -> List[Finding]``
and is skipped entirely when none of its codes are selected.  Codes are
stable identifiers (they appear in suppression comments and CI logs);
renaming one is a breaking change.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import Finding, Project

__all__ = ["FAMILIES", "RULE_DOCS", "resolve_selection", "run_rules"]

FAMILIES: Tuple[str, ...] = ("RNG", "LOCK", "KEY", "TEL", "REG", "SUP")

RULE_DOCS: Dict[str, str] = {
    "RNG001": (
        "global RNG state is forbidden (np.random.seed / legacy "
        "np.random draws / random.seed) — use repro.sim.rng streams"
    ),
    "RNG002": (
        "bare stdlib `random` is forbidden — use numpy Generators from "
        "repro.sim.rng"
    ),
    "RNG003": (
        "np.random.default_rng(...) argument must flow from "
        "derive_seed(...) (or use spawn_generator/traffic_rng)"
    ),
    "RNG004": (
        "RNG draw inside a conditional branch of a parity-critical "
        "module (sim/kernels/, traffic/) — consumption-order hazard"
    ),
    "LOCK001": (
        "guarded attribute accessed outside `with <guard>` (and the "
        "enclosing method declares no `# requires:` for it)"
    ),
    "LOCK002": (
        "malformed guard annotation — `# guarded by:` must sit on a "
        "`self.<attr> = ...` line and name `self.<attr>` guards"
    ),
    "KEY001": (
        "wall-clock/entropy call (time.time, datetime.now, os.urandom, "
        "uuid4, id()) in a store-key-path function"
    ),
    "KEY002": (
        "unsorted os.listdir/glob/iterdir in a store-key-path function "
        "— wrap in sorted(...)"
    ),
    "KEY003": (
        "iteration over a bare set in a store-key-path function — "
        "iteration order is not deterministic across processes"
    ),
    "TEL001": (
        "span opened without a `with` block — use `with "
        "telemetry.trace(...)` (or assign and `with` it in the same "
        "function)"
    ),
    "TEL002": (
        "span name outside the telemetry vocabulary "
        "(run|replay|traffic|kernel|stage|fabric|sweep|figure|service|"
        "store, dot-separated lowercase segments)"
    ),
    "TEL003": (
        "telemetry instrument created inside a function — create "
        "counters/gauges/histograms once at module scope"
    ),
    "REG001": (
        "switch-model capability declaration inconsistent with its "
        "kernel module (STREAMING/SEED_BATCHED/COMPOSABLE/EXACT_REPLAY)"
    ),
    "REG002": (
        "vectorized coverage floor regressed — a paper-grid switch lost "
        "its exact kernel or its streamed form"
    ),
    "REG003": (
        "built-in fabric no longer resolves or lost vectorized support"
    ),
    "REG004": "__all__ does not match the module's public definitions",
    "REG005": (
        "switch advertises the COMPILED capability but its kernel module "
        "does not resolve compiled pass implementations"
    ),
    "SUP001": "unused `# repro: lint-ignore[...]` suppression",
}


def resolve_selection(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Set[str]:
    """Expand ``--select`` / ``--ignore`` patterns into concrete codes.

    Patterns are exact codes (``RNG003``) or family prefixes (``RNG``).
    An empty/None *select* means all rules.  Unknown patterns raise.
    """
    all_codes = set(RULE_DOCS)

    def expand(patterns: Sequence[str]) -> Set[str]:
        out: Set[str] = set()
        for pat in patterns:
            pat = pat.strip().upper()
            if not pat:
                continue
            matched = {c for c in all_codes if c == pat or c.startswith(pat)}
            if not matched:
                raise ValueError(
                    "unknown rule or family %r; known families: %s"
                    % (pat, ", ".join(FAMILIES))
                )
            out |= matched
        return out

    active = expand(select) if select else set(all_codes)
    if ignore:
        active -= expand(ignore)
    return active


def run_rules(project: Project, active: Set[str]) -> List[Finding]:
    """Run every family with at least one active code; filter to *active*."""
    from . import keypath, locks, probes, registry, rng

    findings: List[Finding] = []
    for family, module in (
        ("RNG", rng),
        ("LOCK", locks),
        ("KEY", keypath),
        ("TEL", probes),
        ("REG", registry),
    ):
        if any(code.startswith(family) for code in active):
            findings.extend(module.check(project, active))
    return [f for f in findings if f.code in active]
