"""Lock/race-discipline rules (LOCK001, LOCK002).

The service daemon and the telemetry registries share mutable state
between the HTTP thread, the worker-pool collector thread, and
fork-spawned children; pytest cannot reliably provoke the interleavings
that corrupt it.  Instead the invariant is declared in the source and
checked lexically:

``self._attr = ...  # guarded by: self._lock``
    Every later read or write of ``self._attr`` (outside ``__init__``)
    must sit inside a ``with self._lock:`` block.  Multiple guards may
    be listed (any one suffices); appending ``[writes]`` relaxes the
    rule to writes only — the double-checked-read idiom, where a
    lock-free ``dict.get`` is raced intentionally and only mutation
    takes the lock.

``def _helper(self):  # requires: self._lock``
    Declares that callers hold the lock; the method body is then
    treated as guarded.  (The annotation may sit on the ``def`` line or
    the line above it.)
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import Finding, ModuleSource, Project

__all__ = ["GuardSpec", "check"]

_GUARDED_RE = re.compile(
    r"#\s*guarded by:\s*(?P<guards>self\.\w+(?:\s*,\s*self\.\w+)*)"
    r"(?:\s*\[(?P<mode>writes)\])?"
)
_REQUIRES_RE = re.compile(
    r"#\s*requires:\s*(?P<guards>self\.\w+(?:\s*,\s*self\.\w+)*)"
)


@dataclass
class GuardSpec:
    guards: Tuple[str, ...]  # e.g. ("self._lock", "self._cond")
    writes_only: bool
    decl_line: int


def _parse_guards(text: str) -> Sequence[str]:
    return tuple(g.strip() for g in text.split(","))


def check(project: Project, active: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        findings.extend(_check_module(module))
    return findings


def _check_module(module: ModuleSource) -> List[Finding]:
    findings: List[Finding] = []
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            findings.extend(_check_class(module, node))
    # LOCK002 — a guard annotation anywhere outside a recognized
    # declaration site is a spelling mistake waiting to hide a race.
    declared = _declaration_lines(module)
    for line, comment in module.comments.items():
        if _GUARDED_RE.search(comment) and line not in declared:
            findings.append(
                Finding(
                    code="LOCK002",
                    message=(
                        "`# guarded by:` annotation not attached to a "
                        "`self.<attr> = ...` statement inside a class"
                    ),
                    path=module.relpath,
                    line=line,
                )
            )
    return findings


def _declaration_lines(module: ModuleSource) -> Set[int]:
    """Lines holding a ``self.<attr> = ...`` statement in any class."""
    lines: Set[int] = set()
    for cls in (
        n for n in module.tree.body if isinstance(n, ast.ClassDef)
    ):
        for node in ast.walk(cls):
            for target in _self_attr_targets(node):
                lines.add(node.lineno)
    return lines


def _self_attr_targets(node: ast.AST) -> List[str]:
    """Attr names when *node* assigns to ``self.<attr>``."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    out: List[str] = []
    for t in targets:
        if (
            isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
        ):
            out.append(t.attr)
    return out


def _check_class(
    module: ModuleSource, cls: ast.ClassDef
) -> List[Finding]:
    guarded = _collect_guarded(module, cls)
    if not guarded:
        return []
    findings: List[Finding] = []
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name == "__init__":
            continue  # construction happens-before any concurrent access
        held = _required_guards(module, item)
        findings.extend(
            _scan_body(module, item.body, guarded, set(held))
        )
    return findings


def _collect_guarded(
    module: ModuleSource, cls: ast.ClassDef
) -> Dict[str, GuardSpec]:
    guarded: Dict[str, GuardSpec] = {}
    for node in ast.walk(cls):
        attrs = _self_attr_targets(node)
        if not attrs:
            continue
        comment = module.comment_on(node.lineno)
        if comment is None:
            continue
        match = _GUARDED_RE.search(comment)
        if match is None:
            continue
        spec = GuardSpec(
            guards=tuple(_parse_guards(match.group("guards"))),
            writes_only=match.group("mode") == "writes",
            decl_line=node.lineno,
        )
        for attr in attrs:
            guarded[attr] = spec
    return guarded


def _required_guards(
    module: ModuleSource, fn: ast.FunctionDef
) -> Sequence[str]:
    """Guards declared held by a ``# requires:`` annotation on *fn*."""
    for line in (fn.lineno, fn.lineno - 1):
        comment = module.comment_on(line)
        if comment is None:
            continue
        match = _REQUIRES_RE.search(comment)
        if match is not None:
            return _parse_guards(match.group("guards"))
    return ()


def _with_guards(stmt: ast.With) -> Set[str]:
    """Guard names (``self._lock``) entered by a ``with`` statement."""
    out: Set[str] = set()
    for item in stmt.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            out.add("self." + expr.attr)
    return out


def _scan_body(
    module: ModuleSource,
    body: Sequence[ast.stmt],
    guarded: Dict[str, GuardSpec],
    held: Set[str],
) -> List[Finding]:
    """Walk statements tracking which guards are lexically held."""
    findings: List[Finding] = []
    for stmt in body:
        if isinstance(stmt, ast.With):
            inner = held | _with_guards(stmt)
            # The ``with`` header expressions themselves run unguarded.
            for item in stmt.items:
                findings.extend(
                    _scan_expr(module, item.context_expr, guarded, held)
                )
            findings.extend(
                _scan_body(module, stmt.body, guarded, inner)
            )
            continue
        for child_body in _stmt_bodies(stmt):
            findings.extend(
                _scan_body(module, child_body, guarded, held)
            )
        findings.extend(_scan_stmt_exprs(module, stmt, guarded, held))
    return findings


def _stmt_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    bodies: List[List[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        sub = getattr(stmt, attr, None)
        if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
            bodies.append(sub)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


def _scan_stmt_exprs(
    module: ModuleSource,
    stmt: ast.stmt,
    guarded: Dict[str, GuardSpec],
    held: Set[str],
) -> List[Finding]:
    """Check the expressions directly attached to *stmt* (not sub-blocks)."""
    findings: List[Finding] = []
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers"):
            continue
        exprs: List[ast.AST] = []
        if isinstance(value, ast.AST):
            exprs.append(value)
        elif isinstance(value, list):
            exprs.extend(v for v in value if isinstance(v, ast.AST))
        for expr in exprs:
            findings.extend(_scan_expr(module, expr, guarded, held))
    return findings


def _scan_expr(
    module: ModuleSource,
    expr: ast.AST,
    guarded: Dict[str, GuardSpec],
    held: Set[str],
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(expr):
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guarded
        ):
            continue
        spec = guarded[node.attr]
        if node.lineno == spec.decl_line:
            continue  # the annotated declaration itself
        is_write = isinstance(node.ctx, (ast.Store, ast.Del))
        if spec.writes_only and not is_write:
            continue
        if held & set(spec.guards):
            continue
        access = "write to" if is_write else "read of"
        findings.append(
            Finding(
                code="LOCK001",
                message=(
                    "unguarded %s `self.%s` — declared `# guarded by: "
                    "%s`; hold the lock (`with %s:`) or annotate the "
                    "method `# requires: %s`"
                    % (
                        access,
                        node.attr,
                        ", ".join(spec.guards),
                        spec.guards[0],
                        spec.guards[0],
                    )
                ),
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
            )
        )
    return findings
