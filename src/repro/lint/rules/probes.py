"""Telemetry probe-discipline rules (TEL001-TEL003).

PR 7's probes are cheap and correct only when used idiomatically: spans
are context-managed (an unclosed span corrupts the nesting the
``telemetry check`` gate validates), span names come from the fixed
vocabulary (``summarize``/``diff`` group by prefix), and instruments
are created once at module scope (creation takes the registry lock —
per-call creation would put a lock acquisition on the hot path the
~80 ns budget explicitly excludes).
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set

from ..core import Finding, ModuleSource, Project

__all__ = ["SPAN_NAME_RE", "check"]

#: The span-name vocabulary established in PR 7: a known prefix, then
#: dot-separated lowercase segments.
SPAN_NAME_RE = re.compile(
    r"^(run|replay|traffic|kernel|stage|fabric|sweep|figure|service|store)"
    r"(\.[a-z0-9_]+)*$"
)

#: The telemetry package implements the probes; its internals are the
#: one place manual span handling is legitimate.  The linter's own
#: modules mention the APIs in prose only.
_EXEMPT_PREFIXES = ("repro.telemetry", "repro.lint")

_INSTRUMENT_FACTORIES = frozenset({"counter", "gauge", "histogram"})


def _is_span_open(call: ast.Call) -> bool:
    """True for ``telemetry.trace(...)`` / ``<...>tracer.span(...)``."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr == "trace":
        base = func.value
        return isinstance(base, ast.Name) and base.id == "telemetry"
    if func.attr == "span":
        base = func.value
        # tracer.span(...), st.tracer.span(...), self._tracer.span(...)
        if isinstance(base, ast.Name):
            return "tracer" in base.id.lower()
        if isinstance(base, ast.Attribute):
            return "tracer" in base.attr.lower()
    return False


def _is_instrument_create(call: ast.Call) -> bool:
    """True for ``telemetry.counter/gauge/histogram(...)`` (and the
    ``metrics.`` / ``registry.`` spellings)."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr not in _INSTRUMENT_FACTORIES:
        return False
    base = func.value
    if isinstance(base, ast.Name):
        return base.id in ("telemetry", "metrics") or "registry" in base.id.lower()
    return False


def check(project: Project, active: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        if module.modname.startswith(_EXEMPT_PREFIXES):
            continue
        findings.extend(_check_module(module))
    return findings


def _check_module(module: ModuleSource) -> List[Finding]:
    findings: List[Finding] = []
    tree = module.tree
    parents = _parent_map(tree)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _is_span_open(node):
            findings.extend(_check_span(module, node, parents))
        if _is_instrument_create(node) and _enclosing_function(
            node, parents
        ) is not None:
            findings.append(
                Finding(
                    code="TEL003",
                    message=(
                        "instrument created inside a function — hoist "
                        "the counter/gauge/histogram to module scope "
                        "(creation locks the registry; lookups are the "
                        "hot path)"
                    ),
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
    return findings


def _parent_map(tree: ast.Module) -> dict:
    parents: dict = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _enclosing_function(node: ast.AST, parents: dict) -> Optional[ast.AST]:
    cur = parents.get(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return cur
        cur = parents.get(cur)
    return None


def _check_span(
    module: ModuleSource, call: ast.Call, parents: dict
) -> List[Finding]:
    findings: List[Finding] = []

    # TEL002 — vocabulary check on literal span names.
    if call.args and isinstance(call.args[0], ast.Constant):
        name = call.args[0].value
        if isinstance(name, str) and not SPAN_NAME_RE.match(name):
            findings.append(
                Finding(
                    code="TEL002",
                    message=(
                        "span name %r is outside the telemetry "
                        "vocabulary (%s)" % (name, SPAN_NAME_RE.pattern)
                    ),
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                )
            )

    # TEL001 — the span must be context-managed.
    parent = parents.get(call)
    if isinstance(parent, ast.withitem):
        return findings
    if isinstance(parent, ast.Assign):
        # Assigned-then-`with`ed in the same function is fine:
        #   span = telemetry.trace(...); ...; with span: ...
        names = [
            t.id for t in parent.targets if isinstance(t, ast.Name)
        ]
        scope = _enclosing_function(call, parents) or module.tree
        for node in ast.walk(scope):
            if isinstance(node, ast.With):
                for item in node.items:
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Name) and ctx.id in names:
                        return findings
    findings.append(
        Finding(
            code="TEL001",
            message=(
                "span opened without a `with` block — an unclosed span "
                "breaks nesting validation; use `with "
                "telemetry.trace(...)`"
            ),
            path=module.relpath,
            line=call.lineno,
            col=call.col_offset,
        )
    )
    return findings
