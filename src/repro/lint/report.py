"""Output formatters for lint findings: text, json, github."""

from __future__ import annotations

import json
from typing import List, Sequence

from .core import Finding, LintResult

__all__ = ["format_findings", "format_result"]


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render *findings* in the requested format.

    ``text``   — one ``path:line:col CODE message`` line per finding.
    ``json``   — a JSON array of finding objects.
    ``github`` — GitHub Actions ``::error`` workflow commands, so CI
                 annotates the offending lines in the diff view.
    """
    if fmt == "json":
        return json.dumps(
            [
                {
                    "code": f.code,
                    "message": f.message,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                }
                for f in findings
            ],
            indent=2,
        )
    if fmt == "github":
        lines: List[str] = []
        for f in findings:
            # Workflow-command values must not contain newlines.
            msg = f.message.replace("\n", " ")
            lines.append(
                "::error file=%s,line=%d,col=%d,title=%s::%s"
                % (f.path, f.line, max(f.col, 1), f.code, msg)
            )
        return "\n".join(lines)
    if fmt == "text":
        return "\n".join(
            "%s:%d:%d %s %s" % (f.path, f.line, f.col, f.code, f.message)
            for f in findings
        )
    raise ValueError("unknown lint format: %r" % (fmt,))


def format_result(result: LintResult, fmt: str = "text") -> str:
    """Render a full :class:`LintResult`, with a trailer in text mode."""
    body = format_findings(result.findings, fmt)
    if fmt != "text":
        return body
    trailer = "%d finding%s in %d module%s (%d suppressed)" % (
        len(result.findings),
        "" if len(result.findings) == 1 else "s",
        result.checked,
        "" if result.checked == 1 else "s",
        result.suppressed,
    )
    return (body + "\n" + trailer) if body else trailer
