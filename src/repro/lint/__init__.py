"""`repro.lint` — the project-invariant static analyzer.

The reproduction's headline guarantees (bit-identical engine parity,
shard-identity == store-identity, ~80 ns disabled telemetry probes) rest
on coding conventions that ordinary tests cannot pin: RNG construction
must flow through the named-stream helpers of :mod:`repro.sim.rng`,
service shared state must only be touched under its lock, store-key code
must never consult wall clocks or iteration-order-dependent APIs, spans
must be context-managed and named from the PR 7 vocabulary, and the
switch registry must stay coherent with the kernel modules.  This
package checks all five families statically (AST-based, plus an
import-based registry cross-check) and backs the ``repro lint`` CLI
subcommand and the CI ``lint`` gate.

Rule families (each check has a numbered code; a family prefix selects
or suppresses the whole family):

``RNG``
    RNG discipline — no global seeding, no bare stdlib ``random``, every
    ``np.random.default_rng`` argument derived via ``derive_seed`` /
    ``spawn_generator``, no conditional draws in parity-critical modules.
``LOCK``
    Lock/race discipline — attributes annotated ``# guarded by:
    self._lock`` are only accessed inside ``with self._lock`` blocks (or
    methods annotated ``# requires: self._lock``).
``KEY``
    Key-path determinism — functions reachable from the store-key roots
    (``resolve_run_params``, ``cache_key``/``canonical_params``,
    ``expand_shards``) never call wall-clock, entropy, ``id()``, or
    unsorted directory/set-iteration APIs.
``TEL``
    Telemetry probe discipline — spans are context-managed, span names
    match the vocabulary regex, instruments are module-scope.
``REG``
    Registry consistency — capability declarations match the kernel
    modules, the vectorized/streaming coverage floor holds, built-in
    fabrics resolve, and every ``__all__`` matches the module's public
    definitions.

Violations are suppressed line-by-line with ``# repro:
lint-ignore[CODE]`` (family prefixes allowed, comma-separated lists
allowed, on the offending line or the line above); suppressions that
suppress nothing are themselves reported (``SUP001``).
"""

from __future__ import annotations

from .core import (
    Finding,
    LintResult,
    ModuleSource,
    Project,
    lint_paths,
    lint_project,
)
from .report import format_findings
from .rules import FAMILIES, RULE_DOCS, resolve_selection

__all__ = [
    "FAMILIES",
    "Finding",
    "LintResult",
    "ModuleSource",
    "Project",
    "RULE_DOCS",
    "format_findings",
    "lint_paths",
    "lint_project",
    "resolve_selection",
]
