"""Traffic generation: arrival process x destination distribution -> packets.

A :class:`TrafficGenerator` combines an arrival process (when packets show
up at each input) with a traffic matrix (where each packet is headed) and
produces, slot by slot, fully formed :class:`~repro.switching.packet.Packet`
objects carrying per-VOQ sequence numbers (for reordering detection) and
optional application-flow identifiers (for the TCP-hashing experiments).

The implementation pre-draws destinations in vectorized chunks so that the
per-slot Python work is a dictionary lookup plus object construction.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..switching.packet import Packet
from .arrivals import ArrivalProcess, BernoulliArrivals
from .matrices import validate_matrix

__all__ = [
    "TrafficGenerator",
    "FlowModel",
    "DestinationSampler",
    "MatrixDestinations",
    "DriftingDestinations",
    "SteppedPermutations",
    "bernoulli_traffic",
    "destination_distributions",
    "draw_destinations",
]


def destination_distributions(matrix):
    """Validate a rate matrix; return ``(matrix, row_sums, dest_dists)``.

    ``dest_dists[i]`` is input ``i``'s destination distribution (its
    matrix row normalized by the row sum), or ``None`` for an idle input.
    Shared by :class:`TrafficGenerator` and the batch generator in
    :mod:`repro.traffic.batch` — the two must stay in lock-step for
    seeded object/vectorized engine parity to hold.
    """
    matrix = validate_matrix(matrix)
    row_sums = matrix.sum(axis=1)
    if np.any(row_sums > 1.0 + 1e-9):
        raise ValueError(
            "matrix row sums exceed 1 packet/slot; not realizable by a "
            "slotted input line"
        )
    dists: List[Optional[np.ndarray]] = []
    for i in range(matrix.shape[0]):
        total = row_sums[i]
        dists.append(matrix[i] / total if total > 0 else None)
    return matrix, row_sums, dists


def _row_cdfs(
    dest_dists: List[Optional[np.ndarray]],
) -> List[Optional[np.ndarray]]:
    """Normalized CDF right-edges per destination distribution.

    Exactly the cumulative table ``np.random.Generator.choice`` builds
    internally for a weighted draw — precomputing it once per generator
    removes choice's per-call validation and cumsum from the hot path
    while consuming the *same* uniforms and returning the *same* values
    (pinned by tests).
    """
    cdfs: List[Optional[np.ndarray]] = []
    for dist in dest_dists:
        if dist is None:
            cdfs.append(None)
        else:
            cdf = dist.cumsum()
            cdf /= cdf[-1]
            cdfs.append(cdf)
    return cdfs


def _draw_from_cdfs(
    rng: np.random.Generator,
    inputs: np.ndarray,
    cdfs: List[Optional[np.ndarray]],
    n: int,
) -> np.ndarray:
    """Destination draws against precomputed CDFs (see :func:`_row_cdfs`).

    One vectorized draw per input present, inputs ascending — the
    canonical consumption order.  Events are grouped per input with one
    radix sort instead of one boolean-mask pass per input.
    """
    dests = np.empty(len(inputs), dtype=np.int64)
    if len(inputs) == 0:
        return dests
    order = np.argsort(
        inputs.astype(np.uint16) if n <= np.iinfo(np.uint16).max else inputs,
        kind="stable",
    )
    counts = np.bincount(inputs, minlength=n)
    sorted_dests = np.empty(len(inputs), dtype=np.int64)
    at = 0
    for inp in np.flatnonzero(counts):
        count = int(counts[inp])
        cdf = cdfs[int(inp)]
        if cdf is None:
            # repro: lint-ignore[RNG004] -- branch is per-input configuration (uniform row), not data-dependent; parity-pinned
            sorted_dests[at : at + count] = rng.integers(0, n, size=count)
        else:
            # Generator.choice(n, size, p) ≡ inverse-CDF over one
            # uniform block: identical stream consumption and values.
            sorted_dests[at : at + count] = cdf.searchsorted(
                # repro: lint-ignore[RNG004] -- same configuration-determined branch; consumption parity asserted in tests
                rng.random(count), side="right"
            )
        at += count
    dests[order] = sorted_dests
    return dests


def draw_destinations(
    rng: np.random.Generator,
    inputs: np.ndarray,
    dest_dists: List[Optional[np.ndarray]],
    n: int,
) -> np.ndarray:
    """Destination ports for one chunk of arrival events.

    This is the *canonical RNG consumption order* both traffic generators
    follow: one vectorized draw per input present in the chunk, inputs
    ascending.  An input with no configured rate can only see arrivals
    from a custom arrival process; those are spread uniformly so they are
    not silently dropped.  Draws are bit-identical to the historical
    ``rng.choice(n, size=count, p=dist)`` calls (same uniforms, same
    values) — the per-row CDFs are just precomputed.
    """
    return _draw_from_cdfs(rng, inputs, _row_cdfs(dest_dists), n)


class DestinationSampler:
    """Strategy for drawing each arrival's destination port.

    Both traffic generators (object and batch) call :meth:`draw` once per
    arrival chunk with the chunk's ``(slots, inputs)`` arrays.  A sampler
    defines its own RNG-consumption contract; because the *same* sampler
    instance type is used by both generators with the same seed, seeded
    object/vectorized engine parity holds for any sampler, stationary or
    not.
    """

    def draw(
        self,
        rng: np.random.Generator,
        slots: np.ndarray,
        inputs: np.ndarray,
        n: int,
    ) -> np.ndarray:
        """Destination port for each arrival event of one chunk."""
        raise NotImplementedError


class MatrixDestinations(DestinationSampler):
    """Stationary destinations from a fixed rate matrix (the default).

    Delegates to :func:`draw_destinations`, i.e. the exact historical RNG
    consumption: one vectorized draw per input present in the chunk,
    inputs ascending.  Seeded runs predating the sampler abstraction are
    bit-identical.
    """

    def __init__(self, dest_dists: List[Optional[np.ndarray]]) -> None:
        self._dest_dists = dest_dists
        self._cdfs = _row_cdfs(dest_dists)

    def draw(
        self,
        rng: np.random.Generator,
        slots: np.ndarray,
        inputs: np.ndarray,
        n: int,
    ) -> np.ndarray:
        return _draw_from_cdfs(rng, inputs, self._cdfs, n)


class DriftingDestinations(DestinationSampler):
    """Nonstationary destinations: row distributions drift linearly in time.

    At slot ``t`` an arrival at input ``i`` draws its destination from the
    normalized row ``(1 - a) * start[i] + a * end[i]`` with
    ``a = min(t / horizon, 1)`` — the workload's traffic matrix morphs
    from ``start_matrix`` to ``end_matrix`` over ``horizon`` slots.  This
    is the stress case for any scheme (like Sprinklers' oracle placement)
    provisioned from a stationary rate estimate.

    RNG contract: one uniform per arrival, drawn per input present in the
    chunk, inputs ascending (mirroring :func:`draw_destinations`), then
    inverted through the slot-interpolated CDF.
    """

    def __init__(self, start_matrix, end_matrix, horizon: int) -> None:
        start_matrix = validate_matrix(start_matrix)
        end_matrix = validate_matrix(end_matrix)
        if start_matrix.shape != end_matrix.shape:
            raise ValueError("start and end matrices must have equal shapes")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = int(horizon)
        self._cdf0 = self._row_cdfs(start_matrix)
        self._cdf1 = self._row_cdfs(end_matrix)

    @staticmethod
    def _row_cdfs(matrix: np.ndarray) -> np.ndarray:
        """Per-row CDF right-edges; an all-zero row falls back to uniform."""
        n = matrix.shape[0]
        rows = matrix.copy()
        sums = rows.sum(axis=1)
        idle = sums == 0
        rows[idle] = 1.0 / n
        sums[idle] = 1.0
        return np.cumsum(rows / sums[:, None], axis=1)

    def draw(
        self,
        rng: np.random.Generator,
        slots: np.ndarray,
        inputs: np.ndarray,
        n: int,
    ) -> np.ndarray:
        dests = np.empty(len(inputs), dtype=np.int64)
        for inp in np.unique(inputs):
            mask = inputs == inp
            count = int(mask.sum())
            u = rng.random(count)
            alpha = np.minimum(slots[mask] / self.horizon, 1.0)
            edges = (1.0 - alpha)[:, None] * self._cdf0[int(inp)][None, :] + (
                alpha[:, None] * self._cdf1[int(inp)][None, :]
            )
            # A destination is the count of interior right-edges below u;
            # excluding the final edge (== 1) keeps the result in [0, n).
            dests[mask] = np.sum(u[:, None] > edges[:, : n - 1], axis=1)
        return dests


class SteppedPermutations(DestinationSampler):
    """Collective-communication destinations: a permutation per phase.

    Ring-style collectives (allreduce, allgather) send every node's
    traffic to exactly one peer at a time, stepping the peer each
    synchronization phase: during phase ``p`` (slot ``// phase_slots``),
    input ``i`` sends to ``(i + 1 + (p mod (n - 1))) mod n`` — each
    phase is a full derangement (never self), and ``n - 1`` consecutive
    phases visit every peer once, so the time-averaged matrix is uniform
    off-diagonal while the *instantaneous* matrix is maximally
    concentrated (one VOQ per input carries everything).  That contrast
    — provisioning sees the average, every moment looks adversarial — is
    the load-balancing stress the fat-tree and AI-workload papers
    evaluate.

    Consumes no RNG (destinations are a deterministic function of slot
    and input), so object/vectorized engine parity is structural.
    """

    def __init__(self, phase_slots: int) -> None:
        if phase_slots <= 0:
            raise ValueError("phase_slots must be positive")
        self.phase_slots = int(phase_slots)

    def draw(
        self,
        rng: np.random.Generator,
        slots: np.ndarray,
        inputs: np.ndarray,
        n: int,
    ) -> np.ndarray:
        if n <= 1:
            return np.zeros(len(inputs), dtype=np.int64)
        phase = slots // self.phase_slots
        shift = 1 + (phase % (n - 1))
        return (inputs + shift) % n


class FlowModel:
    """Synthetic application flows inside each VOQ (for hashing demos).

    TCP hashing routes each *application flow* — not each VOQ — through one
    intermediate port.  This model labels each generated packet with a flow
    id drawn Zipf-style from ``flows_per_voq`` candidate flows, so hashing
    switches have realistic skewed flow sizes to hash on.
    """

    def __init__(
        self,
        flows_per_voq: int,
        zipf_exponent: float,
        rng: np.random.Generator,
    ) -> None:
        if flows_per_voq <= 0:
            raise ValueError("flows_per_voq must be positive")
        if zipf_exponent < 0:
            raise ValueError("zipf_exponent must be nonnegative")
        self.flows_per_voq = flows_per_voq
        weights = np.arange(1, flows_per_voq + 1, dtype=float) ** (-zipf_exponent)
        self._probs = weights / weights.sum()
        self._rng = rng

    def draw_flow(self, input_port: int, output_port: int, n: int) -> int:
        """A globally unique flow id for a packet of VOQ (input, output)."""
        local = int(self._rng.choice(self.flows_per_voq, p=self._probs))
        return (input_port * n + output_port) * self.flows_per_voq + local


class TrafficGenerator:
    """Generates packets for a switch simulation, slot by slot.

    Parameters
    ----------
    matrix:
        ``N x N`` VOQ rate matrix.  Row sums are the per-input Bernoulli
        arrival probabilities; destinations are drawn proportionally to the
        row's entries.
    rng:
        Randomness for destination draws (and arrivals, if the default
        Bernoulli process is built internally).
    arrivals:
        Optional custom arrival process; defaults to Bernoulli with the
        matrix's row sums.
    flow_model:
        Optional application-flow labeling.
    seq_state:
        Optional per-VOQ sequence-number state, shared across generators.
        Pass the same dict to successive generators to keep sequence
        numbers (and hence reordering measurements) continuous across
        workload phases.
    destinations:
        Optional :class:`DestinationSampler`; defaults to stationary
        draws from the matrix rows (:class:`MatrixDestinations`).  The
        scenario subsystem passes :class:`DriftingDestinations` here for
        nonstationary matrices.
    """

    def __init__(
        self,
        matrix,
        rng: np.random.Generator,
        arrivals: Optional[ArrivalProcess] = None,
        flow_model: Optional[FlowModel] = None,
        seq_state: Optional[Dict[Tuple[int, int], int]] = None,
        destinations: Optional[DestinationSampler] = None,
    ) -> None:
        matrix, row_sums, dest_dists = destination_distributions(matrix)
        self.n = matrix.shape[0]
        self.matrix = matrix
        self._rng = rng
        self._dest_dists = dest_dists
        self._destinations = (
            destinations
            if destinations is not None
            else MatrixDestinations(dest_dists)
        )
        if arrivals is None:
            arrivals = BernoulliArrivals(row_sums, rng)
        if arrivals.n != self.n:
            raise ValueError("arrival process size does not match matrix")
        self.arrivals = arrivals
        self.flow_model = flow_model
        self._seq: Dict[Tuple[int, int], int] = (
            seq_state if seq_state is not None else {}
        )
        self.generated = 0

    def _next_seq(self, input_port: int, output_port: int) -> int:
        key = (input_port, output_port)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return seq

    def slots(
        self, num_slots: int, chunk_slots: int = 4096
    ) -> Iterator[Tuple[int, List[Packet]]]:
        """Yield ``(slot, packets_arriving_in_slot)`` for each slot in order.

        Slots with no arrivals are yielded with an empty list so callers can
        drive switches that must step every slot.
        """
        slot_cursor = 0
        for slots, inputs in self.arrivals.events(num_slots, chunk_slots):
            packets_by_slot: Dict[int, List[Packet]] = {}
            # Draw destinations for the whole chunk (one vectorized call
            # per input present), then build packets input by input.
            all_dests = self._destinations.draw(
                self._rng, slots, inputs, self.n
            )
            for inp in np.unique(inputs):
                mask = inputs == inp
                for slot, dest in zip(slots[mask], all_dests[mask]):
                    pkt = Packet(
                        input_port=int(inp),
                        output_port=int(dest),
                        arrival_slot=int(slot),
                        seq=self._next_seq(int(inp), int(dest)),
                    )
                    if self.flow_model is not None:
                        pkt.flow_id = self.flow_model.draw_flow(
                            pkt.input_port, pkt.output_port, self.n
                        )
                    packets_by_slot.setdefault(int(slot), []).append(pkt)
                    self.generated += 1
            chunk_end = min(
                slot_cursor + chunk_slots,
                num_slots,
            )
            # numpy nonzero order is row-major -> already sorted by slot,
            # but arrivals in the same slot across inputs must keep a
            # deterministic order: sort each slot's list by input port.
            for slot in range(slot_cursor, chunk_end):
                packets = packets_by_slot.get(slot, [])
                if len(packets) > 1:
                    packets.sort(key=lambda p: p.input_port)
                yield slot, packets
            slot_cursor = chunk_end

    def voq_rate(self, input_port: int, output_port: int) -> float:
        """The configured arrival rate of VOQ (input, output)."""
        return float(self.matrix[input_port][output_port])


def bernoulli_traffic(
    matrix, seed: int = 0, flow_model: Optional[FlowModel] = None
) -> TrafficGenerator:
    """Convenience constructor: Bernoulli traffic from a matrix and a seed."""
    # repro: lint-ignore[RNG003] -- public convenience constructor: raw seed is its API
    rng = np.random.default_rng(seed)
    return TrafficGenerator(matrix, rng, flow_model=flow_model)
