"""Packet-trace recording and replay (CSV on disk).

Records the exact arrival stream of any generator run and replays it
byte-identically later — the tool for regression-pinning a workload, for
sharing workloads between experiments, and for replaying externally
captured traces through the switches.

Format: a plain CSV with header ``slot,input,output,flow`` (flow empty for
unlabelled packets), sorted by slot. Human-diffable on purpose.  Paths
ending in ``.gz`` are compressed transparently (write and read), so
recorded scenario traces can ship in repos and CI artifacts without
bloat — ``zcat`` still yields the same diffable CSV.
"""

from __future__ import annotations

import csv
import gzip
import warnings
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from ..switching.packet import Packet
from .arrivals import TraceArrivals
from .generator import TrafficGenerator

__all__ = [
    "record_trace",
    "write_trace",
    "read_trace",
    "replay_generator",
    "trace_to_arrival_process",
]

TraceEvent = Tuple[int, int, int, Optional[int]]  # slot, input, output, flow


def record_trace(
    generator: TrafficGenerator, num_slots: int
) -> List[TraceEvent]:
    """Run a generator and capture its arrival stream as trace events."""
    events: List[TraceEvent] = []
    for slot, packets in generator.slots(num_slots):
        for p in packets:
            events.append((slot, p.input_port, p.output_port, p.flow_id))
    return events


def _open_trace(path: Union[str, Path], mode: str):
    """Text handle for a trace file; ``.gz`` suffixes gzip transparently."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", newline="")
    return open(path, mode, newline="")


def write_trace(path: Union[str, Path], events: Iterable[TraceEvent]) -> int:
    """Write trace events as CSV (gzip'd for ``*.gz`` paths); returns the
    number of events written."""
    count = 0
    with _open_trace(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(["slot", "input", "output", "flow"])
        for slot, inp, out, flow in events:
            writer.writerow([slot, inp, out, "" if flow is None else flow])
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Read trace events back from CSV, plain or gzip'd (validating the
    header)."""
    events: List[TraceEvent] = []
    with _open_trace(path, "r") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["slot", "input", "output", "flow"]:
            raise ValueError(f"not a packet trace (header {header!r})")
        for row in reader:
            slot, inp, out, flow = row
            events.append(
                (int(slot), int(inp), int(out), int(flow) if flow else None)
            )
    return events


class _ReplaySource:
    """Slot-stream adapter feeding recorded events to a switch."""

    def __init__(self, n: int, events: List[TraceEvent]) -> None:
        self.n = n
        self._events = events
        self.generated = 0

    def slots(self, num_slots: int):
        beyond = sum(1 for event in self._events if event[0] >= num_slots)
        if beyond:
            warnings.warn(
                f"replaying {num_slots} slots truncates the trace: "
                f"{beyond} of {len(self._events)} events arrive at slot "
                f">= {num_slots} and will not be injected (throughput "
                f"metrics would silently undercount `generated`)",
                UserWarning,
                stacklevel=2,
            )
        cursor = 0
        seqs = {}
        for slot in range(num_slots):
            packets: List[Packet] = []
            while cursor < len(self._events) and self._events[cursor][0] == slot:
                _, inp, out, flow = self._events[cursor]
                seq = seqs.get((inp, out), 0)
                seqs[(inp, out)] = seq + 1
                packets.append(
                    Packet(
                        input_port=inp,
                        output_port=out,
                        arrival_slot=slot,
                        seq=seq,
                        flow_id=flow,
                    )
                )
                self.generated += 1
                cursor += 1
            yield slot, packets


def replay_generator(n: int, events: List[TraceEvent]) -> _ReplaySource:
    """A generator-compatible source that replays recorded events.

    The result exposes ``n``, ``generated`` and ``slots()`` — the subset
    of the :class:`TrafficGenerator` interface the simulation engine and
    switches consume — and re-derives per-VOQ sequence numbers in event
    order, so reordering measurement works identically on replay.
    """
    last_slot = -1
    for slot, inp, out, _ in events:
        if slot < last_slot:
            raise ValueError("trace events must be sorted by slot")
        last_slot = slot
        if not 0 <= inp < n or not 0 <= out < n:
            raise ValueError(f"event port out of range for n={n}")
    return _ReplaySource(n, list(events))


def trace_to_arrival_process(n: int, events: List[TraceEvent]) -> TraceArrivals:
    """Project a trace onto its (slot, input) arrival skeleton.

    Destinations are dropped; use :func:`replay_generator` to preserve
    them.  Useful for driving a :class:`TrafficGenerator` with recorded
    arrival *timing* but fresh destination draws.
    """
    return TraceArrivals(n, [(slot, inp) for slot, inp, _, _ in events])
