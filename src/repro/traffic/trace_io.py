"""Packet-trace recording and replay (CSV on disk).

Records the exact arrival stream of any generator run and replays it
byte-identically later — the tool for regression-pinning a workload, for
sharing workloads between experiments, and for replaying externally
captured traces through the switches.

Format: a plain CSV with header ``slot,input,output,flow`` (flow empty for
unlabelled packets), sorted by slot. Human-diffable on purpose.  Paths
ending in ``.gz`` are compressed transparently (write and read), so
recorded scenario traces can ship in repos and CI artifacts without
bloat — ``zcat`` still yields the same diffable CSV.
"""

from __future__ import annotations

import csv
import gzip
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from .. import telemetry
from ..switching.packet import Packet
from .arrivals import TraceArrivals
from .batch import ArrivalBatch, stable_voq_argsort
from .generator import TrafficGenerator

logger = telemetry.get_logger(__name__)

__all__ = [
    "TraceBatchSource",
    "record_trace",
    "write_trace",
    "read_trace",
    "replay_generator",
    "trace_batch_source",
    "trace_matrix",
    "trace_to_arrival_process",
]

TraceEvent = Tuple[int, int, int, Optional[int]]  # slot, input, output, flow


def _report_truncation(beyond: int, total: int, num_slots: int) -> None:
    """A truncated replay drops events — surface it through the telemetry
    logger (WARNING: the run is still valid, just shorter than the trace)
    and count the dropped events so sweeps can audit it after the fact."""
    telemetry.count("trace.truncated_events", beyond)
    logger.warning(
        "replaying %d slots truncates the trace: %d of %d events arrive "
        "at slot >= %d and will not be injected (throughput metrics "
        "would silently undercount `generated`)",
        num_slots, beyond, total, num_slots,
    )


def record_trace(
    generator: TrafficGenerator, num_slots: int
) -> List[TraceEvent]:
    """Run a generator and capture its arrival stream as trace events."""
    events: List[TraceEvent] = []
    for slot, packets in generator.slots(num_slots):
        for p in packets:
            events.append((slot, p.input_port, p.output_port, p.flow_id))
    return events


def _open_trace(path: Union[str, Path], mode: str):
    """Text handle for a trace file; ``.gz`` suffixes gzip transparently."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", newline="")
    return open(path, mode, newline="")


def write_trace(path: Union[str, Path], events: Iterable[TraceEvent]) -> int:
    """Write trace events as CSV (gzip'd for ``*.gz`` paths); returns the
    number of events written."""
    count = 0
    with _open_trace(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(["slot", "input", "output", "flow"])
        for slot, inp, out, flow in events:
            writer.writerow([slot, inp, out, "" if flow is None else flow])
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Read trace events back from CSV, plain or gzip'd (validating the
    header)."""
    events: List[TraceEvent] = []
    with _open_trace(path, "r") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["slot", "input", "output", "flow"]:
            raise ValueError(f"not a packet trace (header {header!r})")
        for row in reader:
            slot, inp, out, flow = row
            events.append(
                (int(slot), int(inp), int(out), int(flow) if flow else None)
            )
    return events


class _ReplaySource:
    """Slot-stream adapter feeding recorded events to a switch."""

    def __init__(self, n: int, events: List[TraceEvent]) -> None:
        self.n = n
        self._events = events
        self.generated = 0

    def slots(self, num_slots: int):
        beyond = sum(1 for event in self._events if event[0] >= num_slots)
        if beyond:
            _report_truncation(beyond, len(self._events), num_slots)
        cursor = 0
        seqs = {}
        for slot in range(num_slots):
            events: List[TraceEvent] = []
            while cursor < len(self._events) and self._events[cursor][0] == slot:
                events.append(self._events[cursor])
                cursor += 1
            # Within a slot, deliver in input-port order (stable for
            # ties) — the order TrafficGenerator pins, and the same
            # normalization TraceBatchSource applies, so object and
            # vectorized trace replays see one identical stream.
            events.sort(key=lambda event: event[1])
            packets: List[Packet] = []
            for _, inp, out, flow in events:
                seq = seqs.get((inp, out), 0)
                seqs[(inp, out)] = seq + 1
                packets.append(
                    Packet(
                        input_port=inp,
                        output_port=out,
                        arrival_slot=slot,
                        seq=seq,
                        flow_id=flow,
                    )
                )
                self.generated += 1
            yield slot, packets


def replay_generator(n: int, events: List[TraceEvent]) -> _ReplaySource:
    """A generator-compatible source that replays recorded events.

    The result exposes ``n``, ``generated`` and ``slots()`` — the subset
    of the :class:`TrafficGenerator` interface the simulation engine and
    switches consume — and re-derives per-VOQ sequence numbers in event
    order, so reordering measurement works identically on replay.
    """
    last_slot = -1
    for slot, inp, out, _ in events:
        if slot < last_slot:
            raise ValueError("trace events must be sorted by slot")
        last_slot = slot
        if not 0 <= inp < n or not 0 <= out < n:
            raise ValueError(f"event port out of range for n={n}")
    return _ReplaySource(n, list(events))


def trace_matrix(n: int, events: List[TraceEvent]) -> np.ndarray:
    """Empirical VOQ count matrix of a trace — the provisioning shape a
    trace scenario rescales to its target load."""
    if not events:
        raise ValueError("trace has no events; cannot derive a matrix")
    counts = np.zeros((n, n))
    inputs = np.asarray([event[1] for event in events], dtype=np.int64)
    outputs = np.asarray([event[2] for event in events], dtype=np.int64)
    if inputs.min() < 0 or inputs.max() >= n or outputs.min() < 0 or (
        outputs.max() >= n
    ):
        raise ValueError(f"event port out of range for n={n}")
    np.add.at(counts, (inputs, outputs), 1.0)
    return counts


class TraceBatchSource:
    """Trace replay as a batch packet source for the vectorized engine.

    Duck-types the :class:`~repro.traffic.batch.BatchTrafficGenerator`
    surface the engines consume — ``n``, ``generated``, ``draw`` and
    ``draw_chunks`` — replaying the recorded events instead of drawing
    randomness.  Events are normalized to ``(slot, input)`` order
    (stable for equal inputs) with per-VOQ sequence numbers assigned in
    that delivery order: exactly what :func:`replay_generator` feeds the
    object engine, so seeded trace-replay parity between engines is
    structural, not statistical.

    One instance replays one run: ``draw`` and ``draw_chunks`` both
    start at slot 0 (sequence counters reset per call).
    """

    def __init__(self, n: int, events: List[TraceEvent]) -> None:
        last_slot = -1
        for slot, inp, out, _ in events:
            if slot < last_slot:
                raise ValueError("trace events must be sorted by slot")
            last_slot = slot
            if not 0 <= inp < n or not 0 <= out < n:
                raise ValueError(f"event port out of range for n={n}")
        self.n = int(n)
        self.generated = 0
        slots = np.asarray([e[0] for e in events], dtype=np.int64)
        inputs = np.asarray([e[1] for e in events], dtype=np.int64)
        outputs = np.asarray([e[2] for e in events], dtype=np.int64)
        order = np.lexsort((inputs, slots))
        self._slots = slots[order]
        self._inputs = inputs[order]
        self._outputs = outputs[order]
        self._total = len(events)

    def _warn_truncation(self, num_slots: int) -> None:
        beyond = int(np.sum(self._slots >= num_slots))
        if beyond:
            _report_truncation(beyond, self._total, num_slots)

    def _assign_seqs(
        self, voqs: np.ndarray, seq_next: np.ndarray
    ) -> np.ndarray:
        """Per-VOQ consecutive sequence numbers in delivery order
        (mirrors :meth:`BatchTrafficGenerator._assign_seqs`)."""
        seqs = np.empty(len(voqs), dtype=np.int64)
        if len(voqs) == 0:
            return seqs
        order = stable_voq_argsort(voqs, self.n)
        sorted_voqs = voqs[order]
        counts = np.bincount(voqs, minlength=self.n * self.n)
        group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        positions = np.arange(len(voqs)) - group_starts[sorted_voqs]
        seqs[order] = positions + seq_next[sorted_voqs]
        seq_next += counts
        return seqs

    def _window(
        self,
        start_slot: int,
        end_slot: int,
        seq_next: np.ndarray,
    ) -> ArrivalBatch:
        lo, hi = np.searchsorted(self._slots, [start_slot, end_slot])
        slots = self._slots[lo:hi]
        inputs = self._inputs[lo:hi]
        outputs = self._outputs[lo:hi]
        seqs = self._assign_seqs(inputs * self.n + outputs, seq_next)
        self.generated += len(slots)
        return ArrivalBatch(
            n=self.n,
            num_slots=end_slot - start_slot,
            slots=slots,
            inputs=inputs,
            outputs=outputs,
            seqs=seqs,
            start_slot=start_slot,
        )

    def draw(self, num_slots: int) -> ArrivalBatch:
        """The whole replay (events below ``num_slots``) as one batch."""
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        self._warn_truncation(num_slots)
        seq_next = np.zeros(self.n * self.n, dtype=np.int64)
        return self._window(0, num_slots, seq_next)

    def draw_chunks(
        self, num_slots: int, window_slots: int
    ) -> Iterator[ArrivalBatch]:
        """The replay as consecutive ``window_slots``-slot windows."""
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        if window_slots <= 0:
            raise ValueError("window_slots must be positive")
        self._warn_truncation(num_slots)
        seq_next = np.zeros(self.n * self.n, dtype=np.int64)
        for start in range(0, num_slots, window_slots):
            end = min(start + window_slots, num_slots)
            yield self._window(start, end, seq_next)


def trace_batch_source(n: int, events: List[TraceEvent]) -> TraceBatchSource:
    """Batch-engine counterpart of :func:`replay_generator`."""
    return TraceBatchSource(n, events)


def trace_to_arrival_process(n: int, events: List[TraceEvent]) -> TraceArrivals:
    """Project a trace onto its (slot, input) arrival skeleton.

    Destinations are dropped; use :func:`replay_generator` to preserve
    them.  Useful for driving a :class:`TrafficGenerator` with recorded
    arrival *timing* but fresh destination draws.
    """
    return TraceArrivals(n, [(slot, inp) for slot, inp, _, _ in events])
