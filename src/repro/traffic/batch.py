"""Batched (structure-of-arrays) traffic generation for the fast engine.

:class:`~repro.traffic.generator.TrafficGenerator` materializes one
:class:`~repro.switching.packet.Packet` object per arrival — the right
interface for the object-model switches, but pure overhead for the
vectorized engine, which wants the whole workload as flat NumPy arrays.

:class:`BatchTrafficGenerator` produces exactly the same arrival stream as
``TrafficGenerator`` for the same random generator and matrix — it draws
from the RNG in the identical order (arrival-process chunks of
``chunk_slots`` slots, then one destination draw per input present in the
chunk, inputs in ascending order) — but returns an :class:`ArrivalBatch`
of arrays instead of objects.  That equivalence is what makes seeded
object-vs-vectorized engine parity *exact*, and it is pinned by tests.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

import numpy as np

from .arrivals import ArrivalProcess, BernoulliArrivals
from .generator import (
    DestinationSampler,
    MatrixDestinations,
    destination_distributions,
)

__all__ = [
    "ArrivalBatch",
    "BatchTrafficGenerator",
    "bernoulli_batch",
    "stable_voq_argsort",
]


def stable_voq_argsort(voqs: np.ndarray, n: int) -> np.ndarray:
    """Stable argsort of flat VOQ ids, radix-accelerated when they fit.

    NumPy's stable sort is an O(P) radix sort for 16-bit integers but an
    O(P log P) mergesort for wider ones; VOQ ids are below ``n^2``, so for
    every realistic switch size the cheap path applies.  Grouping packets
    by VOQ is the backbone of both sequence numbering and the fast
    engine's stripe/frame assembly, so this is worth the cast.
    """
    if n * n <= np.iinfo(np.uint16).max:
        return np.argsort(voqs.astype(np.uint16), kind="stable")
    return np.argsort(voqs, kind="stable")


class ArrivalBatch(NamedTuple):
    """One batch of arrivals in structure-of-arrays form.

    All arrays have one entry per packet and are sorted by
    ``(slot, input)`` — the exact order in which ``TrafficGenerator``
    hands packets to a switch (its per-slot lists are sorted by input
    port).
    """

    #: Switch size.
    n: int
    #: Number of slots the batch covers (``[0, num_slots)`` of this draw).
    num_slots: int
    #: Arrival slot of each packet.
    slots: np.ndarray
    #: Input port of each packet.
    inputs: np.ndarray
    #: Output port (destination) of each packet.
    outputs: np.ndarray
    #: Per-VOQ sequence number of each packet (assigned at arrival).
    seqs: np.ndarray

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def voqs(self) -> np.ndarray:
        """Flat VOQ id ``input * n + output`` of each packet."""
        return self.inputs * self.n + self.outputs


class BatchTrafficGenerator:
    """Vectorized twin of :class:`~repro.traffic.generator.TrafficGenerator`.

    Parameters mirror ``TrafficGenerator`` (flow models are not supported:
    the fast engine covers the non-hashing switches, which never read flow
    ids).  Successive :meth:`draw` calls continue per-VOQ sequence numbers,
    like successive ``slots()`` sweeps of a shared-``seq_state`` generator.
    """

    def __init__(
        self,
        matrix,
        rng: np.random.Generator,
        arrivals: Optional[ArrivalProcess] = None,
        chunk_slots: int = 4096,
        destinations: Optional[DestinationSampler] = None,
    ) -> None:
        matrix, row_sums, dest_dists = destination_distributions(matrix)
        self.n = matrix.shape[0]
        self.matrix = matrix
        self._rng = rng
        self._dest_dists = dest_dists
        self._destinations = (
            destinations
            if destinations is not None
            else MatrixDestinations(dest_dists)
        )
        if arrivals is None:
            arrivals = BernoulliArrivals(row_sums, rng)
        if arrivals.n != self.n:
            raise ValueError("arrival process size does not match matrix")
        self.arrivals = arrivals
        self.chunk_slots = chunk_slots
        self._seq_next = np.zeros(self.n * self.n, dtype=np.int64)
        self.generated = 0

    def draw(self, num_slots: int) -> ArrivalBatch:
        """Draw ``num_slots`` slots of arrivals as one batch of arrays."""
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        n = self.n
        slot_parts: List[np.ndarray] = []
        input_parts: List[np.ndarray] = []
        output_parts: List[np.ndarray] = []
        for slots, inputs in self.arrivals.events(num_slots, self.chunk_slots):
            # `np.nonzero` emits chunk events in row-major (slot, input)
            # order already; destinations come from the same shared sampler
            # (hence the same RNG consumption) as TrafficGenerator.slots().
            dests = self._destinations.draw(self._rng, slots, inputs, n)
            slot_parts.append(np.asarray(slots, dtype=np.int64))
            input_parts.append(np.asarray(inputs, dtype=np.int64))
            output_parts.append(dests)

        slots_all = (
            np.concatenate(slot_parts) if slot_parts else np.empty(0, np.int64)
        )
        inputs_all = (
            np.concatenate(input_parts) if input_parts else np.empty(0, np.int64)
        )
        outputs_all = (
            np.concatenate(output_parts)
            if output_parts
            else np.empty(0, np.int64)
        )
        seqs = self._assign_seqs(inputs_all * n + outputs_all)
        self.generated += len(slots_all)
        return ArrivalBatch(
            n=n,
            num_slots=num_slots,
            slots=slots_all,
            inputs=inputs_all,
            outputs=outputs_all,
            seqs=seqs,
        )

    def _assign_seqs(self, voqs: np.ndarray) -> np.ndarray:
        """Per-VOQ consecutive sequence numbers, in generation order."""
        seqs = np.empty(len(voqs), dtype=np.int64)
        if len(voqs) == 0:
            return seqs
        order = stable_voq_argsort(voqs, self.n)
        sorted_voqs = voqs[order]
        counts = np.bincount(voqs, minlength=self.n * self.n)
        group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        # Rank within each voq group: position minus the group's start.
        positions = np.arange(len(voqs)) - group_starts[sorted_voqs]
        seqs[order] = positions + self._seq_next[sorted_voqs]
        self._seq_next += counts
        return seqs

    def voq_rate(self, input_port: int, output_port: int) -> float:
        """The configured arrival rate of VOQ (input, output)."""
        return float(self.matrix[input_port][output_port])


def bernoulli_batch(matrix, seed: int = 0) -> BatchTrafficGenerator:
    """Convenience constructor: Bernoulli batch traffic from matrix + seed."""
    return BatchTrafficGenerator(matrix, np.random.default_rng(seed))
