"""Batched (structure-of-arrays) traffic generation for the fast engine.

:class:`~repro.traffic.generator.TrafficGenerator` materializes one
:class:`~repro.switching.packet.Packet` object per arrival — the right
interface for the object-model switches, but pure overhead for the
vectorized engine, which wants the whole workload as flat NumPy arrays.

:class:`BatchTrafficGenerator` produces exactly the same arrival stream as
``TrafficGenerator`` for the same random generator and matrix — it draws
from the RNG in the identical order (arrival-process chunks of
``chunk_slots`` slots, then one destination draw per input present in the
chunk, inputs in ascending order) — but returns an :class:`ArrivalBatch`
of arrays instead of objects.  That equivalence is what makes seeded
object-vs-vectorized engine parity *exact*, and it is pinned by tests.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

import numpy as np

from .arrivals import ArrivalProcess, BernoulliArrivals
from .generator import (
    DestinationSampler,
    MatrixDestinations,
    destination_distributions,
)

__all__ = [
    "ArrivalBatch",
    "BatchTrafficGenerator",
    "bernoulli_batch",
    "stable_voq_argsort",
]


def stable_voq_argsort(voqs: np.ndarray, n: int) -> np.ndarray:
    """Stable argsort of flat VOQ ids, radix-accelerated when they fit.

    NumPy's stable sort is an O(P) radix sort for 16-bit integers but an
    O(P log P) mergesort for wider ones; VOQ ids are below ``n^2``, so for
    every realistic switch size the cheap path applies.  Grouping packets
    by VOQ is the backbone of both sequence numbering and the fast
    engine's stripe/frame assembly, so this is worth the cast.
    """
    if n * n <= np.iinfo(np.uint16).max:
        return np.argsort(voqs.astype(np.uint16), kind="stable")
    return np.argsort(voqs, kind="stable")


class ArrivalBatch(NamedTuple):
    """One batch of arrivals in structure-of-arrays form.

    All arrays have one entry per packet and are sorted by
    ``(slot, input)`` — the exact order in which ``TrafficGenerator``
    hands packets to a switch (its per-slot lists are sorted by input
    port).

    A batch covers the slot range ``[start_slot, start_slot +
    num_slots)``.  :meth:`BatchTrafficGenerator.draw` always emits a
    whole run as one batch starting at slot 0;
    :meth:`BatchTrafficGenerator.draw_chunks` emits consecutive windows
    of one run, each tagged with its absolute ``start_slot`` (packet
    ``slots`` stay absolute run slots in both cases).
    """

    #: Switch size.
    n: int
    #: Number of slots the batch covers.
    num_slots: int
    #: Arrival slot of each packet.
    slots: np.ndarray
    #: Input port of each packet.
    inputs: np.ndarray
    #: Output port (destination) of each packet.
    outputs: np.ndarray
    #: Per-VOQ sequence number of each packet (assigned at arrival).
    seqs: np.ndarray
    #: First slot the batch covers (0 for a monolithic draw).
    start_slot: int = 0

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def end_slot(self) -> int:
        """One past the last slot the batch covers."""
        return self.start_slot + self.num_slots

    @property
    def voqs(self) -> np.ndarray:
        """Flat VOQ id ``input * n + output`` of each packet."""
        return self.inputs * self.n + self.outputs


class BatchTrafficGenerator:
    """Vectorized twin of :class:`~repro.traffic.generator.TrafficGenerator`.

    Parameters mirror ``TrafficGenerator`` (flow models are not supported:
    the fast engine covers the non-hashing switches, which never read flow
    ids).  Successive :meth:`draw` calls continue per-VOQ sequence numbers,
    like successive ``slots()`` sweeps of a shared-``seq_state`` generator.
    """

    def __init__(
        self,
        matrix,
        rng: np.random.Generator,
        arrivals: Optional[ArrivalProcess] = None,
        chunk_slots: int = 4096,
        destinations: Optional[DestinationSampler] = None,
    ) -> None:
        matrix, row_sums, dest_dists = destination_distributions(matrix)
        self.n = matrix.shape[0]
        self.matrix = matrix
        self._rng = rng
        self._dest_dists = dest_dists
        self._destinations = (
            destinations
            if destinations is not None
            else MatrixDestinations(dest_dists)
        )
        if arrivals is None:
            arrivals = BernoulliArrivals(row_sums, rng)
        if arrivals.n != self.n:
            raise ValueError("arrival process size does not match matrix")
        self.arrivals = arrivals
        self.chunk_slots = chunk_slots
        self._seq_next = np.zeros(self.n * self.n, dtype=np.int64)
        self.generated = 0

    def _event_chunks(self, num_slots: int):
        """Iterate ``(slots, inputs, outputs)`` arrival chunks of one run.

        This is *the* RNG-consumption unit shared by :meth:`draw` and
        :meth:`draw_chunks`: the arrival process is stepped in chunks of
        ``chunk_slots`` slots and each chunk's destinations are drawn
        immediately after it, so how callers re-window the events can
        never perturb the stream.  (`np.nonzero` emits chunk events in
        row-major ``(slot, input)`` order already; destinations come from
        the same shared sampler — hence the same RNG consumption — as
        ``TrafficGenerator.slots()``.)
        """
        for slots, inputs in self.arrivals.events(num_slots, self.chunk_slots):
            dests = self._destinations.draw(self._rng, slots, inputs, self.n)
            yield (
                np.asarray(slots, dtype=np.int64),
                np.asarray(inputs, dtype=np.int64),
                dests,
            )

    def draw(self, num_slots: int) -> ArrivalBatch:
        """Draw ``num_slots`` slots of arrivals as one batch of arrays."""
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        n = self.n
        slot_parts: List[np.ndarray] = []
        input_parts: List[np.ndarray] = []
        output_parts: List[np.ndarray] = []
        for slots, inputs, dests in self._event_chunks(num_slots):
            slot_parts.append(slots)
            input_parts.append(inputs)
            output_parts.append(dests)

        slots_all = (
            np.concatenate(slot_parts) if slot_parts else np.empty(0, np.int64)
        )
        inputs_all = (
            np.concatenate(input_parts) if input_parts else np.empty(0, np.int64)
        )
        outputs_all = (
            np.concatenate(output_parts)
            if output_parts
            else np.empty(0, np.int64)
        )
        seqs = self._assign_seqs(inputs_all * n + outputs_all)
        self.generated += len(slots_all)
        return ArrivalBatch(
            n=n,
            num_slots=num_slots,
            slots=slots_all,
            inputs=inputs_all,
            outputs=outputs_all,
            seqs=seqs,
        )

    def draw_chunks(
        self, num_slots: int, window_slots: int
    ) -> Iterator[ArrivalBatch]:
        """Draw one ``num_slots`` run as consecutive slot windows.

        Yields :class:`ArrivalBatch` windows covering ``[0, window_slots)``,
        ``[window_slots, 2 * window_slots)``, … (the last window may be
        shorter), with *identical RNG consumption* to a single
        ``draw(num_slots)`` — the arrival process is still stepped in
        ``chunk_slots`` units internally and the windows are sliced from
        the buffered events, so concatenating the windows' arrays
        reproduces the monolithic batch field-for-field (per-VOQ sequence
        numbers continue across windows).  Peak buffered-event memory is
        O(``window_slots + chunk_slots``) instead of O(``num_slots``).
        """
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        if window_slots <= 0:
            raise ValueError("window_slots must be positive")
        n = self.n
        pending_slots = np.empty(0, np.int64)
        pending_inputs = np.empty(0, np.int64)
        pending_outputs = np.empty(0, np.int64)
        covered = 0  # slots fully drawn so far
        emitted = 0  # slots already yielded as windows
        chunks = self._event_chunks(num_slots)
        while emitted < num_slots:
            window_end = min(emitted + window_slots, num_slots)
            while covered < window_end:
                slots, inputs, dests = next(chunks)
                covered = min(covered + self.chunk_slots, num_slots)
                pending_slots = np.concatenate([pending_slots, slots])
                pending_inputs = np.concatenate([pending_inputs, inputs])
                pending_outputs = np.concatenate([pending_outputs, dests])
            cut = int(np.searchsorted(pending_slots, window_end, side="left"))
            w_slots = pending_slots[:cut]
            w_inputs = pending_inputs[:cut]
            w_outputs = pending_outputs[:cut]
            pending_slots = pending_slots[cut:]
            pending_inputs = pending_inputs[cut:]
            pending_outputs = pending_outputs[cut:]
            seqs = self._assign_seqs(w_inputs * n + w_outputs)
            self.generated += len(w_slots)
            yield ArrivalBatch(
                n=n,
                num_slots=window_end - emitted,
                slots=w_slots,
                inputs=w_inputs,
                outputs=w_outputs,
                seqs=seqs,
                start_slot=emitted,
            )
            emitted = window_end

    def _assign_seqs(self, voqs: np.ndarray) -> np.ndarray:
        """Per-VOQ consecutive sequence numbers, in generation order."""
        seqs = np.empty(len(voqs), dtype=np.int64)
        if len(voqs) == 0:
            return seqs
        order = stable_voq_argsort(voqs, self.n)
        sorted_voqs = voqs[order]
        counts = np.bincount(voqs, minlength=self.n * self.n)
        group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        # Rank within each voq group: position minus the group's start.
        positions = np.arange(len(voqs)) - group_starts[sorted_voqs]
        seqs[order] = positions + self._seq_next[sorted_voqs]
        self._seq_next += counts
        return seqs

    def voq_rate(self, input_port: int, output_port: int) -> float:
        """The configured arrival rate of VOQ (input, output)."""
        return float(self.matrix[input_port][output_port])


def bernoulli_batch(matrix, seed: int = 0) -> BatchTrafficGenerator:
    """Convenience constructor: Bernoulli batch traffic from matrix + seed."""
    # repro: lint-ignore[RNG003] -- public convenience constructor: raw seed is its API
    return BatchTrafficGenerator(matrix, np.random.default_rng(seed))
