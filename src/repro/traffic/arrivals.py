"""Arrival processes for slotted-time switch simulation.

The paper's §6 uses Bernoulli i.i.d. arrivals: at each input port, a packet
arrives in each slot independently with probability ``rho``.  This module
also provides a two-state Markov-modulated (bursty on/off) process — the
standard stress generalization — and trace replay.

All processes generate arrivals in *chunks* (numpy-vectorized blocks of
slots) because per-slot Python-level sampling would dominate simulation
time.  A chunk is a pair of arrays ``(slots, inputs)`` listing, in
nondecreasing slot order, each arrival event's slot and input port.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ArrivalProcess",
    "BernoulliArrivals",
    "ModulatedBernoulliArrivals",
    "OnOffArrivals",
    "TraceArrivals",
]

Chunk = Tuple[np.ndarray, np.ndarray]


class ArrivalProcess:
    """Interface: per-slot packet arrivals at each of ``n`` input ports."""

    n: int

    def chunk(self, start_slot: int, num_slots: int) -> Chunk:
        """Arrival events for slots ``[start_slot, start_slot + num_slots)``.

        Returns ``(slots, inputs)`` arrays sorted by slot; at most one
        arrival per (slot, input) pair, matching the line-rate constraint of
        one packet per slot per input.
        """
        raise NotImplementedError

    def events(self, num_slots: int, chunk_slots: int = 4096) -> Iterator[Chunk]:
        """Iterate chunks covering ``[0, num_slots)``.

        The chunking here is the *RNG-consumption unit* of a run: every
        consumer (the object generator's slot stream, the batch
        generator's monolithic ``draw`` and its windowed ``draw_chunks``)
        steps the arrival process through exactly these chunks, drawing
        destinations after each one, so reading the same run in
        different window sizes can never perturb the stream.  Stateful
        processes (the on/off model's Markov state) rely on being
        stepped through one ``events`` sweep per run for the same
        reason.
        """
        start = 0
        while start < num_slots:
            size = min(chunk_slots, num_slots - start)
            yield self.chunk(start, size)
            start += size


class BernoulliArrivals(ArrivalProcess):
    """I.i.d. Bernoulli arrivals (paper §6).

    In each slot, input ``i`` receives a packet with probability
    ``loads[i]`` independently of everything else.
    """

    def __init__(self, loads: Sequence[float], rng: np.random.Generator) -> None:
        loads = np.asarray(loads, dtype=float)
        if loads.ndim != 1:
            raise ValueError("loads must be a 1-D sequence (one per input)")
        if np.any((loads < 0) | (loads > 1)):
            raise ValueError("per-slot arrival probabilities must be in [0, 1]")
        self.n = len(loads)
        self.loads = loads
        self._rng = rng

    def chunk(self, start_slot: int, num_slots: int) -> Chunk:
        draws = self._rng.random((num_slots, self.n)) < self.loads[None, :]
        rel_slots, inputs = np.nonzero(draws)
        return rel_slots + start_slot, inputs


class ModulatedBernoulliArrivals(ArrivalProcess):
    """Bernoulli arrivals under a slot-varying load schedule (nonstationary).

    In slot ``t``, input ``i`` receives a packet with probability
    ``loads[i] * schedule.multipliers(...)[t]`` — the schedule modulates
    every input's rate by a common factor in ``[0, 1]``, which is how the
    scenario subsystem models ramps, daily sines, and step changes in
    offered load.

    RNG discipline (load-bearing for engine parity): every chunk draws
    exactly one uniform per (slot, input) — the *same consumption* as
    :class:`BernoulliArrivals` — and the multiplier only moves the
    comparison threshold.  Swapping schedules therefore never perturbs the
    destination draws that follow each chunk, and the object and batch
    traffic generators stay in lock-step for a fixed seed.
    """

    def __init__(
        self,
        loads: Sequence[float],
        schedule,
        rng: np.random.Generator,
    ) -> None:
        loads = np.asarray(loads, dtype=float)
        if loads.ndim != 1:
            raise ValueError("loads must be a 1-D sequence (one per input)")
        if np.any((loads < 0) | (loads > 1)):
            raise ValueError("per-slot arrival probabilities must be in [0, 1]")
        if not hasattr(schedule, "multipliers"):
            raise TypeError(
                "schedule must expose multipliers(start_slot, num_slots)"
            )
        self.n = len(loads)
        self.loads = loads
        self.schedule = schedule
        self._rng = rng

    def chunk(self, start_slot: int, num_slots: int) -> Chunk:
        draws = self._rng.random((num_slots, self.n))
        mult = np.asarray(
            self.schedule.multipliers(start_slot, num_slots), dtype=float
        )
        if mult.shape != (num_slots,):
            raise ValueError(
                f"schedule returned shape {mult.shape}, "
                f"expected ({num_slots},)"
            )
        if np.any((mult < 0) | (mult > 1)):
            raise ValueError("schedule multipliers must be in [0, 1]")
        probs = self.loads[None, :] * mult[:, None]
        rel_slots, inputs = np.nonzero(draws < probs)
        return rel_slots + start_slot, inputs


class OnOffArrivals(ArrivalProcess):
    """Two-state Markov-modulated (bursty) arrivals.

    Each input alternates between an OFF state (no arrivals) and an ON state
    (one arrival per slot with probability ``peak_rate``).  State holding
    times are geometric with mean ``mean_on`` / ``mean_off`` slots.  The
    long-run arrival rate is ``peak_rate * mean_on / (mean_on + mean_off)``.

    ``peak_rate`` is a scalar (every input equally peaky) or a length-``n``
    sequence of per-input peaks — required for skewed matrices whose rows
    carry different total rates, where a shared peak would oversubscribe
    the lighter inputs' outputs.

    ``phases`` is the number of independent modulator chains; input ``i``
    follows chain ``i mod phases``.  The default (``None``) gives every
    input its own chain — the classic independent on/off model.
    ``phases=1`` drives *every* input from one shared phase, so the whole
    switch bursts in lock-step: per-input long-run rates are unchanged
    (each input still emits at its own peak while ON), but episodes of
    system-wide overload replace independent per-input bursts — the
    correlated-burst stress the i.i.d. analysis never sees.  Each input
    keeps its own per-slot emission draws, so RNG consumption (and hence
    engine parity) is independent of ``phases``'s chunk geometry for the
    emission stream; the flip stream shrinks to one column per chain.

    Burstiness is the adversary of load balancing; this process lets
    experiments push beyond the paper's i.i.d. assumption.
    """

    def __init__(
        self,
        n: int,
        peak_rate,
        mean_on: float,
        mean_off: float,
        rng: np.random.Generator,
        phases: Optional[int] = None,
    ) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        peak = np.asarray(peak_rate, dtype=float)
        if peak.ndim not in (0, 1) or (peak.ndim == 1 and len(peak) != n):
            raise ValueError("peak_rate must be a scalar or one value per input")
        if np.any((peak < 0.0) | (peak > 1.0)):
            raise ValueError("peak_rate must be in [0, 1]")
        if mean_on < 1.0 or mean_off < 1.0:
            raise ValueError("mean sojourn times must be at least one slot")
        if phases is None:
            phases = n
        if not 1 <= phases <= n:
            raise ValueError(f"phases must be in [1, {n}], got {phases}")
        self.n = n
        self.peak_rate = peak
        self.phases = phases
        self._chain = np.arange(n) % phases
        self.p_off = 1.0 / mean_on  # P(on -> off) per slot
        self.p_on = 1.0 / mean_off  # P(off -> on) per slot
        self._rng = rng
        # Start each chain in its stationary state distribution.
        p_stationary_on = self.p_on / (self.p_on + self.p_off)
        self._state_on = rng.random(phases) < p_stationary_on

    @property
    def mean_rate(self):
        """Long-run packets/slot per input (scalar or per-input array)."""
        return self.peak_rate * self.p_on / (self.p_on + self.p_off)

    def chunk(self, start_slot: int, num_slots: int) -> Chunk:
        rng = self._rng
        flips = rng.random((num_slots, self.phases))
        emits = rng.random((num_slots, self.n)) < self.peak_rate
        arrivals = np.zeros((num_slots, self.n), dtype=bool)
        state = self._state_on
        chain = self._chain
        for t in range(num_slots):
            arrivals[t] = state[chain] & emits[t]
            switch_off = state & (flips[t] < self.p_off)
            switch_on = ~state & (flips[t] < self.p_on)
            state = (state & ~switch_off) | switch_on
        self._state_on = state
        rel_slots, inputs = np.nonzero(arrivals)
        return rel_slots + start_slot, inputs


class TraceArrivals(ArrivalProcess):
    """Replay an explicit list of (slot, input) arrival events.

    Events must be sorted by slot; at most one arrival per (slot, input).
    Useful for regression tests and for replaying externally captured
    workloads.
    """

    def __init__(self, n: int, events: Sequence[Tuple[int, int]]) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        slots: List[int] = []
        inputs: List[int] = []
        seen = set()
        last_slot = -1
        for slot, inp in events:
            if slot < 0 or not 0 <= inp < n:
                raise ValueError(f"bad event ({slot}, {inp})")
            if slot < last_slot:
                raise ValueError("trace events must be sorted by slot")
            if (slot, inp) in seen:
                raise ValueError(f"duplicate arrival at slot {slot} input {inp}")
            seen.add((slot, inp))
            last_slot = slot
            slots.append(slot)
            inputs.append(inp)
        self._slots = np.asarray(slots, dtype=np.int64)
        self._inputs = np.asarray(inputs, dtype=np.int64)

    def chunk(self, start_slot: int, num_slots: int) -> Chunk:
        lo = np.searchsorted(self._slots, start_slot, side="left")
        hi = np.searchsorted(self._slots, start_slot + num_slots, side="left")
        return self._slots[lo:hi].copy(), self._inputs[lo:hi].copy()
