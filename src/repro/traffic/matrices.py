"""Traffic matrices (destination distributions) for switch workloads.

A traffic matrix ``T`` is an ``N x N`` nonnegative matrix where ``T[i][j]``
is the arrival rate (packets per slot) of the VOQ at input ``i`` destined to
output ``j``.  *Admissible* traffic (the regime in which the paper's
guarantees hold) has every row sum and every column sum at most 1: no input
or output line is oversubscribed.

The paper's §6 evaluates two patterns at ``N = 32``:

* **uniform** — each arrival picks its output uniformly;
* **diagonal** (the figure is titled "Quasi-Diagonal") — an arrival at input
  ``i`` goes to output ``i`` with probability 1/2 and to each other output
  with probability ``1/(2(N-1))``.

Additional standard patterns (hot-spot, log-normal, permutation) are
included for wider experimentation; all are exercised by tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "uniform_matrix",
    "diagonal_matrix",
    "quasi_diagonal_matrix",
    "hotspot_matrix",
    "lognormal_matrix",
    "permutation_matrix",
    "is_admissible",
    "scale_to_load",
    "row_loads",
    "column_loads",
    "validate_matrix",
]


def validate_matrix(matrix: np.ndarray) -> np.ndarray:
    """Check shape/nonnegativity and return the matrix as a float array."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"traffic matrix must be square, got {matrix.shape}")
    if np.any(matrix < 0):
        raise ValueError("traffic matrix entries must be nonnegative")
    return matrix


def row_loads(matrix: np.ndarray) -> np.ndarray:
    """Per-input total arrival rates (row sums)."""
    return validate_matrix(matrix).sum(axis=1)


def column_loads(matrix: np.ndarray) -> np.ndarray:
    """Per-output total arrival rates (column sums)."""
    return validate_matrix(matrix).sum(axis=0)


def is_admissible(matrix: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Whether no input or output line is oversubscribed.

    >>> is_admissible(uniform_matrix(4, 0.9))
    True
    >>> is_admissible(uniform_matrix(4, 1.2))
    False
    """
    matrix = validate_matrix(matrix)
    return bool(
        matrix.sum(axis=1).max(initial=0.0) <= 1.0 + tolerance
        and matrix.sum(axis=0).max(initial=0.0) <= 1.0 + tolerance
    )


def scale_to_load(matrix: np.ndarray, load: float) -> np.ndarray:
    """Rescale so the maximum row/column sum equals ``load``.

    Useful for driving an arbitrary-shape matrix at a chosen utilization.
    """
    matrix = validate_matrix(matrix)
    if load < 0:
        raise ValueError("load must be nonnegative")
    peak = max(matrix.sum(axis=1).max(), matrix.sum(axis=0).max())
    if peak == 0:
        raise ValueError("cannot scale an all-zero matrix")
    return matrix * (load / peak)


def uniform_matrix(n: int, load: float) -> np.ndarray:
    """Uniform traffic: every VOQ has rate ``load / n`` (paper §6, Fig. 6).

    >>> float(uniform_matrix(4, 0.8).sum(axis=1)[0])
    0.8
    """
    _check_n_load(n, load)
    return np.full((n, n), load / n)


def diagonal_matrix(n: int, load: float) -> np.ndarray:
    """The paper's diagonal pattern (§6, Fig. 7).

    A packet arriving at input ``i`` goes to output ``i`` with probability
    1/2, and to each of the other ``n - 1`` outputs with probability
    ``1/(2(n-1))``.

    >>> m = diagonal_matrix(4, 0.9)
    >>> bool(np.isclose(m[0, 0], 0.45))
    True
    """
    _check_n_load(n, load)
    if n < 2:
        raise ValueError("diagonal pattern needs n >= 2")
    off = load / (2.0 * (n - 1))
    matrix = np.full((n, n), off)
    np.fill_diagonal(matrix, load / 2.0)
    return matrix


def quasi_diagonal_matrix(n: int, load: float) -> np.ndarray:
    """A harsher diagonal variant: geometric decay away from the diagonal.

    ``T[i][(i + k) mod n]`` is proportional to ``2^-k``; commonly used in
    the switching literature as an unbalanced stress pattern.
    """
    _check_n_load(n, load)
    weights = np.array([2.0 ** (-k) for k in range(n)])
    weights /= weights.sum()
    matrix = np.empty((n, n))
    for i in range(n):
        matrix[i] = load * np.roll(weights, i)
    return matrix


def hotspot_matrix(n: int, load: float, hotspot_fraction: float = 0.5) -> np.ndarray:
    """One output (port 0) draws ``hotspot_fraction`` of every input's traffic.

    Each input sends ``load`` in total: ``load * hotspot_fraction`` to the
    hot output, the rest spread uniformly over the other outputs.  The hot
    column then sums to ``n * load * hotspot_fraction``, so the matrix is
    only admissible when that product is at most 1 --- callers should check
    :func:`is_admissible` before simulating.
    """
    _check_n_load(n, load)
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be in [0, 1]")
    matrix = np.full((n, n), load * (1.0 - hotspot_fraction) / max(n - 1, 1))
    matrix[:, 0] = load * hotspot_fraction
    return matrix


def lognormal_matrix(
    n: int, load: float, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Random skewed matrix: iid log-normal weights, rescaled to ``load``.

    Produces heterogeneous VOQ rates — exactly the situation variable-size
    striping is designed for.  The result has maximum row/column sum equal
    to ``load`` (hence admissible for ``load <= 1``).
    """
    _check_n_load(n, load)
    if sigma < 0:
        raise ValueError("sigma must be nonnegative")
    weights = rng.lognormal(mean=0.0, sigma=sigma, size=(n, n))
    return scale_to_load(weights, load)


def permutation_matrix(
    n: int, load: float, perm: Optional[Sequence[int]] = None
) -> np.ndarray:
    """All of input ``i``'s traffic goes to output ``perm[i]``.

    The most concentrated admissible pattern; the stress case for striping
    since each input has a single rate-``load`` VOQ.
    """
    _check_n_load(n, load)
    if perm is None:
        perm = list(range(n))
    matrix = np.zeros((n, n))
    for i, j in enumerate(perm):
        matrix[i][j] = load
    return matrix


def _check_n_load(n: int, load: float) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if load < 0:
        raise ValueError(f"load must be nonnegative, got {load}")
