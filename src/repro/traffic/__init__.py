"""Workload generation: arrival processes, traffic matrices, packet sources."""

from .arrivals import BernoulliArrivals, OnOffArrivals, TraceArrivals
from .generator import FlowModel, TrafficGenerator, bernoulli_traffic
from .trace_io import read_trace, record_trace, replay_generator, write_trace
from .matrices import (
    diagonal_matrix,
    hotspot_matrix,
    is_admissible,
    lognormal_matrix,
    permutation_matrix,
    quasi_diagonal_matrix,
    scale_to_load,
    uniform_matrix,
)

__all__ = [
    "BernoulliArrivals",
    "FlowModel",
    "OnOffArrivals",
    "TraceArrivals",
    "TrafficGenerator",
    "bernoulli_traffic",
    "read_trace",
    "record_trace",
    "replay_generator",
    "write_trace",
    "diagonal_matrix",
    "hotspot_matrix",
    "is_admissible",
    "lognormal_matrix",
    "permutation_matrix",
    "quasi_diagonal_matrix",
    "scale_to_load",
    "uniform_matrix",
]
