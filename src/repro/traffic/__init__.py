"""Workload generation: arrival processes, traffic matrices, packet sources."""

from .arrivals import (
    BernoulliArrivals,
    ModulatedBernoulliArrivals,
    OnOffArrivals,
    TraceArrivals,
)
from .batch import ArrivalBatch, BatchTrafficGenerator, bernoulli_batch
from .generator import (
    DriftingDestinations,
    FlowModel,
    MatrixDestinations,
    TrafficGenerator,
    bernoulli_traffic,
)
from .trace_io import read_trace, record_trace, replay_generator, write_trace
from .matrices import (
    diagonal_matrix,
    hotspot_matrix,
    is_admissible,
    lognormal_matrix,
    permutation_matrix,
    quasi_diagonal_matrix,
    scale_to_load,
    uniform_matrix,
)

__all__ = [
    "ArrivalBatch",
    "BatchTrafficGenerator",
    "BernoulliArrivals",
    "DriftingDestinations",
    "FlowModel",
    "MatrixDestinations",
    "ModulatedBernoulliArrivals",
    "OnOffArrivals",
    "TraceArrivals",
    "TrafficGenerator",
    "bernoulli_batch",
    "bernoulli_traffic",
    "read_trace",
    "record_trace",
    "replay_generator",
    "write_trace",
    "diagonal_matrix",
    "hotspot_matrix",
    "is_admissible",
    "lognormal_matrix",
    "permutation_matrix",
    "quasi_diagonal_matrix",
    "scale_to_load",
    "uniform_matrix",
]
