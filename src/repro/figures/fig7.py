"""Experiment E4: Figure 7 — average delay vs load, diagonal traffic, N=32."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..models import PAPER_SWITCHES
from .delay_figures import DEFAULT_LOADS, generate as _generate, render as _render

__all__ = ["generate", "render"]


def generate(
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    seed: int = 0,
    engine: str = "object",
    scenario: Optional[str] = None,
    fabrics: Sequence[str] = (),
    store=None,
    window_slots: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Figure 7 rows (diagonal destinations, or any scenario override)."""
    return _generate(
        scenario or "diagonal",
        n=n,
        loads=loads,
        num_slots=num_slots,
        switches=tuple(PAPER_SWITCHES) + tuple(fabrics),
        seed=seed,
        engine=engine,
        store=store,
        window_slots=window_slots,
    )


def render(
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    seed: int = 0,
    engine: str = "object",
    scenario: Optional[str] = None,
    fabrics: Sequence[str] = (),
    store=None,
    window_slots: Optional[int] = None,
) -> str:
    """Figure 7 table + chart (titled with the scenario when overridden)."""
    return _render(
        scenario or "diagonal",
        "Figure 7" if scenario is None else f"Figure 7 [{scenario}]",
        n=n,
        loads=loads,
        num_slots=num_slots,
        switches=tuple(PAPER_SWITCHES) + tuple(fabrics),
        seed=seed,
        engine=engine,
        store=store,
        window_slots=window_slots,
    )
