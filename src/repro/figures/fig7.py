"""Experiment E4: Figure 7 — average delay vs load, diagonal traffic, N=32."""

from __future__ import annotations

from typing import Dict, List, Sequence

from .delay_figures import DEFAULT_LOADS, generate as _generate, render as _render

__all__ = ["generate", "render"]


def generate(
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    seed: int = 0,
    engine: str = "object",
) -> List[Dict[str, float]]:
    """Figure 7 rows (diagonal destinations: P(j=i) = 1/2)."""
    return _generate(
        "diagonal",
        n=n,
        loads=loads,
        num_slots=num_slots,
        seed=seed,
        engine=engine,
    )


def render(
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    seed: int = 0,
    engine: str = "object",
) -> str:
    """Figure 7 table + chart."""
    return _render(
        "diagonal",
        "Figure 7",
        n=n,
        loads=loads,
        num_slots=num_slots,
        seed=seed,
        engine=engine,
    )
