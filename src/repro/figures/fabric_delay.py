"""Fabric figure: per-stage delay decomposition versus offered load.

For a composite fabric, every packet's end-to-end delay telescopes into
per-stage components (a packet departs stage k in the slot it arrives at
stage k+1), so the per-stage mean delays reported by
:func:`repro.sim.composite.run_fabric` sum exactly to the end-to-end mean.
This figure plots that decomposition across a load sweep: which stage of a
multi-stage fabric dominates delay, and where the knee moves as load rises.

Rows carry ``load``, the end-to-end ``mean_delay``, one
``stage{k}_mean_delay`` column per stage, and the end-to-end reordering
count; the rendered chart plots the end-to-end curve alongside every
stage's curve on the shared log axis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..models import CompositeSwitchModel, resolve_fabric
from ..sim.experiment import TRAFFIC_PATTERNS, fabric_run_params, run_single
from ..store import cache_key, coerce_store
from .delay_figures import DEFAULT_LOADS
from .render import ascii_log_chart, format_table

__all__ = ["generate", "render", "figure_params", "DEFAULT_LOADS"]


def _resolve_pattern(pattern):
    """``(spec, is_builtin_pattern)`` for a §6 pattern name or scenario."""
    if isinstance(pattern, str) and pattern in TRAFFIC_PATTERNS:
        return None, True
    from ..scenarios.registry import resolve_scenario

    return resolve_scenario(pattern), False


def figure_params(
    fabric_spec,
    pattern,
    n: int,
    loads: Sequence[float],
    num_slots: int,
    seed: int,
    engine: str,
) -> Dict:
    """Store cache-key parameters of one rendered decomposition figure.

    Content-addressed over the figure spec and the per-load
    ``fabric_run_params`` keys — the same any-cell-misses-the-table
    discipline as :func:`repro.figures.delay_figures.table_params`.
    """
    from ..scenarios.spec import effective_matrix

    spec, is_pattern = _resolve_pattern(pattern)
    run_keys = []
    for load in loads:
        matrix = (
            TRAFFIC_PATTERNS[pattern](n, load)
            if is_pattern
            else effective_matrix(spec, n, load)
        )
        run_keys.append(
            cache_key(
                fabric_run_params(
                    fabric_spec, matrix, num_slots, seed,
                    float(load), 0.1, False, engine, spec,
                )
            )
        )
    return {
        "schema": 1,
        "kind": "fabric_delay_figure",
        "fabric": fabric_spec.to_dict(),
        "pattern": spec.to_dict() if spec is not None else pattern,
        "n": int(n),
        "loads": [float(load) for load in loads],
        "num_slots": int(num_slots),
        "seed": int(seed),
        "engine": engine,
        "runs": run_keys,
    }


def generate(
    fabric="leaf-spine",
    pattern: str = "uniform",
    n: int = 16,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 20_000,
    seed: int = 0,
    engine: str = "vectorized",
    store=None,
    window_slots: Optional[int] = None,
) -> List[Dict[str, float]]:
    """One row per load: end-to-end mean delay plus each stage's share.

    ``fabric`` is a registered fabric name, spec dict, or
    :class:`~repro.models.FabricSpec`; ``pattern`` a §6 pattern name or
    any registered scenario.  Each row's ``stage{k}_mean_delay`` columns
    sum to its ``mean_delay`` exactly (delays telescope across the link
    couplers).
    """
    fabric_spec = resolve_fabric(fabric)
    num_stages = fabric_spec.num_stages
    rows: List[Dict[str, float]] = []
    spec, is_pattern = _resolve_pattern(pattern)
    for load in loads:
        if is_pattern:
            result = run_single(
                fabric_spec,
                TRAFFIC_PATTERNS[pattern](n, load),
                num_slots,
                seed=seed,
                load_label=float(load),
                keep_samples=False,
                engine=engine,
                store=store,
                window_slots=window_slots,
            )
        else:
            result = run_single(
                fabric_spec,
                scenario=spec,
                n=n,
                load=float(load),
                num_slots=num_slots,
                seed=seed,
                load_label=float(load),
                keep_samples=False,
                engine=engine,
                store=store,
                window_slots=window_slots,
            )
        row: Dict[str, float] = {
            "load": float(load),
            "mean_delay": result.mean_delay,
        }
        for k in range(num_stages):
            row[f"stage{k}_mean_delay"] = result.extras.get(
                f"stage{k}_mean_delay", float("nan")
            )
        row["late_packets"] = result.late_packets
        row["measured"] = result.measured_packets
        rows.append(row)
    return rows


def render(
    fabric="leaf-spine",
    pattern: str = "uniform",
    n: int = 16,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 20_000,
    seed: int = 0,
    engine: str = "vectorized",
    store=None,
    window_slots: Optional[int] = None,
) -> str:
    """Decomposition table and log-scale chart for one fabric + pattern.

    With a ``store``, the rendered figure is memoized through the
    experiment store on top of the per-run caching (see
    :func:`figure_params`).
    """
    fabric_spec = resolve_fabric(fabric)
    cache = coerce_store(store)
    params: Optional[Dict] = None
    if cache is not None:
        params = figure_params(
            fabric_spec, pattern, n, loads, num_slots, seed, engine,
        )
        cached = cache.fetch_artifact(params)
        if cached is not None:
            return cached["text"]
    with telemetry.trace(
        "figure.table",
        figure=f"fabric-delay:{fabric_spec.name}",
        pattern=str(pattern),
        n=n,
    ):
        rows = generate(
            fabric_spec,
            pattern,
            n=n,
            loads=loads,
            num_slots=num_slots,
            seed=seed,
            engine=engine,
            store=cache,
            window_slots=window_slots,
        )
    series: Dict[str, List[tuple]] = {"end-to-end": []}
    stages = CompositeSwitchModel(fabric_spec).models
    for row in rows:
        series["end-to-end"].append((row["load"], row["mean_delay"]))
        for k, model in enumerate(stages):
            series.setdefault(f"stage{k} ({model.name})", []).append(
                (row["load"], row[f"stage{k}_mean_delay"])
            )
    chart = ascii_log_chart(series, x_label="load", y_label="mean delay")
    text = (
        f"Fabric delay decomposition: {fabric_spec.name} "
        f"({' -> '.join(fabric_spec.switch_names)}), {pattern} traffic, "
        f"N={n}, {num_slots} slots\n"
        + format_table(rows)
        + "\n\n"
        + chart
    )
    if cache is not None:
        cache.save_artifact(params, {"text": text})
    return text
