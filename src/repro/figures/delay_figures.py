"""Experiments E3/E4: regenerate the paper's Figures 6 and 7.

Paper §6: average packet delay versus offered load for five switches
(baseline load-balanced, UFS, FOFF, PF, Sprinklers) at N = 32 under
Bernoulli arrivals, with uniformly distributed destinations (Fig. 6) and
the diagonal pattern ``P(j = i) = 1/2`` (Fig. 7).  Delay is plotted on a
log axis against loads 0.1 .. ~0.95.

The shared generator here is parameterized by the traffic pattern;
:mod:`repro.figures.fig6` and :mod:`repro.figures.fig7` are thin fronts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..models import PAPER_SWITCHES
from ..sim.experiment import delay_vs_load_sweep
from .render import ascii_log_chart, format_table

__all__ = ["generate", "render", "DEFAULT_LOADS"]

DEFAULT_LOADS: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


def generate(
    pattern: str,
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    switches: Sequence[str] = PAPER_SWITCHES,
    seed: int = 0,
    engine: str = "object",
    store=None,
    window_slots=None,
) -> List[Dict[str, float]]:
    """One row per (switch, load): mean delay plus ordering diagnostics.

    ``pattern`` is a §6 pattern name or any registered scenario.
    ``engine="vectorized"`` regenerates the figure at the paper's full
    scale in a fraction of the object engine's wall-clock (same seeds,
    same numbers for the switches both engines model); ``store`` caches
    every cell so re-rendering a figure is free.  ``window_slots``
    streams the vectorized replay in bounded-memory windows (identical
    numbers — it exists so multi-million-slot points fit in RAM).
    """
    results = delay_vs_load_sweep(
        pattern,
        n=n,
        loads=loads,
        num_slots=num_slots,
        switches=switches,
        seed=seed,
        engine=engine,
        store=store,
        window_slots=window_slots,
    )
    rows: List[Dict[str, float]] = []
    for result in results:
        rows.append(
            {
                "switch": result.switch_name,
                "load": result.load,
                "mean_delay": result.mean_delay,
                "late_packets": result.late_packets,
                "measured": result.measured_packets,
            }
        )
    return rows


def render(
    pattern: str,
    figure_name: str,
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    seed: int = 0,
    engine: str = "object",
    store=None,
    window_slots=None,
) -> str:
    """Delay-vs-load table and log-scale chart for one traffic pattern."""
    rows = generate(
        pattern,
        n=n,
        loads=loads,
        num_slots=num_slots,
        seed=seed,
        engine=engine,
        store=store,
        window_slots=window_slots,
    )
    series: Dict[str, List[tuple]] = {}
    for row in rows:
        series.setdefault(row["switch"], []).append(
            (row["load"], row["mean_delay"])
        )
    chart = ascii_log_chart(series, x_label="load", y_label="mean delay")
    return (
        f"{figure_name}: average delay vs load ({pattern} traffic, N={n}, "
        f"{num_slots} slots)\n"
        + format_table(rows)
        + "\n\n"
        + chart
    )
