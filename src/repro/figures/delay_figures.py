"""Experiments E3/E4: regenerate the paper's Figures 6 and 7.

Paper §6: average packet delay versus offered load for five switches
(baseline load-balanced, UFS, FOFF, PF, Sprinklers) at N = 32 under
Bernoulli arrivals, with uniformly distributed destinations (Fig. 6) and
the diagonal pattern ``P(j = i) = 1/2`` (Fig. 7).  Delay is plotted on a
log axis against loads 0.1 .. ~0.95.

The shared generator here is parameterized by the traffic pattern;
:mod:`repro.figures.fig6` and :mod:`repro.figures.fig7` are thin fronts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..models import PAPER_SWITCHES, canonical_name, lookup_fabric
from ..sim.experiment import (
    TRAFFIC_PATTERNS,
    delay_vs_load_sweep,
    fabric_run_params,
    single_run_params,
)
from ..store import cache_key, coerce_store
from .render import ascii_log_chart, format_table

__all__ = ["generate", "render", "table_params", "DEFAULT_LOADS"]

DEFAULT_LOADS: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


def _reported_name(name: str) -> str:
    """Canonical registry name of a switch *or* composite fabric."""
    fabric = lookup_fabric(name)
    return fabric.name if fabric is not None else canonical_name(name)


def table_params(
    pattern,
    figure_name: str,
    n: int,
    loads: Sequence[float],
    num_slots: int,
    switches: Sequence[str],
    seed: int,
    engine: str,
) -> Dict:
    """The store cache-key parameters of one rendered figure table.

    Content-addressed over the figure spec *and* the constituent run
    keys: the ``runs`` field lists the per-cell ``run_single`` cache keys
    (exactly the keys the sweep consults), so any change that would
    recompute a cell — run-params schema bump included — also misses the
    rendered table, while bit-identical execution details that do not
    enter run keys (e.g. ``window_slots``) hit it.
    """
    from ..scenarios.registry import resolve_scenario
    from ..scenarios.spec import effective_matrix

    spec = None
    if not (isinstance(pattern, str) and pattern in TRAFFIC_PATTERNS):
        spec = resolve_scenario(pattern)
    run_keys = []
    for load in loads:
        matrix = (
            TRAFFIC_PATTERNS[pattern](n, load)
            if spec is None
            else effective_matrix(spec, n, load)
        )
        for name in switches:
            fabric = lookup_fabric(name)
            run_keys.append(
                cache_key(
                    fabric_run_params(
                        fabric, matrix, num_slots, seed,
                        float(load), 0.1, False, engine, spec,
                    )
                    if fabric is not None
                    else single_run_params(
                        canonical_name(name), matrix, num_slots, seed,
                        float(load), 0.1, False, engine, spec,
                    )
                )
            )
    return {
        "schema": 1,
        "kind": "figure_table",
        "figure": figure_name,
        "pattern": spec.to_dict() if spec is not None else pattern,
        "n": int(n),
        "loads": [float(load) for load in loads],
        "num_slots": int(num_slots),
        "seed": int(seed),
        "engine": engine,
        "switches": [_reported_name(name) for name in switches],
        "runs": run_keys,
    }


def generate(
    pattern: str,
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    switches: Sequence[str] = PAPER_SWITCHES,
    seed: int = 0,
    engine: str = "object",
    store=None,
    window_slots=None,
) -> List[Dict[str, float]]:
    """One row per (switch, load): mean delay plus ordering diagnostics.

    ``pattern`` is a §6 pattern name or any registered scenario.
    ``engine="vectorized"`` regenerates the figure at the paper's full
    scale in a fraction of the object engine's wall-clock (same seeds,
    same numbers for the switches both engines model); ``store`` caches
    every cell so re-rendering a figure is free.  ``window_slots``
    streams the vectorized replay in bounded-memory windows (identical
    numbers — it exists so multi-million-slot points fit in RAM).
    """
    results = delay_vs_load_sweep(
        pattern,
        n=n,
        loads=loads,
        num_slots=num_slots,
        switches=switches,
        seed=seed,
        engine=engine,
        store=store,
        window_slots=window_slots,
    )
    rows: List[Dict[str, float]] = []
    for result in results:
        rows.append(
            {
                "switch": result.switch_name,
                "load": result.load,
                "mean_delay": result.mean_delay,
                "late_packets": result.late_packets,
                "measured": result.measured_packets,
            }
        )
    return rows


def render(
    pattern: str,
    figure_name: str,
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    switches: Sequence[str] = PAPER_SWITCHES,
    seed: int = 0,
    engine: str = "object",
    store=None,
    window_slots=None,
) -> str:
    """Delay-vs-load table and log-scale chart for one traffic pattern.

    With a ``store``, the *whole rendered table* is memoized through the
    experiment store (see :func:`table_params` for the key scheme) on top
    of the per-cell run caching: re-rendering a figure whose runs are all
    cached skips even the cache assembly.  ``store=None`` (the CLI's
    ``--no-store``) disables both layers.
    """
    cache = coerce_store(store)
    params: Optional[Dict] = None
    if cache is not None:
        params = table_params(
            pattern, figure_name, n, loads, num_slots, switches,
            seed, engine,
        )
        cached = cache.fetch_artifact(params)
        if cached is not None:
            return cached["text"]
    with telemetry.trace(
        "figure.table", figure=figure_name, pattern=str(pattern), n=n
    ):
        return _render_uncached(
            pattern, figure_name, n, loads, num_slots, switches, seed,
            engine, cache, params, window_slots,
        )


def _render_uncached(
    pattern, figure_name, n, loads, num_slots, switches, seed, engine,
    cache, params, window_slots,
) -> str:
    """The table build behind :func:`render`'s artifact cache."""
    rows = generate(
        pattern,
        n=n,
        loads=loads,
        num_slots=num_slots,
        switches=switches,
        seed=seed,
        engine=engine,
        store=cache,
        window_slots=window_slots,
    )
    series: Dict[str, List[tuple]] = {}
    for row in rows:
        series.setdefault(row["switch"], []).append(
            (row["load"], row["mean_delay"])
        )
    chart = ascii_log_chart(series, x_label="load", y_label="mean delay")
    text = (
        f"{figure_name}: average delay vs load ({pattern} traffic, N={n}, "
        f"{num_slots} slots)\n"
        + format_table(rows)
        + "\n\n"
        + chart
    )
    if cache is not None:
        cache.save_artifact(params, {"text": text})
    return text
