"""Extension experiment: delay sensitivity to traffic burstiness.

The paper evaluates under Bernoulli (memoryless) arrivals.  Real traffic
is bursty, and burstiness is the natural adversary of load balancing —
so this extension sweeps the ON-period length of a Markov-modulated
on/off arrival process at *fixed mean load* and measures how each
switch's delay degrades.  Sprinklers' ordering guarantee is structural
(it holds under any arrival pattern, verified in tests); what burstiness
costs is delay, quantified here.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .. import models
from ..sim.engine import SimulationEngine
from ..sim.metrics import SimulationResult
from ..sim.rng import spawn_generator
from ..traffic.arrivals import OnOffArrivals
from ..traffic.generator import TrafficGenerator
from ..traffic.matrices import uniform_matrix
from .render import format_table

__all__ = ["generate", "render", "DEFAULT_BURSTS"]

#: Mean ON-period lengths to sweep (slots); OFF periods scale to keep the
#: long-run load fixed.
DEFAULT_BURSTS: Sequence[float] = (1.0, 8.0, 32.0, 128.0)


def _run_one(
    switch_name: str,
    n: int,
    load: float,
    mean_on: float,
    num_slots: int,
    seed: int,
) -> SimulationResult:
    # ON fraction chosen so that peak_rate * on_fraction == load, with the
    # peak pinned at 0.98 (almost back-to-back packets within a burst).
    peak = 0.98
    on_fraction = load / peak
    mean_off = max(1.0, mean_on * (1.0 - on_fraction) / on_fraction)
    rng = spawn_generator(seed, f"burst-{mean_on}")
    arrivals = OnOffArrivals(
        n, peak_rate=peak, mean_on=mean_on, mean_off=mean_off, rng=rng
    )
    matrix = uniform_matrix(n, min(0.999, arrivals.mean_rate))
    traffic = TrafficGenerator(matrix, rng, arrivals=arrivals)
    switch = models.build(switch_name, n, matrix, seed)
    engine = SimulationEngine(switch, traffic, keep_samples=False)
    return engine.run(num_slots, load_label=load)


def generate(
    n: int = 16,
    load: float = 0.6,
    bursts: Sequence[float] = DEFAULT_BURSTS,
    num_slots: int = 20_000,
    switches: Sequence[str] = ("load-balanced", "ufs", "sprinklers"),
    seed: int = 0,
) -> List[Dict[str, float]]:
    """One row per (switch, mean burst length): delay and ordering."""
    rows: List[Dict[str, float]] = []
    for mean_on in bursts:
        for name in switches:
            result = _run_one(name, n, load, mean_on, num_slots, seed)
            rows.append(
                {
                    "switch": result.switch_name,
                    "mean_burst": mean_on,
                    "mean_delay": result.mean_delay,
                    "late_packets": result.late_packets,
                }
            )
    return rows


def render(
    n: int = 16,
    load: float = 0.6,
    bursts: Sequence[float] = DEFAULT_BURSTS,
    num_slots: int = 20_000,
    seed: int = 0,
) -> str:
    """Burst-sensitivity table (extension; not a paper artifact)."""
    rows = generate(n=n, load=load, bursts=bursts, num_slots=num_slots, seed=seed)
    return (
        f"Burst sensitivity (extension): delay vs mean ON-burst length, "
        f"N={n}, mean load {load}\n" + format_table(rows)
    )
