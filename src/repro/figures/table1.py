"""Experiment E1: regenerate the paper's Table 1 (overload bounds).

Paper: "Examples of overload probability bound" — the Chernoff bound of
Theorem 2 on the probability that a single (input, intermediate) queue is
overloaded, for N in {1024, 2048, 4096} and rho in {0.90 .. 0.97}.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.chernoff import PAPER_TABLE1, table1_rows
from .render import format_table

__all__ = ["generate", "generate_with_paper", "render"]

DEFAULT_RHOS: Sequence[float] = (0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97)
DEFAULT_NS: Sequence[int] = (1024, 2048, 4096)


def generate(
    rhos: Sequence[float] = DEFAULT_RHOS, ns: Sequence[int] = DEFAULT_NS
) -> List[Dict[str, float]]:
    """The recomputed Table 1 rows."""
    return table1_rows(rhos, ns)


def generate_with_paper(
    rhos: Sequence[float] = DEFAULT_RHOS, ns: Sequence[int] = DEFAULT_NS
) -> List[Dict[str, float]]:
    """Table 1 rows with the paper's published value beside each of ours."""
    rows = []
    for row in table1_rows(rhos, ns):
        merged: Dict[str, float] = {"rho": row["rho"]}
        for n in ns:
            merged[f"N={n}"] = row[f"N={n}"]
            paper = PAPER_TABLE1.get((row["rho"], n))
            if paper is not None:
                merged[f"paper N={n}"] = paper
        rows.append(merged)
    return rows


def render(include_paper: bool = True) -> str:
    """Human-readable Table 1 (optionally side-by-side with the paper)."""
    rows = generate_with_paper() if include_paper else generate()
    title = "Table 1: per-queue overload probability bound vs (rho, N)"
    return title + "\n" + format_table(rows)
