"""Experiment E2: regenerate the paper's Figure 5.

Paper: "Expected delay when rho = 0.9" — the expected queue length (in
periods of N slots) of the intermediate-stage clearance model of §5,
plotted against the switch size N.  The paper's plot rises linearly to
roughly 4 x 10^3 periods at N = 1000; the closed form here is
``rho (N - 1) / (2 (1 - rho))``, i.e. 4495.5 at N = 1000.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.delay_model import expected_queue_length, fig5_series
from .render import ascii_log_chart, format_table

__all__ = ["generate", "render", "DEFAULT_NS"]

DEFAULT_NS: Sequence[int] = (8, 16, 32, 64, 128, 200, 400, 600, 800, 1000)


def generate(
    ns: Sequence[int] = DEFAULT_NS, rho: float = 0.9
) -> List[Dict[str, float]]:
    """The Figure 5 series: one row per switch size."""
    return fig5_series(ns, rho)


def render(ns: Sequence[int] = DEFAULT_NS, rho: float = 0.9) -> str:
    """Table plus chart, echoing the paper's linear-in-N observation."""
    rows = generate(ns, rho)
    chart = ascii_log_chart(
        {"E[delay] (periods)": [(row["N"], row["delay_periods"]) for row in rows]},
        x_label="N",
        y_label="delay/periods",
    )
    anchor = expected_queue_length(1000, rho)
    return (
        f"Figure 5: expected intermediate-stage delay vs N at rho={rho}\n"
        + format_table(rows)
        + "\n\n"
        + chart
        + f"\n(paper's plot: ~4e3 periods at N=1000; closed form: {anchor:.1f})"
    )
