"""Experiment E3: Figure 6 — average delay vs load, uniform traffic, N=32."""

from __future__ import annotations

from typing import Dict, List, Sequence

from .delay_figures import DEFAULT_LOADS, generate as _generate, render as _render

__all__ = ["generate", "render"]


def generate(
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    seed: int = 0,
    engine: str = "object",
) -> List[Dict[str, float]]:
    """Figure 6 rows (uniform destinations)."""
    return _generate(
        "uniform",
        n=n,
        loads=loads,
        num_slots=num_slots,
        seed=seed,
        engine=engine,
    )


def render(
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    seed: int = 0,
    engine: str = "object",
) -> str:
    """Figure 6 table + chart."""
    return _render(
        "uniform",
        "Figure 6",
        n=n,
        loads=loads,
        num_slots=num_slots,
        seed=seed,
        engine=engine,
    )
