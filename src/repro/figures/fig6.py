"""Experiment E3: Figure 6 — average delay vs load, uniform traffic, N=32."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..models import PAPER_SWITCHES
from .delay_figures import DEFAULT_LOADS, generate as _generate, render as _render

__all__ = ["generate", "render"]


def generate(
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    seed: int = 0,
    engine: str = "object",
    scenario: Optional[str] = None,
    fabrics: Sequence[str] = (),
    store=None,
    window_slots: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Figure 6 rows (uniform destinations, or any scenario override)."""
    return _generate(
        scenario or "uniform",
        n=n,
        loads=loads,
        num_slots=num_slots,
        switches=tuple(PAPER_SWITCHES) + tuple(fabrics),
        seed=seed,
        engine=engine,
        store=store,
        window_slots=window_slots,
    )


def render(
    n: int = 32,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_slots: int = 50_000,
    seed: int = 0,
    engine: str = "object",
    scenario: Optional[str] = None,
    fabrics: Sequence[str] = (),
    store=None,
    window_slots: Optional[int] = None,
) -> str:
    """Figure 6 table + chart (titled with the scenario when overridden)."""
    return _render(
        scenario or "uniform",
        "Figure 6" if scenario is None else f"Figure 6 [{scenario}]",
        n=n,
        loads=loads,
        num_slots=num_slots,
        switches=tuple(PAPER_SWITCHES) + tuple(fabrics),
        seed=seed,
        engine=engine,
        store=store,
        window_slots=window_slots,
    )
