"""Regeneration of every table and figure in the paper's evaluation."""

from . import burst_sensitivity, fabric_delay, fig5, fig6, fig7, table1
from .render import ascii_log_chart, format_table, rows_to_csv

__all__ = [
    "ascii_log_chart",
    "burst_sensitivity",
    "fabric_delay",
    "fig5",
    "fig6",
    "fig7",
    "format_table",
    "rows_to_csv",
    "table1",
]
