"""Plain-text rendering of tables and log-scale charts.

The library regenerates the paper's artifacts as *data* (rows and series);
this module renders them for terminals so no plotting dependency is needed.
Every figure module also exposes its raw rows for programmatic use and CSV
export.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "ascii_log_chart", "rows_to_csv"]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or 0 < abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Dict], columns: Optional[Sequence[str]] = None
) -> str:
    """Render dict-rows as an aligned text table.

    >>> print(format_table([{"a": 1, "b": 2.5}]))
    a  b
    -  ---
    1  2.5
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[k]) for r in rendered))
        for k, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(widths[k]) for k, col in enumerate(columns)).rstrip(),
        "  ".join("-" * widths[k] for k in range(len(columns))).rstrip(),
    ]
    for r in rendered:
        lines.append("  ".join(v.ljust(widths[k]) for k, v in enumerate(r)).rstrip())
    return "\n".join(lines)


def ascii_log_chart(
    series: Dict[str, List[tuple]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y (log10)",
) -> str:
    """Render named (x, y) series on a log10-y ASCII grid.

    Mirrors the paper's Figs. 6-7 layout (linear load on x, log delay on y).
    Non-positive y values are skipped.
    """
    points = [
        (x, y, name)
        for name, pts in series.items()
        for x, y in pts
        if y > 0 and y == y
    ]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    logs = [math.log10(p[1]) for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = math.floor(min(logs)), math.ceil(max(logs))
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker} = {name}")
        for x, y in pts:
            if y <= 0 or y != y:
                continue
            col = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round(
                (math.log10(y) - y_min) / (y_max - y_min) * (height - 1)
            )
            grid[height - 1 - row][col] = marker
    lines = [f"{y_label}   [{', '.join(legend)}]"]
    for r, row in enumerate(grid):
        level = y_max - (y_max - y_min) * r / (height - 1)
        lines.append(f"10^{level:5.1f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9
        + f" {x_label}: {x_min:g} .. {x_max:g}"
    )
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict-rows as CSV text (header + data lines)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_format_value(row.get(col, "")) for col in columns))
    return "\n".join(lines)
