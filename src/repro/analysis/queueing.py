"""Discrete-time queueing utilities underpinning the delay analyses.

Generic building blocks, used by :mod:`repro.analysis.delay_model` cross-
checks and available to users analyzing their own configurations:

* :func:`lindley_waits` — exact waiting-time recursion for a single-server
  slotted queue with an arbitrary arrival/service trace;
* :class:`GeoGeo1` — the Geo/Geo/1 queue (Bernoulli arrivals, geometric
  service), the discrete M/M/1 analogue, with closed-form occupancy;
* :func:`batch_queue_mean` — mean queue length of the slotted batch-
  arrival queue ``Q' = max(Q + A - 1, 0)`` for a general i.i.d. batch
  distribution (the §5 model is the special case A in {0, N}).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["lindley_waits", "GeoGeo1", "batch_queue_mean"]


def lindley_waits(
    interarrivals: Sequence[float], services: Sequence[float]
) -> np.ndarray:
    """Waiting times by Lindley's recursion: ``W_{k+1} = (W_k + S_k - T_k)^+``.

    ``interarrivals[k]`` is the gap between customer ``k`` and ``k+1``;
    ``services[k]`` is customer ``k``'s service time.  Returns the waiting
    time of every customer (``W_0 = 0``).

    >>> list(lindley_waits([1, 1, 5], [2, 2, 2]))
    [0.0, 1.0, 2.0, 0.0]
    """
    interarrivals = np.asarray(interarrivals, dtype=float)
    services = np.asarray(services, dtype=float)
    if interarrivals.shape != services.shape:
        raise ValueError("need one interarrival per service")
    waits = np.zeros(len(services) + 1)
    for k in range(len(services)):
        waits[k + 1] = max(waits[k] + services[k] - interarrivals[k], 0.0)
    return waits


class GeoGeo1:
    """The Geo/Geo/1 queue: arrival prob ``p`` per slot, service prob ``s``.

    Stable iff ``p < s``.  The stationary queue length (including the
    customer in service, early-arrival convention) is geometric with
    parameter ``sigma = p (1 - s) / (s (1 - p))``:

        P(Q = 0) = 1 - p/s,    P(Q = k) = (p/s)(1 - sigma) sigma^(k-1).

    >>> q = GeoGeo1(0.3, 0.5)
    >>> q.utilization
    0.6
    """

    def __init__(self, p: float, s: float) -> None:
        if not 0.0 <= p <= 1.0 or not 0.0 < s <= 1.0:
            raise ValueError("p in [0,1], s in (0,1] required")
        if p >= s:
            raise ValueError(f"unstable: arrival {p} >= service {s}")
        self.p = p
        self.s = s

    @property
    def utilization(self) -> float:
        """Offered load ``rho = p / s``."""
        return self.p / self.s

    @property
    def sigma(self) -> float:
        """Geometric tail parameter of the queue length."""
        return self.p * (1.0 - self.s) / (self.s * (1.0 - self.p))

    def mean_queue_length(self) -> float:
        """``E[Q] = rho / (1 - sigma)`` from the geometric stationary law."""
        return self.utilization / (1.0 - self.sigma)

    def simulate_mean_queue(
        self, slots: int, rng: np.random.Generator, warmup: int = 0
    ) -> float:
        """Monte-Carlo mean queue length (cross-check for the closed form)."""
        q = 0
        total = 0
        arrivals = rng.random(slots) < self.p
        services = rng.random(slots) < self.s
        for t in range(slots):
            if q > 0 and services[t]:
                q -= 1
            if arrivals[t]:
                q += 1
            if t >= warmup:
                total += q
        return total / max(1, slots - warmup)


def batch_queue_mean(batch_pmf: Sequence[float]) -> float:
    """Mean queue of ``Q' = max(Q + A - 1, 0)`` for i.i.d. ``A ~ batch_pmf``.

    ``batch_pmf[k] = P(A = k)``; requires ``E[A] < 1``.  Derived from the
    square/stationarity argument (see delay_model):
    ``E[Q] = (E[A^2] - E[A]) / (2 (1 - E[A]))``.

    >>> round(batch_queue_mean([0.9, 0.0, 0.1]), 6)   # A in {0, 2}
    0.125
    """
    pmf = np.asarray(batch_pmf, dtype=float)
    if np.any(pmf < 0) or not np.isclose(pmf.sum(), 1.0):
        raise ValueError("batch_pmf must be a probability distribution")
    k = np.arange(len(pmf))
    mean = float((k * pmf).sum())
    second = float((k * k * pmf).sum())
    if mean >= 1.0:
        raise ValueError(f"unstable: E[A] = {mean} >= 1")
    return (second - mean) / (2.0 * (1.0 - mean))
