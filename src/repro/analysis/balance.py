"""Empirical load-balance study: how loose are the Table 1 bounds?

The paper notes (§4.1) that "the actual overloading probabilities could be
orders of magnitude smaller" than the Chernoff bounds of Table 1.  This
module quantifies that remark — an extension of the paper's evaluation:

* :func:`empirical_overload_probability` Monte-Carlos the probability that
  *any* queue of a whole switch is overloaded under random OLS placement,
  for a configurable workload family;
* :func:`balance_profile` reports the distribution of the worst per-queue
  load (the quantity Theorem 2 bounds) across placements;
* :func:`bound_vs_empirical_rows` lines both up against
  :func:`repro.analysis.chernoff.overload_probability_bound` per load
  level, producing the "Table 1, empirical edition".

Workload families are supplied as callables ``(n, rho, rng) -> matrix`` so
the study runs on uniform, diagonal, or adversarial splits alike.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.interval_assignment import PlacementMode, StripeIntervalAssignment
from .chernoff import overload_probability_bound, switch_wide_bound

__all__ = [
    "balance_profile",
    "empirical_overload_probability",
    "bound_vs_empirical_rows",
]

MatrixFamily = Callable[[int, float, np.random.Generator], np.ndarray]


def balance_profile(
    matrix: np.ndarray,
    trials: int,
    rng: np.random.Generator,
    mode: str = PlacementMode.OLS,
) -> Dict[str, float]:
    """Distribution of the switch's worst queue load over random placements.

    Returns mean / p95 / max of ``max_queue_load`` and the fraction of
    placements with at least one overloaded queue.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    n = matrix.shape[0]
    worst_loads = np.empty(trials)
    overloaded = 0
    for t in range(trials):
        seed = int(rng.integers(0, 2**63 - 1))
        assignment = StripeIntervalAssignment(
            # repro: lint-ignore[RNG003] -- trial seed drawn from the caller's seeded rng
            matrix, rng=np.random.default_rng(seed), mode=mode
        )
        worst = assignment.max_queue_load()
        worst_loads[t] = worst
        if worst >= 1.0 / n:
            overloaded += 1
    return {
        "mean_worst_load": float(worst_loads.mean()),
        "p95_worst_load": float(np.percentile(worst_loads, 95)),
        "max_worst_load": float(worst_loads.max()),
        "overload_fraction": overloaded / trials,
        "service_rate": 1.0 / n,
    }


def empirical_overload_probability(
    family: MatrixFamily,
    n: int,
    rho: float,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """P(any queue overloaded) over random placements of a workload family.

    Each trial draws a fresh workload matrix *and* a fresh placement, so
    the estimate covers both sources of randomness.
    """
    hits = 0
    for _ in range(trials):
        matrix = family(n, rho, rng)
        seed = int(rng.integers(0, 2**63 - 1))
        assignment = StripeIntervalAssignment(
            # repro: lint-ignore[RNG003] -- trial seed drawn from the caller's seeded rng
            matrix, rng=np.random.default_rng(seed)
        )
        if assignment.max_queue_load() >= 1.0 / n:
            hits += 1
    return hits / trials


def bound_vs_empirical_rows(
    family: MatrixFamily,
    n: int,
    rhos: Sequence[float],
    trials: int,
    rng: np.random.Generator,
) -> List[Dict[str, float]]:
    """Per-load comparison: analytical bounds vs measured overload rates.

    The analytical columns bound a *single queue* and the whole switch
    (union over 2 N^2 queues); the empirical column measures the whole
    switch directly, so it should sit at or below the union bound — and
    in practice far below it.
    """
    rows: List[Dict[str, float]] = []
    for rho in rhos:
        rows.append(
            {
                "rho": rho,
                "per_queue_bound": overload_probability_bound(rho, n),
                "switch_wide_bound": switch_wide_bound(rho, n),
                "empirical_switch_wide": empirical_overload_probability(
                    family, n, rho, trials, rng
                ),
            }
        )
    return rows
