"""Worst-case overload probability bounds (paper §4, Theorem 2 and Table 1).

The paper bounds the probability that the queue of packets from one input
port to one intermediate port receives arrival rate at least its service
rate 1/N, maximized over all admissible rate splits at total load ``rho``:

    sup_{|r| = rho} P(X(r) >= 1/N)
        <= inf_{theta > 0} exp(-theta/N) * sup_r E[exp(theta X(r))]
        <= inf_{theta > 0} exp(-theta/N)
           * (h(p*(theta alpha), theta alpha))^(N/2) * exp(theta rho / N)

with ``alpha = 1/N^2`` (the per-port load budget of Equation (1)),

    h(p, a)  = p e^{a(1-p)} + (1-p) e^{-ap}          (worst Bernoulli MGF)
    p*(a)    = (e^a - 1 - a) / (a e^a - a)           (its maximizer in p)

Substituting ``a = theta * alpha`` makes the exponent ``N * g(a)`` with
``g(a) = ln h(p*(a), a) / 2 - a (1 - rho)``; the bound is ``exp(N g(a*))``
minimized over ``a``.  Table 1 of the paper evaluates this for
N in {1024, 2048, 4096} and rho in {0.90 .. 0.97}.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from scipy import optimize

from .stability import theorem1_threshold

__all__ = [
    "h_function",
    "p_star",
    "log_mgf_bound_per_port_pair",
    "overload_probability_bound",
    "log10_overload_probability_bound",
    "min_switch_size",
    "switch_wide_bound",
    "table1_rows",
    "PAPER_TABLE1",
]

#: The paper's Table 1, for paper-vs-measured comparison in EXPERIMENTS.md.
PAPER_TABLE1: Dict[Tuple[float, int], float] = {
    (0.90, 1024): 1.21e-18, (0.90, 2048): 1.14e-29, (0.90, 4096): 6.10e-30,
    (0.91, 1024): 3.06e-15, (0.91, 2048): 4.91e-29, (0.91, 4096): 7.10e-30,
    (0.92, 1024): 3.54e-12, (0.92, 2048): 1.26e-23, (0.92, 4096): 9.10e-30,
    (0.93, 1024): 1.76e-9, (0.93, 2048): 3.09e-18, (0.93, 4096): 1.58e-29,
    (0.94, 1024): 3.76e-7, (0.94, 2048): 1.42e-13, (0.94, 4096): 2.00e-26,
    (0.95, 1024): 3.50e-5, (0.95, 2048): 1.22e-9, (0.95, 4096): 1.48e-18,
    (0.96, 1024): 1.41e-3, (0.96, 2048): 1.99e-6, (0.96, 4096): 3.97e-12,
    (0.97, 1024): 2.50e-2, (0.97, 2048): 6.24e-4, (0.97, 4096): 3.90e-7,
}


def h_function(p: float, a: float) -> float:
    """``h(p, a) = p e^{a(1-p)} + (1-p) e^{-ap}`` (Theorem 2).

    The MGF at argument ``a`` of a centered Bernoulli(p) random variable;
    the worst case over the distributions arising in the proof.

    >>> h_function(0.0, 1.0)
    1.0
    >>> h_function(1.0, 1.0)
    1.0
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    return p * math.exp(a * (1.0 - p)) + (1.0 - p) * math.exp(-a * p)


def p_star(a: float) -> float:
    """The maximizer of ``h(., a)``: ``(e^a - 1 - a) / (a e^a - a)``.

    Tends to 1/2 as ``a -> 0`` (use the series to avoid 0/0) and decays
    toward 0 as ``a`` grows.

    >>> abs(p_star(1e-9) - 0.5) < 1e-6
    True
    """
    if a < 0:
        raise ValueError(f"a must be nonnegative, got {a}")
    if a < 1e-6:
        # Series: p* = 1/2 - a/12 + O(a^2)
        return 0.5 - a / 12.0
    ea = math.expm1(a)  # e^a - 1, stable for small a
    return (ea - a) / (a * (ea + 1.0) - a)


def log_mgf_bound_per_port_pair(a: float, rho: float, n: int) -> float:
    """``g(a) = ln h(p*(a), a) / 2 - a (1 - rho)``.

    The overload bound is ``exp(N * g(a))``; minimizing ``g`` over ``a > 0``
    gives the Chernoff-optimal exponent.
    """
    return 0.5 * math.log(h_function(p_star(a), a)) - a * (1.0 - rho)


def _optimal_exponent(rho: float, n: int) -> Tuple[float, float]:
    """Minimize ``g(a)``; return ``(a*, g(a*))``."""
    result = optimize.minimize_scalar(
        lambda a: log_mgf_bound_per_port_pair(a, rho, n),
        bounds=(1e-9, 100.0),
        method="bounded",
        options={"xatol": 1e-10},
    )
    return float(result.x), float(result.fun)


def overload_probability_bound(rho: float, n: int) -> float:
    """Bound on ``P(one (input, intermediate) queue is overloaded)``.

    Returns 0 below the Theorem 1 threshold (overload is impossible there),
    and caps the Chernoff bound at 1 (it is a probability bound).

    >>> overload_probability_bound(0.5, 1024)
    0.0
    >>> 0 < overload_probability_bound(0.93, 2048) < 1e-15
    True
    """
    _validate(rho, n)
    if rho < theorem1_threshold(n):
        return 0.0
    _, g_min = _optimal_exponent(rho, n)
    return min(1.0, math.exp(n * g_min))


def log10_overload_probability_bound(rho: float, n: int) -> float:
    """``log10`` of the bound (usable when the bound underflows a float).

    Returns ``-inf`` below the Theorem 1 threshold.
    """
    _validate(rho, n)
    if rho < theorem1_threshold(n):
        return float("-inf")
    _, g_min = _optimal_exponent(rho, n)
    return min(0.0, n * g_min / math.log(10.0))


def switch_wide_bound(rho: float, n: int) -> float:
    """Union bound over all ``2 N^2`` queues of the switch (paper §4.1).

    There are N^2 input-side and N^2 output-side queues with identical
    marginal analyses.
    """
    return min(1.0, 2.0 * n * n * overload_probability_bound(rho, n))


def min_switch_size(
    rho: float, target: float, switch_wide: bool = True, max_n: int = 1 << 20
) -> Optional[int]:
    """Smallest power-of-two N whose overload bound is at most ``target``.

    The capacity-planning inverse of Table 1: "how large must the switch
    be so that, at load ``rho``, the (switch-wide by default) overload
    probability is below ``target``?"  Exploits the monotone-in-N decrease
    of the bound past the Theorem 1 regime; returns ``None`` if even
    ``max_n`` does not reach the target.

    >>> min_switch_size(0.95, 1e-6)
    4096
    """
    if target <= 0:
        raise ValueError("target must be positive")
    n = 2
    while n <= max_n:
        bound = switch_wide_bound(rho, n) if switch_wide else (
            overload_probability_bound(rho, n)
        )
        if bound <= target:
            return n
        n *= 2
    return None


def table1_rows(
    rhos: Sequence[float] = (0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97),
    ns: Sequence[int] = (1024, 2048, 4096),
) -> List[Dict[str, float]]:
    """Recompute the paper's Table 1.

    Each row is ``{"rho": rho, "N=1024": bound, ...}`` matching the paper's
    layout (rows are loads, columns are switch sizes).
    """
    rows: List[Dict[str, float]] = []
    for rho in rhos:
        row: Dict[str, float] = {"rho": rho}
        for n in ns:
            row[f"N={n}"] = overload_probability_bound(rho, n)
        rows.append(row)
    return rows


def _validate(rho: float, n: int) -> None:
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [0, 1], got {rho}")
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError(f"n must be a power of two >= 2, got {n}")
