"""Empirical checks of the negative-association property (paper §4.2.2).

Theorem 2's proof hinges on Joag-Dev & Proschan's results (the paper's
reference [10]):

* a uniformly random permutation of a fixed value vector is a negatively
  associated (NA) random vector (the paper's Lemma 3);
* for NA variables and nondecreasing nonnegative functions,
  ``E[prod g_i(X_i)] <= prod E[g_i(X_i)]`` (Lemma 2), which is what lets
  the proof break the MGF of a sum of permutation-coupled indicators into
  a product of Bernoulli MGFs.

These are proven facts; this module provides *empirical estimators* used in
tests to (a) validate our simulation of the permutation-distribution
machinery and (b) demonstrate the two lemmas numerically — covariances of
monotone functions over disjoint coordinate sets must come out
non-positive, and the product-of-MGFs bound must hold on samples.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

__all__ = [
    "permutation_covariance",
    "permutation_mgf_product_gap",
]


def permutation_covariance(
    values: Sequence[float],
    set_a: Sequence[int],
    set_b: Sequence[int],
    g_a: Callable[[np.ndarray], float],
    g_b: Callable[[np.ndarray], float],
    trials: int,
    rng: np.random.Generator,
) -> Tuple[float, float]:
    """Estimate ``Cov(g_a(X_A), g_b(X_B))`` under random permutation.

    ``X`` is a uniformly random permutation of ``values``; ``X_A`` and
    ``X_B`` are its restrictions to the disjoint index sets.  For
    nondecreasing ``g_a, g_b`` negative association forces the covariance
    to be ``<= 0`` (up to sampling noise).

    Returns ``(covariance_estimate, standard_error)``.
    """
    values_arr = np.asarray(values, dtype=float)
    idx_a = np.asarray(set_a, dtype=np.int64)
    idx_b = np.asarray(set_b, dtype=np.int64)
    if np.intersect1d(idx_a, idx_b).size:
        raise ValueError("index sets must be disjoint")
    if trials < 2:
        raise ValueError("need at least 2 trials")
    samples_a = np.empty(trials)
    samples_b = np.empty(trials)
    for t in range(trials):
        x = values_arr[rng.permutation(len(values_arr))]
        samples_a[t] = g_a(x[idx_a])
        samples_b[t] = g_b(x[idx_b])
    cov = float(np.cov(samples_a, samples_b, ddof=1)[0, 1])
    # Standard error of the covariance estimate via the delta method on the
    # per-trial products (adequate for test tolerances).
    products = (samples_a - samples_a.mean()) * (samples_b - samples_b.mean())
    stderr = float(products.std(ddof=1) / np.sqrt(trials))
    return cov, stderr


def permutation_mgf_product_gap(
    values: Sequence[float],
    theta: float,
    trials: int,
    rng: np.random.Generator,
) -> Tuple[float, float]:
    """Empirical gap in Lemma 2's product bound for exponential functions.

    Estimates ``E[exp(theta sum X_i)]`` and ``prod_i E[exp(theta X_i)]``
    for ``X`` a random permutation of ``values``; returns the pair.  Since
    ``sum X_i`` is constant under permutation, the left side is exact and
    the right side must dominate it (each marginal ``X_i`` is uniform over
    ``values``).
    """
    values_arr = np.asarray(values, dtype=float)
    n = len(values_arr)
    exact_sum = float(values_arr.sum())
    lhs = float(np.exp(theta * exact_sum))
    marginal = float(np.mean(np.exp(theta * values_arr)))
    rhs = marginal**n
    # `trials` and `rng` kept in the signature for symmetry with the other
    # estimator: a sampled estimate of the (deterministic) lhs confirms the
    # permutation machinery, cheaply.
    sample = np.empty(min(trials, 64))
    for t in range(len(sample)):
        sample[t] = np.exp(theta * values_arr[rng.permutation(n)].sum())
    if not np.allclose(sample, lhs):
        raise AssertionError("permutation left the sum unchanged? bug")
    return lhs, rhs
