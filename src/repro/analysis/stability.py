"""Stability analysis of the input-to-intermediate queues (paper §4).

The object of study is ``X(r, sigma)``: the total arrival rate into the
queue of packets at input port 0 that must be switched through intermediate
port 0, when the input's N VOQs have rates ``r`` and are mapped to primary
intermediate ports by permutation ``sigma``.  A VOQ with primary port ``p``
and stripe size ``f = F(rate)`` covers intermediate port 0 iff its dyadic
interval starts at 0, i.e. iff ``p < f``; it then contributes its
load-per-share ``rate / f``.

Provided here:

* exact evaluation of ``X(r, sigma)``;
* Theorem 1: ``X < 1/N`` almost surely when ``|r| < 2/3 + 1/(3 N^2)``,
  together with the extremal rate vector from the proof of Lemma 1 that
  attains ``X = 1/N`` at exactly that total load;
* Monte-Carlo estimation of the overload probability ``P(X >= 1/N)`` for
  arbitrary rate vectors (used to sanity-check the Chernoff bounds of
  :mod:`repro.analysis.chernoff` and to run the dyadic-vs-arbitrary
  ablation).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..core.striping import stripe_size_for_rate

__all__ = [
    "theorem1_threshold",
    "queue_arrival_rate",
    "worst_case_rates",
    "overload_probability_mc",
    "max_load_over_permutations_mc",
]


def theorem1_threshold(n: int) -> float:
    """The Theorem 1 load threshold ``2/3 + 1/(3 N^2)``.

    Below this total input load, no placement — however unlucky — can
    overload any single (input, intermediate) queue.

    >>> abs(theorem1_threshold(2) - 0.75) < 1e-12
    True
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    return 2.0 / 3.0 + 1.0 / (3.0 * n * n)


def queue_arrival_rate(
    rates: Sequence[float],
    sigma: Sequence[int],
    n: int,
    target_port: int = 0,
) -> float:
    """Exact ``X(r, sigma)`` for the queue feeding ``target_port``.

    ``sigma[j]`` is the primary intermediate port of VOQ ``j``.  VOQ ``j``
    contributes ``rates[j] / F(rates[j])`` iff its dyadic interval covers
    ``target_port``.
    """
    if len(rates) != n or len(sigma) != n:
        raise ValueError("rates and sigma must have length n")
    total = 0.0
    for j in range(n):
        rate = float(rates[j])
        if rate <= 0.0:
            continue
        size = stripe_size_for_rate(rate, n)
        primary = sigma[j]
        interval_start = (primary // size) * size
        if interval_start <= target_port < interval_start + size:
            total += rate / size
    return total


def worst_case_rates(n: int, scale: float = 1.0) -> List[float]:
    """The extremal rate vector from the proof of Theorem 1 (Lemma 1).

    Indexed by *primary port*: the VOQ aimed at port ``p`` (0-indexed; the
    paper's port ``l = p + 1``) gets rate ``2^ceil(log2(p+1)) / N^2`` for
    ``p < N/2``, the VOQ aimed at port ``N/2`` gets rate 1/2, and the rest
    are idle.  At ``scale = 1`` the vector sums to exactly the Theorem 1
    threshold and drives ``X`` to exactly ``1/N`` under the identity
    placement; any ``scale < 1`` leaves every placement strictly stable.

    >>> n = 16
    >>> abs(sum(worst_case_rates(n)) - theorem1_threshold(n)) < 1e-12
    True
    """
    if n < 4 or (n & (n - 1)) != 0:
        raise ValueError("n must be a power of two >= 4")
    rates = [0.0] * n
    for p in range(n // 2):
        rates[p] = scale * (2.0 ** math.ceil(math.log2(p + 1))) / (n * n)
    rates[n // 2] = scale * 0.5
    return rates


def overload_probability_mc(
    rates: Sequence[float],
    n: int,
    trials: int,
    rng: np.random.Generator,
    threshold: Optional[float] = None,
) -> float:
    """Monte-Carlo estimate of ``P(X(r, sigma) >= threshold)``.

    ``sigma`` is drawn uniformly over all permutations per trial, exactly
    as the Sprinklers placement does.  Vectorized: a VOQ contributes iff
    its (randomly permuted) primary port is below its stripe size.
    """
    if threshold is None:
        threshold = 1.0 / n
    rates_arr = np.asarray(rates, dtype=float)
    if rates_arr.shape != (n,):
        raise ValueError("rates must have length n")
    sizes = np.array(
        [stripe_size_for_rate(float(r), n) for r in rates_arr], dtype=np.int64
    )
    shares = np.where(rates_arr > 0, rates_arr / sizes, 0.0)
    hits = 0
    for _ in range(trials):
        sigma = rng.permutation(n)
        x = float(shares[sigma < sizes].sum())
        if x >= threshold - 1e-12:
            hits += 1
    return hits / trials


def max_load_over_permutations_mc(
    rates: Sequence[float],
    n: int,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """The largest ``X(r, sigma)`` seen over ``trials`` random placements.

    Used by tests of Theorem 1: below the threshold this maximum must stay
    strictly below ``1/N`` no matter how many placements are sampled.
    """
    rates_arr = np.asarray(rates, dtype=float)
    sizes = np.array(
        [stripe_size_for_rate(float(r), n) for r in rates_arr], dtype=np.int64
    )
    shares = np.where(rates_arr > 0, rates_arr / sizes, 0.0)
    worst = 0.0
    for _ in range(trials):
        sigma = rng.permutation(n)
        x = float(shares[sigma < sizes].sum())
        if x > worst:
            worst = x
    return worst
