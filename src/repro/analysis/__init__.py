"""Analytical results of the paper: Theorems 1-2, Table 1, the SS5 model."""

from .balance import (
    balance_profile,
    bound_vs_empirical_rows,
    empirical_overload_probability,
)
from .chernoff import (
    PAPER_TABLE1,
    h_function,
    log10_overload_probability_bound,
    overload_probability_bound,
    p_star,
    switch_wide_bound,
    table1_rows,
)
from .delay_model import (
    expected_queue_length,
    expected_queue_length_numeric,
    fig5_series,
    simulate_chain,
    stationary_distribution,
)
from .queueing import GeoGeo1, batch_queue_mean, lindley_waits
from .negative_association import (
    permutation_covariance,
    permutation_mgf_product_gap,
)
from .stability import (
    max_load_over_permutations_mc,
    overload_probability_mc,
    queue_arrival_rate,
    theorem1_threshold,
    worst_case_rates,
)

__all__ = [
    "PAPER_TABLE1",
    "GeoGeo1",
    "balance_profile",
    "batch_queue_mean",
    "bound_vs_empirical_rows",
    "empirical_overload_probability",
    "expected_queue_length",
    "expected_queue_length_numeric",
    "fig5_series",
    "h_function",
    "lindley_waits",
    "log10_overload_probability_bound",
    "max_load_over_permutations_mc",
    "overload_probability_bound",
    "overload_probability_mc",
    "p_star",
    "permutation_covariance",
    "permutation_mgf_product_gap",
    "queue_arrival_rate",
    "simulate_chain",
    "stationary_distribution",
    "switch_wide_bound",
    "table1_rows",
    "theorem1_threshold",
    "worst_case_rates",
]
