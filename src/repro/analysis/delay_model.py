"""Expected delay at the intermediate stage (paper §5, Figure 5).

The paper models the queue at an intermediate station under worst-case
burstiness: per *cycle* (N slots), the arrival is a Bernoulli batch — N
packets with probability ``rho / N``, none otherwise — and the service is
one packet per cycle.  The queue length embedded at cycle boundaries is the
Markov chain

    Q' = max(Q + A - 1, 0),    A = N w.p. rho/N, else 0.

(The paper's transition table swaps the two probabilities, which would make
the chain transient; we implement the consistent version — see DESIGN.md
§2.1.)  The paper plots the expected queue length (equivalently, the
expected clearance duration in cycles) against N at ``rho = 0.9``; it grows
linearly in N.

Three independent evaluations are provided, cross-checked in tests:

* a closed form from the standard drift/square argument:
  ``E[Q] = rho (N - 1) / (2 (1 - rho))``;
* an exact truncated stationary solve (sparse linear algebra);
* direct Monte-Carlo simulation of the chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

__all__ = [
    "expected_queue_length",
    "stationary_distribution",
    "expected_queue_length_numeric",
    "simulate_chain",
    "fig5_series",
]


def expected_queue_length(n: int, rho: float) -> float:
    """Closed-form ``E[Q] = rho (N-1) / (2 (1 - rho))`` packets (== cycles).

    Derivation: with ``Q' = Q + A - 1 + U`` (``U`` the wasted service
    indicator), stationarity of ``E[Q]`` gives ``E[U] = 1 - rho``; squaring
    and using independence of ``A`` from ``Q`` gives
    ``E[Q] = (E[A^2] - rho) / (2 (1 - rho))`` with ``E[A^2] = N rho``.

    >>> expected_queue_length(1, 0.5)
    0.0
    """
    _validate(n, rho)
    return rho * (n - 1) / (2.0 * (1.0 - rho))


def stationary_distribution(
    n: int, rho: float, truncation: Optional[int] = None
) -> np.ndarray:
    """Stationary law of the cycle-embedded queue, truncated to ``K`` states.

    The truncation reflects overflow mass into the top state; ``K`` defaults
    to a generous multiple of the closed-form mean so the truncation error
    is negligible (tests compare the numeric mean to the closed form).
    """
    _validate(n, rho)
    if truncation is None:
        truncation = int(40 * (expected_queue_length(n, rho) + 1)) + 4 * n
    k = truncation
    p = rho / n
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for i in range(k):
        down = max(i - 1, 0)
        rows.append(i)
        cols.append(down)
        vals.append(1.0 - p)
        up = min(i + n - 1, k - 1)
        rows.append(i)
        cols.append(up)
        vals.append(p)
    transition = sparse.csr_matrix((vals, (rows, cols)), shape=(k, k))
    # Solve pi (P - I) = 0 with sum(pi) = 1: replace one balance equation
    # by the normalization row.
    system = (transition.T - sparse.identity(k, format="csr")).tolil()
    system[k - 1, :] = 1.0
    rhs = np.zeros(k)
    rhs[k - 1] = 1.0
    pi = sparse_linalg.spsolve(system.tocsr(), rhs)
    pi = np.clip(pi, 0.0, None)
    return pi / pi.sum()


def expected_queue_length_numeric(
    n: int, rho: float, truncation: Optional[int] = None
) -> float:
    """Mean of the truncated stationary distribution."""
    pi = stationary_distribution(n, rho, truncation)
    return float(np.arange(len(pi)) @ pi)


def simulate_chain(
    n: int,
    rho: float,
    cycles: int,
    rng: np.random.Generator,
    warmup: Optional[int] = None,
) -> float:
    """Monte-Carlo mean queue length over ``cycles`` embedded steps."""
    _validate(n, rho)
    if warmup is None:
        warmup = cycles // 10
    p = rho / n
    arrivals = (rng.random(warmup + cycles) < p) * n
    q = 0
    total = 0
    for t, a in enumerate(arrivals):
        q = max(q + int(a) - 1, 0)
        if t >= warmup:
            total += q
    return total / cycles


def fig5_series(
    ns: Sequence[int] = (8, 16, 32, 64, 128, 256, 512, 1024),
    rho: float = 0.9,
) -> List[Dict[str, float]]:
    """The Figure 5 series: expected delay (cycles) vs switch size at rho.

    Uses the closed form (exact for the untruncated chain); the paper's
    plotted points at rho = 0.9 lie on the same ~N/2 * rho/(1-rho) line.
    """
    return [
        {"N": float(n), "delay_periods": expected_queue_length(n, rho)}
        for n in ns
    ]


def _validate(n: int, rho: float) -> None:
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
