"""Pluggable object backends for the experiment store.

:class:`~repro.store.store.ExperimentStore` owns the cache *semantics*
(key scheme, hit/miss accounting, manifest events, gc policy); a backend
owns the *bytes* — where cached objects and the manifest live.  The
protocol is deliberately small:

``get(key)``
    The stored payload dict, or ``None`` for a missing **or corrupt**
    entry (corruption is a cache miss, never an error — the recompute
    overwrites it).
``put(key, payload)``
    Store a payload atomically under its key (idempotent: concurrent
    writers of the same content-addressed key may race freely).
``delete(key)``
    Remove one entry; returns the bytes freed (0 when absent).
``entries()``
    ``ObjectEntry(key, size, mtime)`` for every stored object (gc and
    stats walk this).
``append_manifest(line)`` / ``manifest_lines()`` / ``rewrite_manifest``
    The append-only event log and its gc-time compaction.

Two implementations ship:

:class:`DirBackend`
    The historical layout — ``objects/<key[:2]>/<key>.json.gz`` plus a
    ``manifest.jsonl``.  Manifest appends are a **single O_APPEND
    write** of one fully formed line, so concurrent writers (process
    pools, service workers) can never interleave torn lines — POSIX
    appends the whole buffer atomically.
:class:`SqliteBackend`
    One ``store.sqlite`` database (WAL mode) holding objects and the
    manifest — the shared-result database concurrent service workers
    write without directory-tree races.  Payloads round-trip through
    the exact same canonical-JSON text as the dir backend, so results
    are bit-identical across backends.

:func:`resolve_backend` picks a backend for a store root: an explicit
name wins; otherwise a root that already contains ``store.sqlite`` opens
as sqlite (so workers reopening a store by its directory path land on
the same backend the daemon created), and anything else is a dir store.
"""

from __future__ import annotations

import gzip
import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional, Union

__all__ = [
    "BACKENDS",
    "DirBackend",
    "ObjectBackend",
    "ObjectEntry",
    "SQLITE_FILENAME",
    "SqliteBackend",
    "resolve_backend",
]

#: The database filename that marks a store root as sqlite-backed.
SQLITE_FILENAME = "store.sqlite"


class ObjectEntry(NamedTuple):
    """One stored object, as gc/stats see it."""

    key: str
    size: int
    mtime: float


class ObjectBackend:
    """Protocol base (documented above); concrete backends override all."""

    name = "abstract"

    def get(self, key: str) -> Optional[dict]:
        raise NotImplementedError

    def put(self, key: str, payload: dict) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> int:
        raise NotImplementedError

    def entries(self) -> List[ObjectEntry]:
        raise NotImplementedError

    def append_manifest(self, line: str) -> None:
        raise NotImplementedError

    def manifest_lines(self) -> List[str]:
        raise NotImplementedError

    def rewrite_manifest(self, lines: List[str]) -> None:
        raise NotImplementedError


class DirBackend(ObjectBackend):
    """Gzip'd JSON objects in a sharded directory tree (the seed layout)."""

    name = "dir"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifest_path = self.root / "manifest.jsonl"
        self.objects_dir.mkdir(parents=True, exist_ok=True)

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json.gz"

    def get(self, key: str) -> Optional[dict]:
        path = self._object_path(key)
        if not path.exists():
            return None
        try:
            with gzip.open(path, "rt") as handle:
                return json.load(handle)
        except (OSError, EOFError, ValueError):
            # Corrupt or truncated gzip/JSON reads as a miss (gzip raises
            # EOFError on truncation); the recompute overwrites it.
            return None

    def put(self, key: str, payload: dict) -> None:
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with gzip.open(tmp, "wt") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                tmp.unlink()

    def delete(self, key: str) -> int:
        path = self._object_path(key)
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return 0
        return size

    def entries(self) -> List[ObjectEntry]:
        out: List[ObjectEntry] = []
        for path in self.objects_dir.glob("*/*.json.gz"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent gc
                continue
            out.append(
                ObjectEntry(
                    key=path.name.removesuffix(".json.gz"),
                    size=stat.st_size,
                    mtime=stat.st_mtime,
                )
            )
        return out

    def append_manifest(self, line: str) -> None:
        # One O_APPEND write of the whole line: concurrent appenders
        # (pool workers, service shards) each land a complete line —
        # POSIX O_APPEND writes are atomic, so torn/interleaved records
        # cannot occur the way buffered ``open(..., "a")`` allowed.
        data = (line + "\n").encode()
        fd = os.open(
            self.manifest_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def manifest_lines(self) -> List[str]:
        if not self.manifest_path.exists():
            return []
        return self.manifest_path.read_text().splitlines()

    def rewrite_manifest(self, lines: List[str]) -> None:
        tmp = self.manifest_path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
        os.replace(tmp, self.manifest_path)


class SqliteBackend(ObjectBackend):
    """Objects + manifest in one WAL-mode SQLite database.

    Built for many concurrent writer *processes* sharing one consistent
    result database (the service's worker fabric): WAL allows readers
    during writes, ``busy_timeout`` rides out writer bursts, and every
    statement here is a single autocommitted transaction.  Connections
    are per-thread (SQLite connections are not thread-safe), opened
    lazily so a backend object can cross ``fork()`` safely as long as it
    was not used before the fork — exactly how pool workers receive
    store paths today (they reopen by path, never inherit a handle).

    Payloads are stored as the same canonical JSON text the dir backend
    gzips, so a result read back is bit-identical regardless of backend.
    """

    name = "sqlite"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.db_path = self.root / SQLITE_FILENAME
        self._local = threading.local()
        with self._cursor() as cur:
            cur.execute(
                "CREATE TABLE IF NOT EXISTS objects ("
                "  key TEXT PRIMARY KEY,"
                "  payload TEXT NOT NULL,"
                "  size INTEGER NOT NULL,"
                "  mtime REAL NOT NULL)"
            )
            cur.execute(
                "CREATE TABLE IF NOT EXISTS manifest ("
                "  id INTEGER PRIMARY KEY AUTOINCREMENT,"
                "  line TEXT NOT NULL)"
            )

    def _connect(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None or getattr(self._local, "pid", None) != os.getpid():
            conn = sqlite3.connect(self.db_path, timeout=30.0)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            self._local.conn = conn
            self._local.pid = os.getpid()
        return conn

    @contextmanager
    def _cursor(self) -> Iterator[sqlite3.Cursor]:
        """``with self._cursor() as cur`` — commit on success, rollback
        on error (every call is one transaction)."""
        conn = self._connect()
        try:
            yield conn.cursor()
        except BaseException:
            conn.rollback()
            raise
        else:
            conn.commit()

    def get(self, key: str) -> Optional[dict]:
        with self._cursor() as cur:
            row = cur.execute(
                "SELECT payload FROM objects WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except ValueError:
            # A corrupt payload (partial write, manual tampering) is a
            # miss, matching the dir backend's corrupt-gzip semantics.
            return None

    def put(self, key: str, payload: dict) -> None:
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._cursor() as cur:
            cur.execute(
                "INSERT OR REPLACE INTO objects (key, payload, size, mtime) "
                "VALUES (?, ?, ?, ?)",
                (key, text, len(text.encode()), time.time()),
            )

    def delete(self, key: str) -> int:
        with self._cursor() as cur:
            row = cur.execute(
                "SELECT size FROM objects WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                return 0
            cur.execute("DELETE FROM objects WHERE key = ?", (key,))
        return int(row[0])

    def entries(self) -> List[ObjectEntry]:
        with self._cursor() as cur:
            rows = cur.execute(
                "SELECT key, size, mtime FROM objects"
            ).fetchall()
        return [ObjectEntry(key, int(size), float(mtime)) for key, size, mtime in rows]

    def append_manifest(self, line: str) -> None:
        with self._cursor() as cur:
            cur.execute("INSERT INTO manifest (line) VALUES (?)", (line,))

    def manifest_lines(self) -> List[str]:
        with self._cursor() as cur:
            rows = cur.execute(
                "SELECT line FROM manifest ORDER BY id"
            ).fetchall()
        return [row[0] for row in rows]

    def rewrite_manifest(self, lines: List[str]) -> None:
        with self._cursor() as cur:
            cur.execute("DELETE FROM manifest")
            cur.executemany(
                "INSERT INTO manifest (line) VALUES (?)",
                [(line,) for line in lines],
            )


#: Registered backend names -> constructors.
BACKENDS = {
    DirBackend.name: DirBackend,
    SqliteBackend.name: SqliteBackend,
}


def resolve_backend(
    root: Union[str, Path], backend: Optional[str] = None
) -> ObjectBackend:
    """A backend for ``root``: explicit name, or auto-detect.

    Auto-detection keys on the presence of ``store.sqlite`` under the
    root, so a path flattened by :func:`repro.store.store_dir` reopens
    on whatever backend created the store — pool and service workers
    need no backend plumbing of their own.
    """
    if backend is not None:
        try:
            return BACKENDS[backend](root)
        except KeyError:
            known = ", ".join(sorted(BACKENDS))
            raise ValueError(
                f"unknown store backend {backend!r}; known: {known}"
            ) from None
    if (Path(root) / SQLITE_FILENAME).exists():
        return SqliteBackend(root)
    return DirBackend(root)
