"""Content-addressed experiment store.

Caches :class:`~repro.sim.metrics.SimulationResult` payloads keyed by the
full simulation configuration — scenario (or matrix digest), switch,
engine, N, slots, seed, measurement knobs — so re-running an identical
sweep, replication, or figure performs zero simulation recomputation.
See :class:`~repro.store.store.ExperimentStore` for the key scheme and
on-disk layout (documented in EXPERIMENTS.md).  ``repro store stats`` /
``repro store gc`` expose :meth:`~repro.store.store.ExperimentStore.
stats` and :meth:`~repro.store.store.ExperimentStore.gc` from the shell.
"""

from .backends import (
    BACKENDS,
    DirBackend,
    ObjectBackend,
    ObjectEntry,
    SqliteBackend,
    resolve_backend,
)
from .store import (
    ExperimentStore,
    GcReport,
    StoreStats,
    cache_key,
    canonical_params,
    coerce_store,
    store_dir,
)

__all__ = [
    "BACKENDS",
    "DirBackend",
    "ExperimentStore",
    "GcReport",
    "ObjectBackend",
    "ObjectEntry",
    "SqliteBackend",
    "StoreStats",
    "cache_key",
    "canonical_params",
    "coerce_store",
    "resolve_backend",
    "store_dir",
]
