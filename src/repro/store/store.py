"""The experiment store: content-addressed result caching with a manifest.

Key scheme
----------
A run's cache key is ``sha256(canonical_json(params))`` where ``params``
is the *complete* simulation configuration: a schema version, the switch
registry name, the engine, N, slots, seed, warm-up fraction, sample
retention, the load label, and the workload identity — either the
scenario spec's dict form (declarative workloads are self-describing) or
a SHA-256 digest of the raw rate matrix bytes (ad-hoc matrices).
Canonical JSON sorts keys and uses minimal separators, so semantically
identical configurations hash identically across processes and runs.

On-disk layout (all paths under the store root)::

    objects/<key[:2]>/<key>.json.gz   gzip'd {"params": ..., "result": ...}
    manifest.jsonl                    one append-only line per stored run

Writes go through a temp file + ``os.replace`` so a crashed run never
leaves a truncated object behind; corrupt or unreadable objects are
treated as misses and silently recomputed.  Process-pool workers each
open the store by path and write independently — content addressing makes
concurrent writes of the same key idempotent.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, Optional, Union

from ..sim.metrics import SimulationResult

__all__ = ["ExperimentStore", "cache_key", "canonical_params", "coerce_store"]

#: Bump when the params layout or result payload schema changes; old
#: entries simply stop matching (no migration needed — it is a cache).
SCHEMA_VERSION = 1


def canonical_params(params: Dict) -> str:
    """Deterministic JSON for hashing (sorted keys, minimal separators).

    ``allow_nan`` stays on: NaN load labels serialize as the literal
    ``NaN`` token, which is deterministic even though it is not strict
    JSON.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def cache_key(params: Dict) -> str:
    """The content address of a parameter dict."""
    return hashlib.sha256(canonical_params(params).encode()).hexdigest()


class ExperimentStore:
    """A directory of cached simulation results plus a run manifest."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifest_path = self.root / "manifest.jsonl"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json.gz"

    def fetch(self, params: Dict) -> Optional[SimulationResult]:
        """The cached result for ``params``, or None (counted as a miss)."""
        path = self._object_path(cache_key(params))
        if not path.exists():
            self.misses += 1
            return None
        try:
            with gzip.open(path, "rt") as handle:
                payload = json.load(handle)
            result = SimulationResult.from_dict(payload["result"])
        except (OSError, EOFError, ValueError, KeyError):
            # A corrupt/truncated object is a miss, not an error (gzip
            # raises EOFError on truncation); the recomputation will
            # overwrite it atomically.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def save(self, params: Dict, result: SimulationResult) -> Path:
        """Store a result under its params key; append to the manifest."""
        key = cache_key(params)
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"params": params, "result": result.to_dict()}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with gzip.open(tmp, "wt") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                tmp.unlink()
        manifest_line = canonical_params(
            {
                "key": key,
                "created": time.time(),
                "switch": params.get("switch"),
                "engine": params.get("engine"),
                "n": params.get("n"),
                "slots": params.get("slots"),
                "seed": params.get("seed"),
                "scenario": (params.get("workload") or {}).get(
                    "scenario", {}
                ).get("name"),
            }
        )
        with open(self.manifest_path, "a") as handle:
            handle.write(manifest_line + "\n")
        return path

    def __len__(self) -> int:
        """Number of stored objects (walks the object tree)."""
        return sum(1 for _ in self.objects_dir.glob("*/*.json.gz"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExperimentStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def coerce_store(
    store: Union[None, str, Path, ExperimentStore]
) -> Optional[ExperimentStore]:
    """Accept None, a path, or a store instance at API boundaries."""
    if store is None or isinstance(store, ExperimentStore):
        return store
    return ExperimentStore(store)


def store_dir(
    store: Union[None, str, Path, ExperimentStore]
) -> Optional[str]:
    """The inverse of :func:`coerce_store`: a picklable directory string.

    Process-pool jobs carry the store by path (workers reopen it
    locally); this is the one place that flattening lives.
    """
    if store is None:
        return None
    if isinstance(store, ExperimentStore):
        return str(store.root)
    return str(store)
