"""The experiment store: content-addressed result caching with a manifest.

Key scheme
----------
A run's cache key is ``sha256(canonical_json(params))`` where ``params``
is the *complete* simulation configuration: a schema version, the switch
registry name, the engine, N, slots, seed, warm-up fraction, sample
retention, the load label, and the workload identity — either the
scenario spec's dict form (declarative workloads are self-describing) or
a SHA-256 digest of the raw rate matrix bytes (ad-hoc matrices).
Canonical JSON sorts keys and uses minimal separators, so semantically
identical configurations hash identically across processes and runs.

Backends
--------
Where the bytes live is pluggable (:mod:`repro.store.backends`):

* ``dir`` (default) — ``objects/<key[:2]>/<key>.json.gz`` plus an
  append-only ``manifest.jsonl``, the seed layout.  Manifest appends
  are single atomic O_APPEND writes, so concurrent pool/service
  workers never interleave torn lines.
* ``sqlite`` — one WAL-mode ``store.sqlite`` database holding objects
  and manifest, the shared consistent result database for the
  simulation service's worker fabric.

``ExperimentStore(root)`` auto-detects (a root containing
``store.sqlite`` reopens as sqlite), so paths flattened for process
pools land on the right backend without plumbing.

Manifest lines are store *events*: a save (one per stored run; lines
without an ``event`` field predate hit logging and read as saves) or a
cache hit (``{"event": "hit", ...}``) — which is what makes
``ExperimentStore.stats`` able to report a lifetime hit rate, not just
the current process's counters.

Writes are atomic per entry (temp file + ``os.replace``, or a SQLite
transaction), so a crashed run never leaves a truncated object behind;
corrupt or unreadable objects are treated as misses and silently
recomputed.  Process-pool workers each open the store by path and write
independently — content addressing makes concurrent writes of the same
key idempotent.

``gc`` prunes by age and/or total size (oldest objects first) and
compacts the manifest to the surviving save lines; ``stats`` summarizes
entry count, bytes, and hit rate.  Both back the ``repro store``
CLI subcommands.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Union

from .. import telemetry
from ..sim.metrics import SimulationResult
from .backends import DirBackend, ObjectBackend, resolve_backend

logger = telemetry.get_logger(__name__)

__all__ = [
    "ExperimentStore",
    "GcReport",
    "StoreStats",
    "cache_key",
    "canonical_params",
    "coerce_store",
    "store_dir",
]

#: Bump when the params layout or result payload schema changes; old
#: entries simply stop matching (no migration needed — it is a cache).
SCHEMA_VERSION = 1


def canonical_params(params: Dict) -> str:
    """Deterministic JSON for hashing (sorted keys, minimal separators).

    ``allow_nan`` stays on: NaN load labels serialize as the literal
    ``NaN`` token, which is deterministic even though it is not strict
    JSON.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def cache_key(params: Dict) -> str:
    """The content address of a parameter dict."""
    return hashlib.sha256(canonical_params(params).encode()).hexdigest()


class StoreStats(NamedTuple):
    """Summary of a store's contents and lifetime effectiveness."""

    #: Cached objects currently on disk.
    entries: int
    #: Their total compressed size.
    total_bytes: int
    #: Save events in the manifest (each save was a computed miss).
    saves: int
    #: Hit events in the manifest.
    hits: int
    #: Lifetime hit rate ``hits / (hits + saves)``; NaN for an empty log.
    hit_rate: float
    #: Oldest / newest save timestamps (unix seconds), None when empty.
    oldest: Optional[float]
    newest: Optional[float]


class GcReport(NamedTuple):
    """What one garbage-collection pass did."""

    removed: int
    kept: int
    bytes_freed: int


class ExperimentStore:
    """Cached simulation results plus a run manifest, on a backend.

    ``backend`` selects the byte layer by name (``"dir"``/``"sqlite"``),
    accepts a ready :class:`~repro.store.backends.ObjectBackend`, or —
    left ``None`` — auto-detects from the root (see the module
    docstring).  Dir-backed stores keep the historical ``objects_dir``
    and ``manifest_path`` attributes for direct inspection.
    """

    def __init__(
        self,
        root: Union[str, Path],
        backend: Union[None, str, ObjectBackend] = None,
    ) -> None:
        self.root = Path(root)
        if isinstance(backend, ObjectBackend):
            self.backend = backend
        else:
            self.backend = resolve_backend(self.root, backend)
        if isinstance(self.backend, DirBackend):
            self.objects_dir = self.backend.objects_dir
            self.manifest_path = self.backend.manifest_path
        self.hits = 0
        self.misses = 0
        self._hit_log_failed = False

    def _fetch_payload(
        self, params: Dict, load: Callable[[dict], Any]
    ) -> Optional[Any]:
        """Shared miss/hit/manifest flow of :meth:`fetch` and
        :meth:`fetch_artifact`; ``load(payload)`` extracts (and may
        deserialize) the wanted field, any failure reading as a miss."""
        key = cache_key(params)
        t0 = time.perf_counter()
        payload = self.backend.get(key)
        if payload is None:
            self.misses += 1
            telemetry.count("store.miss")
            return None
        try:
            value = load(payload)
        except (ValueError, KeyError, TypeError):
            # A wrong-shaped payload — an artifact under a result fetch,
            # say — is a miss, not an error; the recomputation will
            # overwrite it atomically.
            self.misses += 1
            telemetry.count("store.miss")
            return None
        self.hits += 1
        telemetry.count("store.hit")
        telemetry.observe("store.fetch_s", time.perf_counter() - t0)
        try:
            self._append_manifest(
                {"event": "hit", "key": key, "created": time.time()}
            )
        except (OSError, sqlite3.Error) as exc:
            # Hit logging is best-effort bookkeeping: a read-only store
            # (shared cache, another user's CI artifact) must still serve
            # hits, exactly as corrupt objects silently read as misses.
            # Say so once at DEBUG — a silent swallow hid misconfigured
            # stores (every hit retrying the append) from any diagnosis.
            if not self._hit_log_failed:
                self._hit_log_failed = True
                logger.debug(
                    "store %s: hit logging disabled for this process "
                    "(manifest append failed: %s)", self.root, exc,
                )
        return value

    def fetch(self, params: Dict) -> Optional[SimulationResult]:
        """The cached result for ``params``, or None (counted as a miss)."""
        return self._fetch_payload(
            params,
            lambda payload: SimulationResult.from_dict(payload["result"]),
        )

    def fetch_by_key(self, key: str) -> Optional[SimulationResult]:
        """The cached result stored under ``key`` directly, or None.

        For callers that planned work by key ahead of time (the
        simulation service serves full shard results this way).  No
        hit/miss accounting or manifest logging — this is an internal
        read of an object the caller already knows exists, not a cache
        lookup that should skew hit-rate statistics.
        """
        payload = self.backend.get(key)
        if payload is None:
            return None
        try:
            return SimulationResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            return None

    def save(self, params: Dict, result: SimulationResult) -> str:
        """Store a result under its params key; append to the manifest."""
        key = cache_key(params)
        t0 = time.perf_counter()
        # Per-packet samples are serialized only for runs that retained
        # them (keep_samples in the key params); the exact delay
        # histogram is always stored, so fetch round-trips losslessly
        # either way and keys are unaffected.
        include_samples = bool(params.get("keep_samples", True))
        self.backend.put(
            key,
            {
                "params": params,
                "result": result.to_dict(include_samples=include_samples),
            },
        )
        telemetry.count("store.save")
        telemetry.observe("store.save_s", time.perf_counter() - t0)
        self._append_manifest(
            {
                "key": key,
                "created": time.time(),
                "switch": params.get("switch"),
                "engine": params.get("engine"),
                "n": params.get("n"),
                "slots": params.get("slots"),
                "seed": params.get("seed"),
                "scenario": (params.get("workload") or {}).get(
                    "scenario", {}
                ).get("name"),
            }
        )
        return key

    def fetch_artifact(self, params: Dict) -> Optional[Dict]:
        """The cached artifact payload for ``params``, or None.

        Artifacts are non-result derived objects — rendered figure
        tables, for one — stored under the same content-addressed scheme
        as simulation results (``params`` must carry a distinguishing
        ``kind``).  Same miss semantics as :meth:`fetch`: absent,
        corrupt, or result-shaped objects all read as misses.
        """
        return self._fetch_payload(
            params, lambda payload: payload["artifact"]
        )

    def save_artifact(self, params: Dict, artifact: Dict) -> str:
        """Store a derived artifact (JSON-serializable) under its params
        key; append to the manifest."""
        key = cache_key(params)
        t0 = time.perf_counter()
        self.backend.put(key, {"params": params, "artifact": artifact})
        telemetry.count("store.save")
        telemetry.observe("store.save_s", time.perf_counter() - t0)
        self._append_manifest(
            {
                "key": key,
                "created": time.time(),
                "kind": params.get("kind"),
            }
        )
        return key

    def _append_manifest(self, record: Dict) -> None:
        self.backend.append_manifest(canonical_params(record))

    def manifest_records(self) -> List[Dict]:
        """Parsed manifest lines, skipping any corrupt ones."""
        records: List[Dict] = []
        for line in self.backend.manifest_lines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
        return records

    # Backwards-compatible private alias (pre-backend name).
    _manifest_records = manifest_records

    def stats(self) -> StoreStats:
        """Entry count, size on disk, and lifetime hit rate (manifest)."""
        entries = self.backend.entries()
        saves = hits = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for record in self.manifest_records():
            if record.get("event") == "hit":
                hits += 1
                continue
            saves += 1  # legacy lines without "event" are saves
            created = record.get("created")
            if isinstance(created, (int, float)):
                oldest = created if oldest is None else min(oldest, created)
                newest = created if newest is None else max(newest, created)
        total = hits + saves
        return StoreStats(
            entries=len(entries),
            total_bytes=int(sum(entry.size for entry in entries)),
            saves=saves,
            hits=hits,
            hit_rate=hits / total if total else float("nan"),
            oldest=oldest,
            newest=newest,
        )

    def gc(
        self,
        max_age_seconds: Optional[float] = None,
        max_total_bytes: Optional[int] = None,
    ) -> GcReport:
        """Prune cached objects by age and/or total size.

        Objects older than ``max_age_seconds`` (by entry mtime — robust
        even when manifest lines are missing) are removed first; then, if
        the survivors still exceed ``max_total_bytes``, the oldest are
        removed until they fit.  The manifest is compacted to the
        surviving saves (hit events are pruned — they have served their
        statistical purpose).  With neither bound set this is a no-op
        that still compacts the manifest.

        Run gc while the store is quiescent: compaction is read-rewrite-
        replace, so manifest lines appended by a concurrently running
        sweep inside that window are dropped from the *log* (stats may
        undercount until their objects are re-saved).  Cached objects
        themselves are never affected — fetches hit regardless of what
        the manifest says.
        """
        now = time.time()
        objects = sorted(self.backend.entries(), key=lambda e: e.mtime)
        doomed: List[str] = []
        if max_age_seconds is not None:
            cutoff = now - max_age_seconds
            doomed.extend(e.key for e in objects if e.mtime < cutoff)
        if max_total_bytes is not None:
            doomed_set = set(doomed)
            remaining = [e for e in objects if e.key not in doomed_set]
            excess = sum(e.size for e in remaining) - max_total_bytes
            for entry in remaining:  # oldest first
                if excess <= 0:
                    break
                doomed.append(entry.key)
                excess -= entry.size
        bytes_freed = 0
        for key in doomed:
            bytes_freed += self.backend.delete(key)
        survivors = {entry.key for entry in self.backend.entries()}
        # Compact the manifest: surviving saves only, newest line per key.
        keep: Dict[str, Dict] = {}
        for record in self.manifest_records():
            if record.get("event") == "hit":
                continue
            key = record.get("key")
            if key in survivors:
                keep[key] = record
        self.backend.rewrite_manifest(
            [canonical_params(record) for record in keep.values()]
        )
        return GcReport(
            removed=len(doomed),
            kept=len(survivors),
            bytes_freed=bytes_freed,
        )

    def __len__(self) -> int:
        """Number of stored objects."""
        return len(self.backend.entries())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExperimentStore({str(self.root)!r}, "
            f"backend={self.backend.name!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def coerce_store(
    store: Union[None, str, Path, ExperimentStore]
) -> Optional[ExperimentStore]:
    """Accept None, a path, or a store instance at API boundaries.

    A string path may carry an explicit backend prefix
    (``"sqlite:/path/to/store"``); plain paths auto-detect.
    """
    if store is None or isinstance(store, ExperimentStore):
        return store
    if isinstance(store, str) and store.startswith("sqlite:"):
        return ExperimentStore(store[len("sqlite:"):], backend="sqlite")
    return ExperimentStore(store)


def store_dir(
    store: Union[None, str, Path, ExperimentStore]
) -> Optional[str]:
    """The inverse of :func:`coerce_store`: a picklable directory string.

    Process-pool jobs carry the store by path (workers reopen it
    locally); this is the one place that flattening lives.  Backend
    identity survives the round trip via auto-detection (a sqlite store
    root contains its database file).
    """
    if store is None:
        return None
    if isinstance(store, ExperimentStore):
        return str(store.root)
    return str(store)
