"""The experiment store: content-addressed result caching with a manifest.

Key scheme
----------
A run's cache key is ``sha256(canonical_json(params))`` where ``params``
is the *complete* simulation configuration: a schema version, the switch
registry name, the engine, N, slots, seed, warm-up fraction, sample
retention, the load label, and the workload identity — either the
scenario spec's dict form (declarative workloads are self-describing) or
a SHA-256 digest of the raw rate matrix bytes (ad-hoc matrices).
Canonical JSON sorts keys and uses minimal separators, so semantically
identical configurations hash identically across processes and runs.

On-disk layout (all paths under the store root)::

    objects/<key[:2]>/<key>.json.gz   gzip'd {"params": ..., "result": ...}
    manifest.jsonl                    one append-only line per store event

Manifest lines are store *events*: a save (one per stored run; lines
without an ``event`` field predate hit logging and read as saves) or a
cache hit (``{"event": "hit", ...}``) — which is what makes
``ExperimentStore.stats`` able to report a lifetime hit rate, not just
the current process's counters.

Writes go through a temp file + ``os.replace`` so a crashed run never
leaves a truncated object behind; corrupt or unreadable objects are
treated as misses and silently recomputed.  Process-pool workers each
open the store by path and write independently — content addressing makes
concurrent writes of the same key idempotent, and manifest appends are
line-atomic at these sizes.

``gc`` prunes by age and/or total size (oldest objects first) and
compacts the manifest to the surviving save lines; ``stats`` summarizes
entry count, bytes, and hit rate.  Both back the ``repro store``
CLI subcommands.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Union

from .. import telemetry
from ..sim.metrics import SimulationResult

logger = telemetry.get_logger(__name__)

__all__ = [
    "ExperimentStore",
    "GcReport",
    "StoreStats",
    "cache_key",
    "canonical_params",
    "coerce_store",
]

#: Bump when the params layout or result payload schema changes; old
#: entries simply stop matching (no migration needed — it is a cache).
SCHEMA_VERSION = 1


def canonical_params(params: Dict) -> str:
    """Deterministic JSON for hashing (sorted keys, minimal separators).

    ``allow_nan`` stays on: NaN load labels serialize as the literal
    ``NaN`` token, which is deterministic even though it is not strict
    JSON.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def cache_key(params: Dict) -> str:
    """The content address of a parameter dict."""
    return hashlib.sha256(canonical_params(params).encode()).hexdigest()


class StoreStats(NamedTuple):
    """Summary of a store's contents and lifetime effectiveness."""

    #: Cached objects currently on disk.
    entries: int
    #: Their total compressed size.
    total_bytes: int
    #: Save events in the manifest (each save was a computed miss).
    saves: int
    #: Hit events in the manifest.
    hits: int
    #: Lifetime hit rate ``hits / (hits + saves)``; NaN for an empty log.
    hit_rate: float
    #: Oldest / newest save timestamps (unix seconds), None when empty.
    oldest: Optional[float]
    newest: Optional[float]


class GcReport(NamedTuple):
    """What one garbage-collection pass did."""

    removed: int
    kept: int
    bytes_freed: int


class ExperimentStore:
    """A directory of cached simulation results plus a run manifest."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifest_path = self.root / "manifest.jsonl"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._hit_log_failed = False

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json.gz"

    def _fetch_payload(self, params: Dict, load):
        """Shared miss/hit/manifest flow of :meth:`fetch` and
        :meth:`fetch_artifact`; ``load(payload)`` extracts (and may
        deserialize) the wanted field, any failure reading as a miss."""
        key = cache_key(params)
        path = self._object_path(key)
        if not path.exists():
            self.misses += 1
            telemetry.count("store.miss")
            return None
        t0 = time.perf_counter()
        try:
            with gzip.open(path, "rt") as handle:
                payload = json.load(handle)
            value = load(payload)
        except (OSError, EOFError, ValueError, KeyError):
            # A corrupt/truncated object is a miss, not an error (gzip
            # raises EOFError on truncation; a wrong-shaped payload —
            # an artifact under a result fetch — raises KeyError); the
            # recomputation will overwrite it atomically.
            self.misses += 1
            telemetry.count("store.miss")
            return None
        self.hits += 1
        telemetry.count("store.hit")
        telemetry.observe("store.fetch_s", time.perf_counter() - t0)
        try:
            self._append_manifest(
                {"event": "hit", "key": key, "created": time.time()}
            )
        except OSError as exc:
            # Hit logging is best-effort bookkeeping: a read-only store
            # (shared cache, another user's CI artifact) must still serve
            # hits, exactly as corrupt objects silently read as misses.
            # Say so once at DEBUG — a silent swallow hid misconfigured
            # stores (every hit retrying the append) from any diagnosis.
            if not self._hit_log_failed:
                self._hit_log_failed = True
                logger.debug(
                    "store %s: hit logging disabled for this process "
                    "(manifest append failed: %s)", self.root, exc,
                )
        return value

    def fetch(self, params: Dict) -> Optional[SimulationResult]:
        """The cached result for ``params``, or None (counted as a miss)."""
        return self._fetch_payload(
            params,
            lambda payload: SimulationResult.from_dict(payload["result"]),
        )

    def save(self, params: Dict, result: SimulationResult) -> Path:
        """Store a result under its params key; append to the manifest."""
        key = cache_key(params)
        t0 = time.perf_counter()
        path = self._write_object(key, {"params": params, "result": result.to_dict()})
        telemetry.count("store.save")
        telemetry.observe("store.save_s", time.perf_counter() - t0)
        self._append_manifest(
            {
                "key": key,
                "created": time.time(),
                "switch": params.get("switch"),
                "engine": params.get("engine"),
                "n": params.get("n"),
                "slots": params.get("slots"),
                "seed": params.get("seed"),
                "scenario": (params.get("workload") or {}).get(
                    "scenario", {}
                ).get("name"),
            }
        )
        return path

    def _write_object(self, key: str, payload: Dict) -> Path:
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with gzip.open(tmp, "wt") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                tmp.unlink()
        return path

    def fetch_artifact(self, params: Dict) -> Optional[Dict]:
        """The cached artifact payload for ``params``, or None.

        Artifacts are non-result derived objects — rendered figure
        tables, for one — stored under the same content-addressed scheme
        as simulation results (``params`` must carry a distinguishing
        ``kind``).  Same miss semantics as :meth:`fetch`: absent,
        corrupt, or result-shaped objects all read as misses.
        """
        return self._fetch_payload(
            params, lambda payload: payload["artifact"]
        )

    def save_artifact(self, params: Dict, artifact: Dict) -> Path:
        """Store a derived artifact (JSON-serializable) under its params
        key; append to the manifest."""
        key = cache_key(params)
        t0 = time.perf_counter()
        path = self._write_object(key, {"params": params, "artifact": artifact})
        telemetry.count("store.save")
        telemetry.observe("store.save_s", time.perf_counter() - t0)
        self._append_manifest(
            {
                "key": key,
                "created": time.time(),
                "kind": params.get("kind"),
            }
        )
        return path

    def _append_manifest(self, record: Dict) -> None:
        with open(self.manifest_path, "a") as handle:
            handle.write(canonical_params(record) + "\n")

    def _manifest_records(self) -> List[Dict]:
        """Parsed manifest lines, skipping any corrupt ones."""
        if not self.manifest_path.exists():
            return []
        records: List[Dict] = []
        for line in self.manifest_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
        return records

    def stats(self) -> StoreStats:
        """Entry count, size on disk, and lifetime hit rate (manifest)."""
        sizes = [
            p.stat().st_size for p in self.objects_dir.glob("*/*.json.gz")
        ]
        saves = hits = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for record in self._manifest_records():
            if record.get("event") == "hit":
                hits += 1
                continue
            saves += 1  # legacy lines without "event" are saves
            created = record.get("created")
            if isinstance(created, (int, float)):
                oldest = created if oldest is None else min(oldest, created)
                newest = created if newest is None else max(newest, created)
        total = hits + saves
        return StoreStats(
            entries=len(sizes),
            total_bytes=int(sum(sizes)),
            saves=saves,
            hits=hits,
            hit_rate=hits / total if total else float("nan"),
            oldest=oldest,
            newest=newest,
        )

    def gc(
        self,
        max_age_seconds: Optional[float] = None,
        max_total_bytes: Optional[int] = None,
    ) -> GcReport:
        """Prune cached objects by age and/or total size.

        Objects older than ``max_age_seconds`` (by file mtime — robust
        even when manifest lines are missing) are removed first; then, if
        the survivors still exceed ``max_total_bytes``, the oldest are
        removed until they fit.  The manifest is compacted to the
        surviving saves (hit events are pruned — they have served their
        statistical purpose).  With neither bound set this is a no-op
        that still compacts the manifest.

        Run gc while the store is quiescent: compaction is read-rewrite-
        replace, so manifest lines appended by a concurrently running
        sweep inside that window are dropped from the *log* (stats may
        undercount until their objects are re-saved).  Cached objects
        themselves are never affected — fetches hit regardless of what
        the manifest says.
        """
        now = time.time()
        objects = sorted(
            (
                (stat.st_mtime, stat.st_size, p)
                for p in self.objects_dir.glob("*/*.json.gz")
                for stat in (p.stat(),)
            ),
            key=lambda item: item[0],
        )
        doomed: List[Path] = []
        if max_age_seconds is not None:
            cutoff = now - max_age_seconds
            doomed.extend(p for mtime, _, p in objects if mtime < cutoff)
        if max_total_bytes is not None:
            doomed_set = set(doomed)
            remaining = [o for o in objects if o[2] not in doomed_set]
            excess = sum(size for _, size, _ in remaining) - max_total_bytes
            for _, size, path in remaining:  # oldest first
                if excess <= 0:
                    break
                doomed.append(path)
                excess -= size
        bytes_freed = 0
        for path in doomed:
            try:
                bytes_freed += path.stat().st_size
                path.unlink()
            except OSError:  # pragma: no cover - concurrent gc
                continue
        survivors = {
            p.name.removesuffix(".json.gz")
            for p in self.objects_dir.glob("*/*.json.gz")
        }
        # Compact the manifest: surviving saves only, newest line per key.
        keep: Dict[str, Dict] = {}
        for record in self._manifest_records():
            if record.get("event") == "hit":
                continue
            key = record.get("key")
            if key in survivors:
                keep[key] = record
        tmp = self.manifest_path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            for record in keep.values():
                handle.write(canonical_params(record) + "\n")
        os.replace(tmp, self.manifest_path)
        return GcReport(
            removed=len(doomed),
            kept=len(survivors),
            bytes_freed=bytes_freed,
        )

    def __len__(self) -> int:
        """Number of stored objects (walks the object tree)."""
        return sum(1 for _ in self.objects_dir.glob("*/*.json.gz"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExperimentStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def coerce_store(
    store: Union[None, str, Path, ExperimentStore]
) -> Optional[ExperimentStore]:
    """Accept None, a path, or a store instance at API boundaries."""
    if store is None or isinstance(store, ExperimentStore):
        return store
    return ExperimentStore(store)


def store_dir(
    store: Union[None, str, Path, ExperimentStore]
) -> Optional[str]:
    """The inverse of :func:`coerce_store`: a picklable directory string.

    Process-pool jobs carry the store by path (workers reopen it
    locally); this is the one place that flattening lives.
    """
    if store is None:
        return None
    if isinstance(store, ExperimentStore):
        return str(store.root)
    return str(store)
