"""Multi-stage fabric execution: chained Stage replay with per-stage metrics.

This is the runtime behind :mod:`repro.models.composite`: it runs a
:class:`~repro.models.FabricSpec` end to end by chaining
:class:`~repro.sim.stage.Stage` adapters — stage-k finalized departures
become stage-(k+1) arrival windows through the link's port map — while
attributing metrics both per stage and end to end.

Coupling model
--------------
Routing is destination-preserving: a packet for final output ``d`` exits
every stage at port ``d`` and enters the next stage at input ``map[d]``.
A finalized departure at slot ``t`` is re-injected at arrival slot ``t``
downstream.  Within the coupled window, downstream arrivals are ordered
by ``(slot, input, wire)``: the slot/input order is the arrival order
the traffic generators pin (per-slot lists sorted by input port) and the
``wire`` tie-break is the upstream stage's own within-slot observation
order — a *window-invariant* key, so the streamed replay couples packets
in exactly the order the monolithic replay does and the chain stays
bit-identical under any ``window_slots``.

Downstream sequence numbers are assigned per VOQ at coupling time (the
downstream stage's reordering detector watches the *link* order, exactly
as a real wire would deliver).  A pending-identity table keyed by the
downstream ``(voq, seq)`` carries each packet's original identity — VOQ,
sequence number, arrival slot — across the stage, so per-stage delays
can be gated on the *original* arrival's warm-up and the end-to-end
record can be reassembled at the final outputs.  Because stage-(k+1)
arrival slot equals stage-k departure slot, per-packet delays telescope:
the end-to-end delay is exactly the sum of the per-stage delays, and the
per-stage mean decomposition (``stage{k}_mean_delay`` extras) sums to
the end-to-end mean whenever every stage delivers every measured packet.

Memory stays O(window + in-flight): each window is drawn, replayed
through every stage, folded into accumulators and dropped; only the
pending identities of packets still inside the fabric are carried.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .. import telemetry
from ..models.composite import (
    CompositeSwitchModel,
    FabricSpec,
    resolve_fabric,
)
from ..traffic.batch import (
    ArrivalBatch,
    BatchTrafficGenerator,
    stable_voq_argsort,
)
from ..traffic.matrices import validate_matrix
from .fast_engine import (
    _MetricsAccumulator,
    _fold_reordering,
    _observe_throughput,
)
from .kernels.base import Departures, composite_argsort
from .kernels.compiled import kernel_backend
from .metrics import SimulationResult
from .rng import derive_seed, traffic_rng
from .stage import KernelStage, ObjectStage, Stage

__all__ = ["run_fabric", "build_stages"]

#: Sequence-number span packed into the pending-table key
#: (``voq * _SEQ_SPAN + seq``): 2^40 sequence numbers per VOQ leaves
#: 2^23 VOQ ids (n up to ~2900) before the int64 key overflows.
_SEQ_SPAN = 1 << 40


def _stage_seed(seed: int, k: int) -> int:
    """Stage-k seed: stage 0 keeps the run seed (a single-stage identity
    fabric is bit-identical to the plain run); later stages derive."""
    return seed if k == 0 else derive_seed(seed, f"fabric-stage-{k}")


def build_stages(
    composite: CompositeSwitchModel,
    matrix: np.ndarray,
    num_slots: int,
    seed: int,
    engine: str,
) -> List[Stage]:
    """Instantiate one :class:`Stage` per fabric stage for ``engine``.

    Each stage is provisioned from its own derived traffic matrix
    (:func:`repro.models.composite.stage_matrices`) and seed.  The
    vectorized engine wraps each stage's stream kernel in a
    :class:`KernelStage`; the object engine builds the real switch
    instance behind an :class:`ObjectStage`.
    """
    mats = composite.stage_matrices(matrix)
    stages: List[Stage] = []
    for k, (model, params, stage_matrix) in enumerate(
        zip(composite.models, composite.stage_params, mats)
    ):
        seed_k = _stage_seed(seed, k)
        label = f"stage{k}.{model.name}"
        if engine == "vectorized":
            stages.append(
                KernelStage(
                    model, stage_matrix, seed_k, num_slots, params,
                    label=label,
                )
            )
        else:
            n = stage_matrix.shape[0]
            switch = model.build(n, stage_matrix, seed_k, **params)
            stages.append(ObjectStage(switch, num_slots, label=label))
    return stages


class _LinkCoupler:
    """One inter-stage link: departures in, arrival windows out.

    Owns the link's per-VOQ sequence counters and the pending-identity
    table of packets currently inside the downstream stage.
    """

    def __init__(self, n: int, mapped: np.ndarray) -> None:
        self.n = n
        if mapped.shape != (n,):
            raise ValueError(
                f"port map has {len(mapped)} entries for a {n}-port link "
                f"(stage sizes must match across the chain)"
            )
        self._map = mapped
        self._seq_next = np.zeros(n * n, dtype=np.int64)
        # Pending identities, consolidated lazily at join time:
        # key = voq_down * _SEQ_SPAN + seq_down.
        self._keys = np.empty(0, dtype=np.int64)
        self._orig = tuple(np.empty(0, dtype=np.int64) for _ in range(3))
        self._chunks: List[Tuple[np.ndarray, ...]] = []

    def _assign_seqs(self, voqs: np.ndarray) -> np.ndarray:
        """Per-VOQ consecutive link sequence numbers, in link order
        (mirrors :meth:`BatchTrafficGenerator._assign_seqs`)."""
        seqs = np.empty(len(voqs), dtype=np.int64)
        if len(voqs) == 0:
            return seqs
        order = stable_voq_argsort(voqs, self.n)
        sorted_voqs = voqs[order]
        counts = np.bincount(voqs, minlength=self.n * self.n)
        group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        positions = np.arange(len(voqs)) - group_starts[sorted_voqs]
        seqs[order] = positions + self._seq_next[sorted_voqs]
        self._seq_next += counts
        return seqs

    def couple(
        self,
        dep: Departures,
        orig: Tuple[np.ndarray, np.ndarray, np.ndarray],
        start_slot: int,
        end_slot: int,
    ) -> ArrivalBatch:
        """Turn finalized upstream departures into the downstream
        arrival window ``[start_slot, end_slot)``."""
        n = self.n
        outputs = dep.voq % n  # destination-preserving routing
        inputs = self._map[outputs]
        # Link delivery order: (slot, input, wire).  Within one slot a
        # stage emits at most one packet per output, so inputs are
        # distinct and the wire tie-break only orders multi-release
        # stages (FOFF), where wire is the global observation rank —
        # either way the key is window-invariant.
        order = np.lexsort((dep.wire, inputs, dep.departure))
        slots = dep.departure[order]
        inputs = inputs[order]
        outputs = outputs[order]
        voq_down = inputs * n + outputs
        seqs = self._assign_seqs(voq_down)
        if len(seqs) and int(self._seq_next.max()) >= _SEQ_SPAN:
            raise OverflowError("link sequence numbers exceed key span")
        self._chunks.append(
            (
                voq_down * _SEQ_SPAN + seqs,
                orig[0][order],
                orig[1][order],
                orig[2][order],
            )
        )
        return ArrivalBatch(
            n=n,
            num_slots=end_slot - start_slot,
            slots=slots,
            inputs=inputs,
            outputs=outputs,
            seqs=seqs,
            start_slot=start_slot,
        )

    def _consolidate(self) -> None:
        if not self._chunks:
            return
        keys = np.concatenate([self._keys] + [c[0] for c in self._chunks])
        orig = tuple(
            np.concatenate([self._orig[i]] + [c[i + 1] for c in self._chunks])
            for i in range(3)
        )
        self._chunks = []
        order = np.argsort(keys)
        self._keys = keys[order]
        self._orig = tuple(a[order] for a in orig)

    def join(
        self, dep: Departures
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Original identities (voq, seq, arrival) of the downstream
        departures, aligned to ``dep``; drops them from the table."""
        self._consolidate()
        keys = dep.voq * _SEQ_SPAN + dep.seq
        idx = np.searchsorted(self._keys, keys)
        if len(keys) and (
            np.any(idx >= len(self._keys))
            or np.any(self._keys[np.minimum(idx, len(self._keys) - 1)] != keys)
        ):
            raise RuntimeError(
                "downstream departure without a pending identity — "
                "stage emitted a packet it was never fed"
            )
        orig = tuple(a[idx] for a in self._orig)
        keep = np.ones(len(self._keys), dtype=bool)
        keep[idx] = False
        self._keys = self._keys[keep]
        self._orig = tuple(a[keep] for a in self._orig)
        return orig

    @property
    def pending(self) -> int:
        """Packets currently inside the downstream stage."""
        return len(self._keys) + sum(len(c[0]) for c in self._chunks)


class _StageStats:
    """Per-stage fold: reordering at the stage's outputs, delay sums
    gated on the packet's *original* (fabric-ingress) warm-up."""

    def __init__(self, n: int) -> None:
        self._prev_max = np.full(n * n, -1, dtype=np.int64)
        self.observed = 0
        self.late = 0
        self.displacement = 0
        self.delay_total = 0
        self.measured = 0

    def add(self, dep: Departures, measured: np.ndarray) -> None:
        if len(dep.voq) == 0:
            return
        self.observed += len(dep.voq)
        within = dep.wire if dep.wire_is_rank else dep.departure
        order = composite_argsort(dep.voq, within)
        voq = dep.voq[order]
        seq = dep.seq[order]
        late, prev = _fold_reordering(voq, seq, self._prev_max)
        if late.any():
            self.late += int(late.sum())
            self.displacement = max(
                self.displacement, int(np.max(prev[late] - seq[late]))
            )
        delays = (dep.departure - dep.arrival)[measured]
        self.delay_total += int(delays.sum())
        self.measured += int(len(delays))

    def extras(self, k: int) -> Dict[str, float]:
        mean = (
            self.delay_total / self.measured if self.measured else float("nan")
        )
        return {
            f"stage{k}_mean_delay": mean,
            f"stage{k}_measured": float(self.measured),
            f"stage{k}_observed": float(self.observed),
            f"stage{k}_late_packets": float(self.late),
            f"stage{k}_max_displacement": float(self.displacement),
        }


class _FabricRun:
    """One fabric execution: windows in, a :class:`SimulationResult` out.

    Drives the stage chain window by window (:meth:`feed`) and flushes
    it (:meth:`finish`), folding three views as it goes: per-stage
    reordering/delay stats, each stage's extras, and the end-to-end
    record — synthetic :class:`Departures` carrying the *original*
    identity with the *final* departure slot and a global observation
    rank at the fabric's outputs — into the same
    :class:`_MetricsAccumulator` single-switch runs use.
    """

    def __init__(
        self,
        composite: CompositeSwitchModel,
        matrix: np.ndarray,
        num_slots: int,
        seed: int,
        warmup: int,
        keep_samples: bool,
        engine: str,
    ) -> None:
        n = matrix.shape[0]
        self.warmup = warmup
        self.stages = build_stages(composite, matrix, num_slots, seed, engine)
        maps = composite.port_maps(n)
        self.couplers = [_LinkCoupler(n, m) for m in maps]
        self.stats = [_StageStats(n) for _ in self.stages]
        self.stage_extras: List[Optional[Dict]] = [None] * len(self.stages)
        self.e2e = _MetricsAccumulator(n, warmup, keep_samples)
        self._rank = 0
        self._boundary = 0

    def feed(self, window: ArrivalBatch) -> None:
        start, end = self._boundary, window.end_slot
        self._boundary = end
        dep = self.stages[0].feed(window)
        self._cascade(dep, start, end, final=False)

    def finish(self, window: Optional[ArrivalBatch] = None) -> None:
        start = self._boundary
        end = window.end_slot if window is not None else start
        dep, extras = self.stages[0].finish(window)
        self.stage_extras[0] = extras
        self._cascade(dep, start, end, final=True)

    def _cascade(
        self, dep: Departures, start: int, end: int, final: bool
    ) -> None:
        orig = (dep.voq, dep.seq, dep.arrival)
        for k in range(len(self.stages)):
            self.stats[k].add(dep, orig[2] >= self.warmup)
            if k == len(self.stages) - 1:
                self._add_e2e(dep, orig)
                return
            coupler = self.couplers[k]
            if final:
                # The drain tail can depart past the last window cut;
                # stretch the final coupled window to cover it.
                tail_end = max(end, start)
                if len(dep.voq):
                    tail_end = max(tail_end, int(dep.departure.max()) + 1)
                with telemetry.trace("fabric.couple", link=k):
                    win = coupler.couple(dep, orig, start, tail_end)
                dep, extras = self.stages[k + 1].finish(win)
                self.stage_extras[k + 1] = extras
            else:
                with telemetry.trace("fabric.couple", link=k):
                    win = coupler.couple(dep, orig, start, end)
                dep = self.stages[k + 1].feed(win)
            with telemetry.trace("fabric.join", link=k):
                orig = coupler.join(dep)
            if telemetry.enabled():
                # Occupancy of the downstream stage after this window's
                # join: the packets still inside the fabric on this link.
                telemetry.set_gauge(
                    f"fabric.in_flight.stage{k + 1}", coupler.pending
                )

    def _add_e2e(
        self, dep: Departures, orig: Tuple[np.ndarray, ...]
    ) -> None:
        count = len(dep.voq)
        if count == 0:
            return
        # Observation rank at the fabric outputs: windows arrive in
        # nondecreasing departure order, so a per-window (departure,
        # wire) sort plus a running offset is the global order.
        obs = composite_argsort(dep.departure, dep.wire)
        rank = np.empty(count, dtype=np.int64)
        rank[obs] = np.arange(self._rank, self._rank + count, dtype=np.int64)
        self._rank += count
        self.e2e.add(
            Departures(
                voq=orig[0],
                seq=orig[1],
                arrival=orig[2],
                departure=dep.departure,
                wire=rank,
                wire_is_rank=True,
            )
        )

    def result(
        self,
        reported_name: str,
        injected: int,
        num_slots: int,
        load_label: float,
    ) -> SimulationResult:
        stuck = sum(c.pending for c in self.couplers)
        extras: Dict[str, float] = {"stages": float(len(self.stages))}
        if stuck:
            extras["in_fabric"] = float(stuck)
        for k, stats in enumerate(self.stats):
            extras.update(stats.extras(k))
            for key, value in (self.stage_extras[k] or {}).items():
                extras[f"stage{k}_{key}"] = float(value)
        return self.e2e.result(
            reported_name, injected, num_slots, load_label, extras
        )


def run_fabric(
    fabric: Union[str, Dict, FabricSpec],
    matrix,
    num_slots: int,
    seed: int = 0,
    load_label: float = float("nan"),
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    engine: str = "vectorized",
    batch_traffic: Optional[BatchTrafficGenerator] = None,
    window_slots: Optional[int] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Run a multi-stage fabric; the composite analogue of
    :func:`repro.sim.experiment.run_single` /
    :func:`repro.sim.fast_engine.run_single_fast`.

    ``fabric`` is a registered fabric name, a spec dict, or a
    :class:`~repro.models.FabricSpec`.  Seed discipline matches the
    single-switch runs (traffic stream derived from ``seed``; stage 0
    keeps the run seed, later stages derive per-stage child seeds), so a
    single-stage identity fabric reproduces ``run_single_fast``
    bit-for-bit.  ``window_slots`` streams the whole chain — every stage
    advances window by window, so peak arrival memory is O(window), and
    results are bit-identical to the monolithic replay.  ``engine`` is
    ``"vectorized"`` (every stage must be
    :data:`~repro.models.Capability.COMPOSABLE`) or ``"object"`` (any
    registered switch; same coupling, object switches behind
    :class:`~repro.sim.stage.ObjectStage`).

    The result is labeled with the fabric name and carries per-stage
    extras: ``stage{k}_mean_delay`` (gated on fabric-ingress warm-up, so
    the stage means sum to the end-to-end mean), ``stage{k}_observed`` /
    ``stage{k}_late_packets`` / ``stage{k}_max_displacement`` (the
    stage-local reordering view), plus each stage's own kernel extras
    under the same prefix.  ``backend`` scopes a kernel-backend
    selection ("numpy"/"compiled") to this run; results are identical
    either way.
    """
    if backend is not None:
        with kernel_backend(backend):
            return run_fabric(
                fabric, matrix, num_slots, seed, load_label,
                warmup_fraction, keep_samples, engine, batch_traffic,
                window_slots,
            )
    spec = resolve_fabric(fabric)
    composite = CompositeSwitchModel(spec)
    if engine not in ("object", "vectorized"):
        raise ValueError(
            f"unknown engine {engine!r}; known: object, vectorized"
        )
    if engine == "vectorized":
        composite.require_engine("vectorized")
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    matrix = validate_matrix(matrix)
    n = matrix.shape[0]
    if batch_traffic is None:
        batch_traffic = BatchTrafficGenerator(matrix, traffic_rng(seed))
    if batch_traffic.n != n:
        raise ValueError("batch traffic size does not match matrix")

    warmup = int(num_slots * warmup_fraction)
    run = _FabricRun(
        composite, matrix, num_slots, seed, warmup, keep_samples, engine
    )
    if window_slots is not None and window_slots <= 0:
        raise ValueError("window_slots must be positive")
    with telemetry.trace(
        "replay.fabric",
        fabric=composite.reported_name,
        stages=len(spec.stages),
        slots=num_slots,
        window_slots=window_slots,
    ):
        if window_slots is None or window_slots >= num_slots:
            with telemetry.trace("traffic.draw"):
                batch = batch_traffic.draw(num_slots)
            injected = len(batch)
            with telemetry.trace("fabric.finish"):
                run.finish(batch)
        else:
            injected = 0
            windows = telemetry.traced_iter(
                "traffic.draw",
                batch_traffic.draw_chunks(num_slots, window_slots),
            )
            for window in windows:
                injected += len(window)
                with telemetry.trace(
                    "fabric.window",
                    slots=window.num_slots,
                    packets=len(window),
                ) as span:
                    run.feed(window)
                _observe_throughput(span.span, window.num_slots, len(window))
                telemetry.count("replay.windows")
            with telemetry.trace("fabric.finish"):
                run.finish()
    return run.result(
        composite.reported_name, injected, num_slots, load_label
    )
