"""Simulation harness: engine, metrics, experiments, seeded randomness."""

from .engine import SimulationEngine, simulate
from .experiment import (
    ENGINES,
    PAPER_SWITCHES,
    TRAFFIC_PATTERNS,
    delay_vs_load_sweep,
    run_single,
)
from .fast_engine import run_single_fast
from .metrics import DelayStats, SimulationMetrics, SimulationResult
from .parallel import SweepJob, parallel_delay_sweep, run_jobs
from .replication import ReplicatedResult, replicate
from .stats import BatchMeansResult, batch_means, compare_means, mser_truncation
from .rng import RngRegistry, derive_seed, spawn_generator

__all__ = [
    "BatchMeansResult",
    "DelayStats",
    "ENGINES",
    "FAST_ENGINE_SWITCHES",
    "PAPER_SWITCHES",
    "ReplicatedResult",
    "RngRegistry",
    "SWITCH_BUILDERS",
    "SimulationEngine",
    "SimulationMetrics",
    "SweepJob",
    "SimulationResult",
    "TRAFFIC_PATTERNS",
    "batch_means",
    "build_switch",
    "compare_means",
    "mser_truncation",
    "parallel_delay_sweep",
    "delay_vs_load_sweep",
    "derive_seed",
    "replicate",
    "run_jobs",
    "run_single",
    "run_single_fast",
    "simulate",
    "supports_fast_engine",
    "spawn_generator",
]

#: Deprecated re-exports, resolved lazily so that importing ``repro.sim``
#: does not itself emit DeprecationWarnings; accessing any of these names
#: warns once at the access site (the shims live in their home modules).
_DEPRECATED = {
    "SWITCH_BUILDERS": "experiment",
    "build_switch": "experiment",
    "FAST_ENGINE_SWITCHES": "fast_engine",
    "supports_fast_engine": "fast_engine",
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        from importlib import import_module

        module = import_module(f".{_DEPRECATED[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
