"""Simulation harness: engine, metrics, experiments, seeded randomness."""

from .engine import SimulationEngine, simulate
from .experiment import (
    ENGINES,
    PAPER_SWITCHES,
    SWITCH_BUILDERS,
    TRAFFIC_PATTERNS,
    build_switch,
    delay_vs_load_sweep,
    run_single,
)
from .fast_engine import (
    FAST_ENGINE_SWITCHES,
    run_single_fast,
    supports_fast_engine,
)
from .metrics import DelayStats, SimulationMetrics, SimulationResult
from .parallel import SweepJob, parallel_delay_sweep, run_jobs
from .replication import ReplicatedResult, replicate
from .stats import BatchMeansResult, batch_means, compare_means, mser_truncation
from .rng import RngRegistry, derive_seed, spawn_generator

__all__ = [
    "BatchMeansResult",
    "DelayStats",
    "ENGINES",
    "FAST_ENGINE_SWITCHES",
    "PAPER_SWITCHES",
    "ReplicatedResult",
    "RngRegistry",
    "SWITCH_BUILDERS",
    "SimulationEngine",
    "SimulationMetrics",
    "SweepJob",
    "SimulationResult",
    "TRAFFIC_PATTERNS",
    "batch_means",
    "build_switch",
    "compare_means",
    "mser_truncation",
    "parallel_delay_sweep",
    "delay_vs_load_sweep",
    "derive_seed",
    "replicate",
    "run_jobs",
    "run_single",
    "run_single_fast",
    "simulate",
    "supports_fast_engine",
    "spawn_generator",
]
