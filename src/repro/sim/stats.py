"""Simulation output analysis: warm-up detection and confidence intervals.

Steady-state delay estimation from a single run needs two pieces of
methodology the raw metrics don't provide:

* **warm-up truncation** — MSER (Minimum Standard Error Rule), the
  standard automated pick of how much initial transient to discard;
* **batch means** — grouping the correlated post-warm-up samples into
  batches whose means are approximately independent, yielding an honest
  confidence interval for the steady-state mean.

These operate on plain sequences of per-packet delays (or any stationary
series), so they apply to every switch in the library.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "MIN_MSER_TAIL",
    "mser_truncation",
    "batch_means",
    "BatchMeansResult",
    "compare_means",
]


class BatchMeansResult(NamedTuple):
    """Steady-state mean estimate with a confidence interval."""

    mean: float
    half_width: float
    confidence: float
    batches: int
    batch_size: int

    @property
    def interval(self) -> tuple:
        """The (low, high) confidence interval."""
        return (self.mean - self.half_width, self.mean + self.half_width)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        low, high = self.interval
        return low <= value <= high


#: Smallest tail a candidate MSER truncation may leave.  A near-empty
#: tail has a degenerate standard error (a 1-sample tail scores 0), so
#: without a floor ``max_fraction`` close to 1 discards nearly the whole
#: series; the MSER-5 literature's batch floor serves the same purpose.
MIN_MSER_TAIL = 5


def mser_truncation(series: Sequence[float], max_fraction: float = 0.5) -> int:
    """MSER warm-up point: the truncation minimizing the standard error.

    Scans candidate truncation points ``d`` and returns the ``d`` (at most
    ``max_fraction`` of the series, and always leaving a tail of at least
    :data:`MIN_MSER_TAIL` samples) minimizing
    ``std(series[d:]) / sqrt(len - d)``.  Classic MSER evaluates every
    prefix; we scan on a stride for long series (the optimum is flat).

    >>> series = [100.0] * 20 + [10.0] * 200
    >>> 15 <= mser_truncation(series) <= 25
    True
    """
    values = np.asarray(series, dtype=float)
    if values.size < 4:
        return 0
    limit = min(int(values.size * max_fraction), values.size - MIN_MSER_TAIL)
    if limit < 0:
        return 0
    stride = max(1, limit // 256)
    best_d, best_score = 0, math.inf
    for d in range(0, limit + 1, stride):
        tail = values[d:]
        score = float(tail.std()) / math.sqrt(tail.size)
        if score < best_score:
            best_d, best_score = d, score
    return best_d


def batch_means(
    series: Sequence[float],
    batches: int = 20,
    confidence: float = 0.95,
) -> BatchMeansResult:
    """Batch-means confidence interval for the steady-state mean.

    Splits the series into ``batches`` equal contiguous batches, treats
    the batch means as i.i.d. normal, and applies the Student-t interval.
    Callers should truncate warm-up first (:func:`mser_truncation`).
    """
    values = np.asarray(series, dtype=float)
    if batches < 2:
        raise ValueError("need at least 2 batches")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if values.size < 2 * batches:
        raise ValueError(
            f"series of {values.size} too short for {batches} batches"
        )
    batch_size = values.size // batches
    trimmed = values[: batch_size * batches]
    means = trimmed.reshape(batches, batch_size).mean(axis=1)
    grand = float(means.mean())
    stderr = float(means.std(ddof=1)) / math.sqrt(batches)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=batches - 1))
    return BatchMeansResult(
        mean=grand,
        half_width=t_crit * stderr,
        confidence=confidence,
        batches=batches,
        batch_size=batch_size,
    )


def compare_means(
    a: Sequence[float],
    b: Sequence[float],
    batches: int = 20,
    confidence: float = 0.95,
) -> tuple:
    """Difference of two steady-state means with a pooled t interval.

    Returns ``(difference_a_minus_b, half_width)``; the difference is
    statistically significant at the given confidence iff
    ``abs(difference) > half_width``.  Used by the ablation analyses to
    rank switches honestly rather than by point estimates.
    """
    result_a = batch_means(a, batches=batches, confidence=confidence)
    result_b = batch_means(b, batches=batches, confidence=confidence)
    diff = result_a.mean - result_b.mean
    half_width = math.hypot(result_a.half_width, result_b.half_width)
    return diff, half_width
