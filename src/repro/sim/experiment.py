"""Experiment orchestration: switch registry and parameter sweeps.

This is the layer the figure generators and benchmarks sit on: it knows how
to build every switch in the library from a (size, rate-matrix, seed)
triple and how to sweep load levels the way the paper's §6 does.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.interval_assignment import PlacementMode, StripeIntervalAssignment
from ..core.sprinklers_switch import SprinklersSwitch
from ..sim.engine import SimulationEngine
from ..sim.fast_engine import run_single_fast, supports_fast_engine
from ..sim.metrics import SimulationResult
from ..sim.rng import derive_seed
from ..switching.baseline import BaselineLoadBalancedSwitch
from ..switching.cms import CmsSwitch
from ..switching.foff import FoffSwitch
from ..switching.hashing import TcpHashingSwitch
from ..switching.output_queued import OutputQueuedSwitch
from ..switching.pf import PaddedFramesSwitch
from ..switching.ufs import UfsSwitch
from ..traffic.generator import TrafficGenerator
from ..traffic.matrices import diagonal_matrix, uniform_matrix

__all__ = [
    "ENGINES",
    "SWITCH_BUILDERS",
    "PAPER_SWITCHES",
    "TRAFFIC_PATTERNS",
    "build_switch",
    "run_single",
    "delay_vs_load_sweep",
]

#: Simulation engines: the per-packet object model (the auditable
#: reference and ordering oracle) and the NumPy batch replay of
#: :mod:`repro.sim.fast_engine` (identical results, built for the paper's
#: 200k-slot scale).
ENGINES: Sequence[str] = ("object", "vectorized")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        known = ", ".join(ENGINES)
        raise ValueError(f"unknown engine {engine!r}; known: {known}")

SwitchBuilder = Callable[[int, np.ndarray, int], object]


def _build_sprinklers(n: int, matrix: np.ndarray, seed: int) -> SprinklersSwitch:
    rng = np.random.default_rng(derive_seed(seed, "sprinklers-placement"))
    assignment = StripeIntervalAssignment(matrix, rng=rng, mode=PlacementMode.OLS)
    return SprinklersSwitch(assignment)


def _build_sprinklers_adaptive(
    n: int, matrix: np.ndarray, seed: int
) -> SprinklersSwitch:
    rng = np.random.default_rng(derive_seed(seed, "sprinklers-placement"))
    # Adaptive mode starts from the oracle assignment but re-sizes online.
    assignment = StripeIntervalAssignment(matrix, rng=rng, mode=PlacementMode.OLS)
    return SprinklersSwitch(assignment, adaptive=True)


#: Everything the library can simulate, by name.
SWITCH_BUILDERS: Dict[str, SwitchBuilder] = {
    "load-balanced": lambda n, m, s: BaselineLoadBalancedSwitch(n),
    "ufs": lambda n, m, s: UfsSwitch(n),
    "foff": lambda n, m, s: FoffSwitch(n),
    "pf": lambda n, m, s: PaddedFramesSwitch(n),
    "sprinklers": _build_sprinklers,
    "sprinklers-adaptive": _build_sprinklers_adaptive,
    "tcp-hashing": lambda n, m, s: TcpHashingSwitch(n, salt=s),
    "cms": lambda n, m, s: CmsSwitch(n),
    "output-queued": lambda n, m, s: OutputQueuedSwitch(n),
}

#: The five curves of the paper's Figs. 6-7, in the paper's legend order.
PAPER_SWITCHES: Sequence[str] = (
    "load-balanced",
    "ufs",
    "foff",
    "pf",
    "sprinklers",
)

#: The two workload patterns of the paper's §6.
TRAFFIC_PATTERNS: Dict[str, Callable[[int, float], np.ndarray]] = {
    "uniform": uniform_matrix,
    "diagonal": diagonal_matrix,
}


def build_switch(name: str, n: int, matrix: np.ndarray, seed: int):
    """Instantiate a switch by registry name."""
    try:
        builder = SWITCH_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(SWITCH_BUILDERS))
        raise ValueError(f"unknown switch {name!r}; known: {known}") from None
    return builder(n, matrix, seed)


def run_single(
    switch_name: str,
    matrix: np.ndarray,
    num_slots: int,
    seed: int = 0,
    load_label: float = float("nan"),
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    engine: str = "object",
) -> SimulationResult:
    """Build switch + traffic from a seed and simulate one configuration.

    ``engine="vectorized"`` routes through the NumPy batch engine
    (:mod:`repro.sim.fast_engine`), which reproduces the object engine's
    results exactly for the switches it models; switches without a
    vectorized data path (FOFF, PF, CMS, hashing, adaptive Sprinklers)
    transparently fall back to the object engine so mixed sweeps keep
    working.
    """
    _check_engine(engine)
    if engine == "vectorized" and supports_fast_engine(switch_name):
        return run_single_fast(
            switch_name,
            matrix,
            num_slots,
            seed=seed,
            load_label=load_label,
            warmup_fraction=warmup_fraction,
            keep_samples=keep_samples,
        )
    n = matrix.shape[0]
    switch = build_switch(switch_name, n, matrix, seed)
    traffic_rng = np.random.default_rng(derive_seed(seed, "traffic"))
    traffic = TrafficGenerator(matrix, traffic_rng)
    engine = SimulationEngine(
        switch,
        traffic,
        warmup_fraction=warmup_fraction,
        keep_samples=keep_samples,
    )
    return engine.run(num_slots, load_label=load_label)


def delay_vs_load_sweep(
    pattern: str,
    n: int = 32,
    loads: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
    num_slots: int = 50_000,
    switches: Optional[Sequence[str]] = None,
    seed: int = 0,
    keep_samples: bool = False,
    engine: str = "object",
) -> List[SimulationResult]:
    """The paper's §6 experiment grid: all switches across a load sweep.

    ``pattern`` is a :data:`TRAFFIC_PATTERNS` key ("uniform" for Fig. 6,
    "diagonal" for Fig. 7).  Returns one result per (switch, load).
    ``engine="vectorized"`` runs each supported switch on the fast batch
    engine (same seeds, same results, paper-scale wall-clock).
    """
    if pattern not in TRAFFIC_PATTERNS:
        known = ", ".join(sorted(TRAFFIC_PATTERNS))
        raise ValueError(f"unknown pattern {pattern!r}; known: {known}")
    _check_engine(engine)
    if switches is None:
        switches = PAPER_SWITCHES
    make_matrix = TRAFFIC_PATTERNS[pattern]
    results: List[SimulationResult] = []
    for load in loads:
        matrix = make_matrix(n, load)
        for name in switches:
            results.append(
                run_single(
                    name,
                    matrix,
                    num_slots,
                    seed=seed,
                    load_label=load,
                    keep_samples=keep_samples,
                    engine=engine,
                )
            )
    return results
