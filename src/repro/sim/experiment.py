"""Experiment orchestration: switch registry, scenarios, caching, sweeps.

This is the layer the figure generators and benchmarks sit on: it knows how
to build every switch in the library from a (size, rate-matrix, seed)
triple, how to run declarative workload scenarios
(:mod:`repro.scenarios`) on either engine, how to cache results in the
experiment store (:mod:`repro.store`), and how to sweep load levels the
way the paper's §6 does.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.interval_assignment import PlacementMode, StripeIntervalAssignment
from ..core.sprinklers_switch import SprinklersSwitch
from ..scenarios.build import build_batch_traffic, build_traffic
from ..scenarios.registry import SCENARIOS, resolve_scenario
from ..scenarios.spec import ScenarioSpec, effective_matrix
from ..sim.engine import SimulationEngine
from ..sim.fast_engine import run_single_fast, supports_fast_engine
from ..sim.metrics import SimulationResult
from ..sim.rng import derive_seed
from ..store import ExperimentStore, coerce_store
from ..switching.baseline import BaselineLoadBalancedSwitch
from ..switching.cms import CmsSwitch
from ..switching.foff import FoffSwitch
from ..switching.hashing import TcpHashingSwitch
from ..switching.output_queued import OutputQueuedSwitch
from ..switching.pf import PaddedFramesSwitch
from ..switching.ufs import UfsSwitch
from ..traffic.generator import TrafficGenerator
from ..traffic.matrices import diagonal_matrix, uniform_matrix

__all__ = [
    "ENGINES",
    "SWITCH_BUILDERS",
    "PAPER_SWITCHES",
    "TRAFFIC_PATTERNS",
    "build_switch",
    "run_single",
    "delay_vs_load_sweep",
    "single_run_params",
]

#: Simulation engines: the per-packet object model (the auditable
#: reference and ordering oracle) and the NumPy batch replay of
#: :mod:`repro.sim.fast_engine` (identical results, built for the paper's
#: 200k-slot scale).
ENGINES: Sequence[str] = ("object", "vectorized")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        known = ", ".join(ENGINES)
        raise ValueError(f"unknown engine {engine!r}; known: {known}")

SwitchBuilder = Callable[[int, np.ndarray, int], object]


def _build_sprinklers(n: int, matrix: np.ndarray, seed: int) -> SprinklersSwitch:
    rng = np.random.default_rng(derive_seed(seed, "sprinklers-placement"))
    assignment = StripeIntervalAssignment(matrix, rng=rng, mode=PlacementMode.OLS)
    return SprinklersSwitch(assignment)


def _build_sprinklers_adaptive(
    n: int, matrix: np.ndarray, seed: int
) -> SprinklersSwitch:
    rng = np.random.default_rng(derive_seed(seed, "sprinklers-placement"))
    # Adaptive mode starts from the oracle assignment but re-sizes online.
    assignment = StripeIntervalAssignment(matrix, rng=rng, mode=PlacementMode.OLS)
    return SprinklersSwitch(assignment, adaptive=True)


#: Everything the library can simulate, by name.
SWITCH_BUILDERS: Dict[str, SwitchBuilder] = {
    "load-balanced": lambda n, m, s: BaselineLoadBalancedSwitch(n),
    "ufs": lambda n, m, s: UfsSwitch(n),
    "foff": lambda n, m, s: FoffSwitch(n),
    "pf": lambda n, m, s: PaddedFramesSwitch(n),
    "sprinklers": _build_sprinklers,
    "sprinklers-adaptive": _build_sprinklers_adaptive,
    "tcp-hashing": lambda n, m, s: TcpHashingSwitch(n, salt=s),
    "cms": lambda n, m, s: CmsSwitch(n),
    "output-queued": lambda n, m, s: OutputQueuedSwitch(n),
}

#: The five curves of the paper's Figs. 6-7, in the paper's legend order.
PAPER_SWITCHES: Sequence[str] = (
    "load-balanced",
    "ufs",
    "foff",
    "pf",
    "sprinklers",
)

#: The two workload patterns of the paper's §6.
TRAFFIC_PATTERNS: Dict[str, Callable[[int, float], np.ndarray]] = {
    "uniform": uniform_matrix,
    "diagonal": diagonal_matrix,
}


def build_switch(name: str, n: int, matrix: np.ndarray, seed: int):
    """Instantiate a switch by registry name."""
    try:
        builder = SWITCH_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(SWITCH_BUILDERS))
        raise ValueError(f"unknown switch {name!r}; known: {known}") from None
    return builder(n, matrix, seed)


def single_run_params(
    switch_name: str,
    matrix: np.ndarray,
    num_slots: int,
    seed: int,
    load_label: float,
    warmup_fraction: float,
    keep_samples: bool,
    engine: str,
    spec: Optional[ScenarioSpec],
) -> Dict:
    """The experiment store's cache-key parameters for one run.

    The workload identity is the scenario spec's dict form when the run
    is declarative, or a SHA-256 digest of the raw matrix bytes for ad-hoc
    matrices (see EXPERIMENTS.md, "cache-key scheme").  ``load_label``
    must be the workload-determining load for scenario runs (``run_single``
    guarantees this by keying on the scenario's target load).
    """
    if spec is not None:
        workload: Dict = {"scenario": spec.to_dict()}
    else:
        digest = hashlib.sha256(
            np.ascontiguousarray(matrix, dtype=float).tobytes()
        ).hexdigest()
        workload = {"matrix_sha256": digest}
    return {
        "schema": 1,
        "kind": "run_single",
        "switch": switch_name,
        "engine": engine,
        "n": int(matrix.shape[0]),
        "slots": int(num_slots),
        "seed": int(seed),
        "load": float(load_label),
        "warmup_fraction": float(warmup_fraction),
        "keep_samples": bool(keep_samples),
        "workload": workload,
    }


def _execute_single(
    switch_name: str,
    matrix: np.ndarray,
    num_slots: int,
    seed: int,
    load_label: float,
    warmup_fraction: float,
    keep_samples: bool,
    engine: str,
    spec: Optional[ScenarioSpec],
    spec_load: Optional[float] = None,
) -> SimulationResult:
    """The uncached simulation (the store wraps exactly this function)."""
    n = matrix.shape[0]
    if engine == "vectorized" and supports_fast_engine(switch_name):
        batch_traffic = (
            build_batch_traffic(spec, n, spec_load, seed, num_slots)
            if spec is not None
            else None
        )
        return run_single_fast(
            switch_name,
            matrix,
            num_slots,
            seed=seed,
            load_label=load_label,
            warmup_fraction=warmup_fraction,
            keep_samples=keep_samples,
            batch_traffic=batch_traffic,
        )
    switch = build_switch(switch_name, n, matrix, seed)
    if spec is not None:
        traffic = build_traffic(spec, n, spec_load, seed, num_slots)
    else:
        traffic_rng = np.random.default_rng(derive_seed(seed, "traffic"))
        traffic = TrafficGenerator(matrix, traffic_rng)
    sim = SimulationEngine(
        switch,
        traffic,
        warmup_fraction=warmup_fraction,
        keep_samples=keep_samples,
    )
    return sim.run(num_slots, load_label=load_label)


def run_single(
    switch_name: str,
    matrix: Optional[np.ndarray] = None,
    num_slots: int = 0,
    seed: int = 0,
    load_label: float = float("nan"),
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    engine: str = "object",
    scenario=None,
    n: Optional[int] = None,
    load: Optional[float] = None,
    store: Union[None, str, ExperimentStore] = None,
) -> SimulationResult:
    """Build switch + traffic from a seed and simulate one configuration.

    Workload selection — exactly one of:

    * ``matrix`` — an explicit rate matrix (the historical API), or
    * ``scenario`` with ``n`` and ``load`` — a declarative scenario
      (registry name, spec file path, dict, or
      :class:`~repro.scenarios.spec.ScenarioSpec`); the switch is
      provisioned from the scenario's effective matrix and traffic is
      built by :mod:`repro.scenarios.build` (identically for both
      engines).

    ``engine="vectorized"`` routes through the NumPy batch engine
    (:mod:`repro.sim.fast_engine`), which reproduces the object engine's
    results exactly for the switches it models; switches without a
    vectorized data path (FOFF, PF, CMS, hashing, adaptive Sprinklers)
    transparently fall back to the object engine so mixed sweeps keep
    working.

    ``store`` (an :class:`~repro.store.ExperimentStore` or its directory
    path) caches the result content-addressed by the full configuration;
    a hit skips the simulation entirely.
    """
    _check_engine(engine)
    spec: Optional[ScenarioSpec] = None
    if scenario is not None:
        if matrix is not None:
            raise ValueError("pass either matrix or scenario, not both")
        spec = resolve_scenario(scenario)
        if n is None or load is None:
            raise ValueError("scenario runs require n and load")
        matrix = effective_matrix(spec, n, load)
        if math.isnan(load_label):
            load_label = float(load)
    elif matrix is None:
        raise ValueError("need a matrix or a scenario")
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")

    spec_load = float(load) if load is not None else None
    cache = coerce_store(store)
    if cache is None:
        return _execute_single(
            switch_name, matrix, num_slots, seed, load_label,
            warmup_fraction, keep_samples, engine, spec, spec_load,
        )
    params = single_run_params(
        switch_name, matrix, num_slots, seed,
        spec_load if spec is not None else load_label,
        warmup_fraction, keep_samples, engine, spec,
    )
    cached = cache.fetch(params)
    if cached is not None:
        return cached
    result = _execute_single(
        switch_name, matrix, num_slots, seed, load_label,
        warmup_fraction, keep_samples, engine, spec, spec_load,
    )
    cache.save(params, result)
    return result


def delay_vs_load_sweep(
    pattern: str,
    n: int = 32,
    loads: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
    num_slots: int = 50_000,
    switches: Optional[Sequence[str]] = None,
    seed: int = 0,
    keep_samples: bool = False,
    engine: str = "object",
    store: Union[None, str, ExperimentStore] = None,
) -> List[SimulationResult]:
    """The paper's §6 experiment grid: all switches across a load sweep.

    ``pattern`` is a :data:`TRAFFIC_PATTERNS` key ("uniform" for Fig. 6,
    "diagonal" for Fig. 7) or any scenario designator accepted by
    :func:`repro.scenarios.resolve_scenario` (registry name or spec-file
    path).  Returns one result per (switch, load).  ``engine="vectorized"``
    runs each supported switch on the fast batch engine (same seeds, same
    results, paper-scale wall-clock); ``store`` caches every cell so a
    repeated sweep recomputes nothing.
    """
    spec: Optional[ScenarioSpec] = None
    is_name = isinstance(pattern, str) and not pattern.endswith(
        (".toml", ".json")
    )
    if is_name and pattern in TRAFFIC_PATTERNS:
        pass  # the §6 matrix-family path
    elif is_name and pattern not in SCENARIOS:
        known = ", ".join(sorted(TRAFFIC_PATTERNS) + sorted(SCENARIOS))
        raise ValueError(
            f"unknown pattern {pattern!r}; known patterns and "
            f"scenarios: {known}"
        )
    else:
        # A registered name, spec file, dict, or ScenarioSpec; file and
        # validation errors propagate with their own messages.
        spec = resolve_scenario(pattern)
    _check_engine(engine)
    if switches is None:
        switches = PAPER_SWITCHES
    cache = coerce_store(store)
    results: List[SimulationResult] = []
    for load in loads:
        matrix = (
            TRAFFIC_PATTERNS[pattern](n, load) if spec is None else None
        )
        for name in switches:
            results.append(
                run_single(
                    name,
                    matrix,
                    num_slots,
                    seed=seed,
                    load_label=load,
                    keep_samples=keep_samples,
                    engine=engine,
                    scenario=spec,
                    n=n if spec is not None else None,
                    load=load if spec is not None else None,
                    store=cache,
                )
            )
    return results
