"""Experiment orchestration: engines, scenarios, caching, sweeps.

This is the layer the figure generators and benchmarks sit on: it knows
how to run any registered switch (:mod:`repro.models`) on either engine,
how to run declarative workload scenarios (:mod:`repro.scenarios`), how
to cache results in the experiment store (:mod:`repro.store`), and how
to sweep load levels the way the paper's §6 does.

Switch resolution goes through the switch-model registry exclusively;
the historical names ``SWITCH_BUILDERS`` and ``build_switch`` remain as
deprecation shims backed by it (see the module ``__getattr__`` below).
"""

from __future__ import annotations

import hashlib
import math
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from .. import models, telemetry
from ..models import PAPER_SWITCHES
from ..scenarios.build import build_batch_traffic, build_traffic
from ..scenarios.registry import SCENARIOS, resolve_scenario
from ..scenarios.spec import ScenarioSpec, effective_matrix
from ..sim.engine import SimulationEngine
from ..sim.fast_engine import run_single_fast
from ..sim.kernels.compiled import KERNEL_BACKENDS, kernel_backend
from ..sim.metrics import SimulationResult
from ..sim.rng import traffic_rng
from ..store import ExperimentStore, coerce_store
from ..traffic.generator import TrafficGenerator
from ..traffic.matrices import diagonal_matrix, uniform_matrix

__all__ = [
    "ENGINES",
    "SWITCH_BUILDERS",
    "PAPER_SWITCHES",
    "TRAFFIC_PATTERNS",
    "build_switch",
    "fabric_run_params",
    "resolve_run_params",
    "run_single",
    "delay_vs_load_sweep",
    "single_run_params",
]

#: Simulation engines: the per-packet object model (the auditable
#: reference and ordering oracle) and the NumPy batch replay of
#: :mod:`repro.sim.fast_engine` (identical results, built for the paper's
#: 200k-slot scale).
ENGINES: Sequence[str] = ("object", "vectorized")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        known = ", ".join(ENGINES)
        raise ValueError(f"unknown engine {engine!r}; known: {known}")


#: The two workload patterns of the paper's §6.
TRAFFIC_PATTERNS: Dict[str, Callable[[int, float], np.ndarray]] = {
    "uniform": uniform_matrix,
    "diagonal": diagonal_matrix,
}


def build_switch(name: str, n: int, matrix: np.ndarray, seed: int):
    """Instantiate a switch by registry name.

    .. deprecated::
        Use ``repro.models.build(name, n, matrix, seed)`` (or
        ``repro.models.get(name).build(...)`` for parameterized builds).
    """
    warnings.warn(
        "build_switch is deprecated; use repro.models.build / "
        "repro.models.get(name).build",
        DeprecationWarning,
        stacklevel=2,
    )
    return models.build(name, n, matrix, seed)


def __getattr__(name: str):
    if name == "SWITCH_BUILDERS":
        warnings.warn(
            "SWITCH_BUILDERS is deprecated; use repro.models.available() "
            "and repro.models.get(name).build",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            switch: models.get(switch).builder
            for switch in models.available()
        }
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def single_run_params(
    switch_name: str,
    matrix: np.ndarray,
    num_slots: int,
    seed: int,
    load_label: float,
    warmup_fraction: float,
    keep_samples: bool,
    engine: str,
    spec: Optional[ScenarioSpec],
    switch_params: Optional[Dict] = None,
) -> Dict:
    """The experiment store's cache-key parameters for one run.

    The workload identity is the scenario spec's dict form when the run
    is declarative, or a SHA-256 digest of the raw matrix bytes for ad-hoc
    matrices (see EXPERIMENTS.md, "cache-key scheme").  ``load_label``
    must be the workload-determining load for scenario runs (``run_single``
    guarantees this by keying on the scenario's target load).
    """
    if spec is not None:
        workload: Dict = {"scenario": spec.to_dict()}
    else:
        digest = hashlib.sha256(
            np.ascontiguousarray(matrix, dtype=float).tobytes()
        ).hexdigest()
        workload = {"matrix_sha256": digest}
    params = {
        "schema": 1,
        "kind": "run_single",
        "switch": switch_name,
        "engine": engine,
        "n": int(matrix.shape[0]),
        "slots": int(num_slots),
        "seed": int(seed),
        "load": float(load_label),
        "warmup_fraction": float(warmup_fraction),
        "keep_samples": bool(keep_samples),
        "workload": workload,
    }
    if switch_params:
        # Only present when non-default, so pre-existing cache keys (all
        # default-parameter runs) are unchanged.
        params["switch_params"] = dict(switch_params)
    return params


def fabric_run_params(
    fabric_spec,
    matrix: np.ndarray,
    num_slots: int,
    seed: int,
    load_label: float,
    warmup_fraction: float,
    keep_samples: bool,
    engine: str,
    spec: Optional[ScenarioSpec],
) -> Dict:
    """Store cache-key parameters for a multi-stage fabric run.

    Same scheme as :func:`single_run_params` with ``kind="run_fabric"``
    and the full fabric spec embedded: two fabrics sharing a name but
    differing in stages, parameters, or port maps never collide.
    """
    params = single_run_params(
        fabric_spec.name, matrix, num_slots, seed, load_label,
        warmup_fraction, keep_samples, engine, spec,
    )
    params["kind"] = "run_fabric"
    params["fabric"] = fabric_spec.to_dict()
    return params


def _captured(span_name: str, execute: Callable[[], SimulationResult]) -> SimulationResult:
    """Execute one run under a telemetry capture; when telemetry is on,
    attach the capture payload (wall seconds, peak RSS, metrics snapshot
    — process-cumulative at run exit) as ``extras["telemetry"]``.

    The attach happens *before* any store save, so traces of cached
    sweeps can tell computed runs from hits: a hit's result carries the
    telemetry of the run that computed it, not of the fetch.  Disabled
    telemetry leaves the result byte-identical to an uninstrumented run.
    """
    cap = telemetry.capture(span_name)
    with cap:
        result = execute()
    if cap.result is not None:
        result.extras["telemetry"] = cap.result
    return result


def _run_single_fabric(
    fabric_spec,
    matrix: Optional[np.ndarray],
    num_slots: int,
    seed: int,
    load_label: float,
    warmup_fraction: float,
    keep_samples: bool,
    engine: str,
    scenario,
    n: Optional[int],
    load: Optional[float],
    store,
    switch_params: Optional[Dict],
    window_slots: Optional[int],
) -> SimulationResult:
    """The fabric branch of :func:`run_single`: same workload resolution
    and store protocol, execution through
    :func:`repro.sim.composite.run_fabric`."""
    if switch_params:
        raise ValueError(
            f"fabric {fabric_spec.name!r}: per-stage parameters belong in "
            f"the FabricSpec stages, not switch_params"
        )
    spec: Optional[ScenarioSpec] = None
    if scenario is not None:
        if matrix is not None:
            raise ValueError("pass either matrix or scenario, not both")
        spec = resolve_scenario(scenario)
        if n is None or load is None:
            raise ValueError("scenario runs require n and load")
        matrix = effective_matrix(spec, n, load)
        if math.isnan(load_label):
            load_label = float(load)
    elif matrix is None:
        raise ValueError("need a matrix or a scenario")
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    spec_load = float(load) if load is not None else None

    # Imported here, not at module scope: the fabric built-ins resolve
    # their stage names against the switch registry, which is still
    # filling in while this module first loads (models -> builtin ->
    # kernels -> sim package -> here).
    from ..sim.composite import run_fabric

    def execute() -> SimulationResult:
        batch_traffic = (
            build_batch_traffic(
                spec, matrix.shape[0], spec_load, seed, num_slots
            )
            if spec is not None
            else None
        )
        return run_fabric(
            fabric_spec,
            matrix,
            num_slots,
            seed=seed,
            load_label=load_label,
            warmup_fraction=warmup_fraction,
            keep_samples=keep_samples,
            engine=engine,
            batch_traffic=batch_traffic,
            window_slots=window_slots,
        )

    cache = coerce_store(store)
    if cache is None:
        return _captured("run.fabric", execute)
    params = fabric_run_params(
        fabric_spec, matrix, num_slots, seed,
        spec_load if spec is not None else load_label,
        warmup_fraction, keep_samples, engine, spec,
    )
    cached = cache.fetch(params)
    if cached is not None:
        return cached
    result = _captured("run.fabric", execute)
    cache.save(params, result)
    return result


def _execute_single(
    switch_name: str,
    matrix: np.ndarray,
    num_slots: int,
    seed: int,
    load_label: float,
    warmup_fraction: float,
    keep_samples: bool,
    engine: str,
    spec: Optional[ScenarioSpec],
    spec_load: Optional[float] = None,
    switch_params: Optional[Dict] = None,
    window_slots: Optional[int] = None,
) -> SimulationResult:
    """The uncached simulation (the store wraps exactly this function)."""
    n = matrix.shape[0]
    model = models.get(switch_name)
    switch_params = switch_params or {}
    if engine == "vectorized" and model.supports_engine(
        "vectorized", switch_params
    ):
        batch_traffic = (
            build_batch_traffic(spec, n, spec_load, seed, num_slots)
            if spec is not None
            else None
        )
        return run_single_fast(
            switch_name,
            matrix,
            num_slots,
            seed=seed,
            load_label=load_label,
            warmup_fraction=warmup_fraction,
            keep_samples=keep_samples,
            batch_traffic=batch_traffic,
            switch_params=switch_params,
            # The windowed replay is an execution detail (bit-identical
            # results, bounded memory); switches without a stream kernel
            # simply keep the monolithic replay.
            window_slots=(
                window_slots if model.stream_kernel is not None else None
            ),
        )
    switch = model.build(n, matrix, seed, **switch_params)
    if spec is not None:
        traffic = build_traffic(spec, n, spec_load, seed, num_slots)
    else:
        traffic = TrafficGenerator(matrix, traffic_rng(seed))
    sim = SimulationEngine(
        switch,
        traffic,
        warmup_fraction=warmup_fraction,
        keep_samples=keep_samples,
    )
    return sim.run(num_slots, load_label=load_label)


def run_single(
    switch_name: str,
    matrix: Optional[np.ndarray] = None,
    num_slots: int = 0,
    seed: int = 0,
    load_label: float = float("nan"),
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    engine: str = "object",
    scenario=None,
    n: Optional[int] = None,
    load: Optional[float] = None,
    store: Union[None, str, ExperimentStore] = None,
    switch_params: Optional[Dict] = None,
    window_slots: Optional[int] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Build switch + traffic from a seed and simulate one configuration.

    ``switch_name`` is any name or alias in the switch-model registry
    (:func:`repro.models.available` lists them); aliases are canonicalized
    before anything else, so store cache keys are alias-independent.  A
    registered *fabric* name (:func:`repro.models.available_fabrics`) or
    a :class:`~repro.models.FabricSpec` is also accepted and dispatches
    to the multi-stage runner (:func:`repro.sim.composite.run_fabric`),
    with per-stage metrics in the result's extras.
    ``switch_params`` passes schema-checked constructor parameters (e.g.
    ``{"threshold": 8}`` for PF) through the model; a vectorized run
    falls back to the object engine when a requested parameter is not in
    the kernel's declared ``kernel_params`` (UFS's finite
    ``input_buffer`` drops packets, which the array replay does not
    model), and parameterized runs get their own store cache keys.

    Workload selection — exactly one of:

    * ``matrix`` — an explicit rate matrix (the historical API), or
    * ``scenario`` with ``n`` and ``load`` — a declarative scenario
      (registry name, spec file path, dict, or
      :class:`~repro.scenarios.spec.ScenarioSpec`); the switch is
      provisioned from the scenario's effective matrix and traffic is
      built by :mod:`repro.scenarios.build` (identically for both
      engines).

    ``engine="vectorized"`` routes through the NumPy batch engine
    (:mod:`repro.sim.fast_engine`) whenever the switch's registered model
    carries a kernel — which reproduces the object engine's results
    exactly — and transparently falls back to the object engine otherwise
    (CMS, hashing, adaptive Sprinklers), so mixed sweeps keep working.

    ``store`` (an :class:`~repro.store.ExperimentStore` or its directory
    path) caches the result content-addressed by the full configuration;
    a hit skips the simulation entirely.

    ``window_slots`` streams the vectorized replay in windows of that
    many slots (bounded arrival memory, bit-identical results — see
    :func:`repro.sim.fast_engine.run_single_fast`); because results are
    identical it does not enter the store cache key, and engines or
    switches that cannot stream simply ignore it.

    ``backend`` selects the kernel backend ("numpy" or "compiled") for
    this run (:mod:`repro.sim.kernels.compiled`); ``None`` keeps
    whatever is globally active.  Compiled results are bit-identical to
    NumPy's, so the backend never enters the store cache key — a run
    computed on one backend is a cache hit for the other.
    """
    if backend is not None:
        with kernel_backend(backend):
            return run_single(
                switch_name, matrix, num_slots, seed, load_label,
                warmup_fraction, keep_samples, engine, scenario, n, load,
                store, switch_params, window_slots,
            )
    _check_engine(engine)
    fabric_spec = models.lookup_fabric(switch_name)
    if fabric_spec is not None:
        # A registered fabric name (or FabricSpec) dispatches to the
        # multi-stage runner; fabric and switch names share a namespace.
        return _run_single_fabric(
            fabric_spec, matrix, num_slots, seed, load_label,
            warmup_fraction, keep_samples, engine, scenario, n, load,
            store, switch_params, window_slots,
        )
    switch_name = models.canonical_name(switch_name)
    models.get(switch_name).validate_params(switch_params or {})
    spec: Optional[ScenarioSpec] = None
    if scenario is not None:
        if matrix is not None:
            raise ValueError("pass either matrix or scenario, not both")
        spec = resolve_scenario(scenario)
        if n is None or load is None:
            raise ValueError("scenario runs require n and load")
        matrix = effective_matrix(spec, n, load)
        if math.isnan(load_label):
            load_label = float(load)
    elif matrix is None:
        raise ValueError("need a matrix or a scenario")
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")

    spec_load = float(load) if load is not None else None

    def execute() -> SimulationResult:
        return _execute_single(
            switch_name, matrix, num_slots, seed, load_label,
            warmup_fraction, keep_samples, engine, spec, spec_load,
            switch_params, window_slots,
        )

    cache = coerce_store(store)
    if cache is None:
        return _captured("run.single", execute)
    params = single_run_params(
        switch_name, matrix, num_slots, seed,
        spec_load if spec is not None else load_label,
        warmup_fraction, keep_samples, engine, spec, switch_params,
    )
    cached = cache.fetch(params)
    if cached is not None:
        return cached
    result = _captured("run.single", execute)
    cache.save(params, result)
    return result


def resolve_run_params(
    switch_name: str,
    matrix: Optional[np.ndarray] = None,
    num_slots: int = 0,
    seed: int = 0,
    load_label: float = float("nan"),
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    engine: str = "object",
    scenario=None,
    n: Optional[int] = None,
    load: Optional[float] = None,
    switch_params: Optional[Dict] = None,
    backend: Optional[str] = None,
) -> Dict:
    """The store cache-key parameters :func:`run_single` would use, without
    running anything.

    Performs the same resolution as :func:`run_single` — fabric dispatch,
    alias canonicalization, parameter validation, scenario resolution,
    workload-load keying — and returns the exact params dict the store
    would be keyed by, so callers that plan work ahead of execution (the
    simulation service's shard dedup) and :func:`run_single` itself can
    never disagree on a key.  Raises the same errors for the same invalid
    configurations.

    ``backend`` is validated and then deliberately *excluded* from the
    key: compiled and NumPy kernels produce bit-identical results, so
    they must share cache entries.
    """
    if backend is not None and backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; known: "
            + ", ".join(KERNEL_BACKENDS)
        )
    _check_engine(engine)
    fabric_spec = models.lookup_fabric(switch_name)
    if fabric_spec is not None and switch_params:
        raise ValueError(
            f"fabric {fabric_spec.name!r}: per-stage parameters belong in "
            f"the FabricSpec stages, not switch_params"
        )
    if fabric_spec is None:
        switch_name = models.canonical_name(switch_name)
        models.get(switch_name).validate_params(switch_params or {})
    spec: Optional[ScenarioSpec] = None
    if scenario is not None:
        if matrix is not None:
            raise ValueError("pass either matrix or scenario, not both")
        spec = resolve_scenario(scenario)
        if n is None or load is None:
            raise ValueError("scenario runs require n and load")
        matrix = effective_matrix(spec, n, load)
        if math.isnan(load_label):
            load_label = float(load)
    elif matrix is None:
        raise ValueError("need a matrix or a scenario")
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    spec_load = float(load) if load is not None else None
    key_load = spec_load if spec is not None else load_label
    if fabric_spec is not None:
        return fabric_run_params(
            fabric_spec, matrix, num_slots, seed, key_load,
            warmup_fraction, keep_samples, engine, spec,
        )
    return single_run_params(
        switch_name, matrix, num_slots, seed, key_load,
        warmup_fraction, keep_samples, engine, spec, switch_params,
    )


def delay_vs_load_sweep(
    pattern: str,
    n: int = 32,
    loads: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
    num_slots: int = 50_000,
    switches: Optional[Sequence[str]] = None,
    seed: int = 0,
    keep_samples: bool = False,
    engine: str = "object",
    store: Union[None, str, ExperimentStore] = None,
    window_slots: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[SimulationResult]:
    """The paper's §6 experiment grid: all switches across a load sweep.

    ``pattern`` is a :data:`TRAFFIC_PATTERNS` key ("uniform" for Fig. 6,
    "diagonal" for Fig. 7) or any scenario designator accepted by
    :func:`repro.scenarios.resolve_scenario` (registry name or spec-file
    path).  Returns one result per (switch, load).  ``engine="vectorized"``
    runs each supported switch on the fast batch engine (same seeds, same
    results, paper-scale wall-clock); ``store`` caches every cell so a
    repeated sweep recomputes nothing.
    """
    spec: Optional[ScenarioSpec] = None
    is_name = isinstance(pattern, str) and not pattern.endswith(
        (".toml", ".json")
    )
    if is_name and pattern in TRAFFIC_PATTERNS:
        pass  # the §6 matrix-family path
    elif is_name and pattern not in SCENARIOS:
        known = ", ".join(sorted(TRAFFIC_PATTERNS) + sorted(SCENARIOS))
        raise ValueError(
            f"unknown pattern {pattern!r}; known patterns and "
            f"scenarios: {known}"
        )
    else:
        # A registered name, spec file, dict, or ScenarioSpec; file and
        # validation errors propagate with their own messages.
        spec = resolve_scenario(pattern)
    _check_engine(engine)
    if switches is None:
        switches = PAPER_SWITCHES
    cache = coerce_store(store)
    results: List[SimulationResult] = []
    sweep_span = telemetry.trace(
        "sweep.delay_vs_load",
        pattern=spec.name if spec is not None else str(pattern),
        n=n,
        engine=engine,
        loads=len(loads),
        switches=len(switches),
    )
    with sweep_span, kernel_backend(backend):
        results.extend(_sweep_cells(
            spec, pattern, n, loads, switches, num_slots, seed,
            keep_samples, engine, cache, window_slots,
        ))
    return results


def _sweep_cells(
    spec, pattern, n, loads, switches, num_slots, seed,
    keep_samples, engine, cache, window_slots,
) -> List[SimulationResult]:
    """The sweep grid body of :func:`delay_vs_load_sweep`."""
    results: List[SimulationResult] = []
    for load in loads:
        matrix = (
            TRAFFIC_PATTERNS[pattern](n, load) if spec is None else None
        )
        for name in switches:
            results.append(
                run_single(
                    name,
                    matrix,
                    num_slots,
                    seed=seed,
                    load_label=load,
                    keep_samples=keep_samples,
                    engine=engine,
                    scenario=spec,
                    n=n if spec is not None else None,
                    load=load if spec is not None else None,
                    store=cache,
                    window_slots=window_slots,
                )
            )
    return results
