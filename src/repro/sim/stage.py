"""The Stage protocol: a switch as a composable slot-window processor.

Both engines already share one implicit per-run contract: traffic is a
sequence of consecutive slot-windows of packets, and a switch turns them
into finalized slot-windows of departures.  This module makes that
contract explicit as the :class:`Stage` interface and gives it one
adapter per engine:

* :class:`KernelStage` wraps a switch model's resumable stream kernel
  (:data:`~repro.models.Capability.STREAMING`) — the vectorized replay;
* :class:`ObjectStage` wraps an object-engine switch instance, stepping
  it slot by slot over each window's packets.

The interface is the composition surface of multi-stage fabrics
(:mod:`repro.models.composite` / :mod:`repro.sim.composite`): stage-k
departures are, structurally, stage-(k+1) arrivals.  It is also what
:func:`repro.sim.fast_engine.run_single_fast` runs its windowed replay
through, so the single-switch path and the fabric path exercise the
same adapter.

Contract
--------
``feed(window)`` consumes one :class:`~repro.traffic.batch.ArrivalBatch`
covering ``[window.start_slot, window.end_slot)`` (windows arrive in
order, without gaps) and returns a :class:`~repro.sim.kernels.base.
Departures` record of every packet now *finalized* — guaranteed to
depart strictly before ``window.end_slot``, never to be re-emitted.
``finish(window=None)`` consumes the optional final window, flushes all
carried state (the drain phase), and returns the remaining departures
plus the switch's extras dict (or ``None``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..switching.packet import Packet
from ..traffic.batch import ArrivalBatch
from .kernels.base import Departures

__all__ = ["Stage", "KernelStage", "ObjectStage"]


class Stage:
    """One switch in a (possibly multi-stage) run, window interface."""

    #: Port count of the stage (windows and departures are N x N).
    n: int

    #: Telemetry label; fabric builds set ``stage{k}.{switch}`` so the
    #: per-stage feed/finish histograms are distinguishable in a chain.
    label: str = "stage"

    def feed(self, window: ArrivalBatch) -> Departures:
        """Consume one arrival window; return the finalized departures."""
        raise NotImplementedError

    def finish(
        self, window: Optional[ArrivalBatch] = None
    ) -> Tuple[Departures, Optional[Dict[str, float]]]:
        """Flush the stage: remaining departures plus the extras dict."""
        raise NotImplementedError


class KernelStage(Stage):
    """A stream kernel (vectorized resumable replay) behind the Stage
    interface.

    Thin single-seed adapter over the kernel's multi-seed streamer:
    ``feed``/``finish`` windows are wrapped in one-element lists and the
    per-seed result lists unwrapped, so the Stage contract and the
    stream-kernel contract are the same thing seen from two sides.
    """

    def __init__(
        self,
        model,
        matrix: np.ndarray,
        seed: int,
        total_slots: int,
        params: Optional[Dict] = None,
        label: Optional[str] = None,
    ) -> None:
        if model.stream_kernel is None:
            raise ValueError(
                f"switch {model.name!r} has no stream kernel; it cannot "
                f"run as a streamed stage"
            )
        self.n = int(matrix.shape[0])
        self.model = model
        self.label = label or model.name
        self._feed_metric = f"stage.feed_s.{self.label}"
        self._finish_metric = f"stage.finish_s.{self.label}"
        self._streamer = model.stream_kernel(
            matrix, [seed], total_slots, **(params or {})
        )

    def feed(self, window: ArrivalBatch) -> Departures:
        if not telemetry.enabled():
            return self._streamer.feed([window])[0]
        with telemetry.trace("stage.feed", stage=self.label) as span:
            dep = self._streamer.feed([window])[0]
            span.set(packets=len(window), finalized=len(dep.voq))
        telemetry.observe(self._feed_metric, span.span.dur_s)
        return dep

    def finish(
        self, window: Optional[ArrivalBatch] = None
    ) -> Tuple[Departures, Optional[Dict[str, float]]]:
        if not telemetry.enabled():
            final, extras = self._streamer.finish(
                [window] if window is not None else None
            )
            return final[0], extras[0]
        with telemetry.trace("stage.finish", stage=self.label) as span:
            final, extras = self._streamer.finish(
                [window] if window is not None else None
            )
            span.set(finalized=len(final[0].voq))
        telemetry.observe(self._finish_metric, span.span.dur_s)
        return final[0], extras[0]


class ObjectStage(Stage):
    """An object-engine switch instance behind the Stage interface.

    Steps the switch one slot at a time over each window's packets —
    exactly :class:`~repro.sim.engine.SimulationEngine`'s loop, re-cut at
    window boundaries — and converts released packets to the
    :class:`Departures` record.  ``wire`` is a running global observation
    rank (``wire_is_rank=True``): the object engine's within-slot
    observation order is definitional, so the rank *is* the tie-break.

    ``num_slots`` is the run's arrival horizon; the final drain steps at
    most ``max(50 * n, num_slots)`` extra slots, matching the
    single-switch engine's drain cut.
    """

    def __init__(
        self, switch, num_slots: int, label: Optional[str] = None
    ) -> None:
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        self.n = int(switch.n)
        self.switch = switch
        self.num_slots = int(num_slots)
        self.label = label or type(switch).__name__
        self._feed_metric = f"stage.feed_s.{self.label}"
        self._finish_metric = f"stage.finish_s.{self.label}"
        self._cursor = 0  # next slot to step
        self._rank = 0  # global observation rank

    def _collect(self, packets: List[Packet]) -> Departures:
        """Released packets (observation order) as a Departures record."""
        real = [p for p in packets if not p.fake]
        n = self.n
        count = len(real)
        voq = np.empty(count, dtype=np.int64)
        seq = np.empty(count, dtype=np.int64)
        arrival = np.empty(count, dtype=np.int64)
        departure = np.empty(count, dtype=np.int64)
        assembled = np.empty(count, dtype=np.int64)
        tx = np.empty(count, dtype=np.int64)
        for i, p in enumerate(real):
            voq[i] = p.input_port * n + p.output_port
            seq[i] = p.seq
            arrival[i] = p.arrival_slot
            departure[i] = p.departure_slot
            assembled[i] = p.assembled_slot
            tx[i] = p.tx_slot
        wire = np.arange(self._rank, self._rank + count, dtype=np.int64)
        self._rank += count
        stamped = count > 0 and bool(
            np.all(assembled >= 0) and np.all(tx >= 0)
        )
        return Departures(
            voq=voq,
            seq=seq,
            arrival=arrival,
            departure=departure,
            wire=wire,
            assembled=assembled if stamped else None,
            tx=tx if stamped else None,
            wire_is_rank=True,
        )

    def _step_window(self, window: ArrivalBatch) -> List[Packet]:
        """Step every slot of ``[cursor, window.end_slot)``; return the
        released packets in observation order."""
        if window.start_slot != self._cursor:
            raise ValueError(
                f"window starts at slot {window.start_slot}, expected "
                f"{self._cursor} (windows must be consecutive)"
            )
        if window.n != self.n:
            raise ValueError(
                f"window size {window.n} does not match stage size {self.n}"
            )
        n = self.n
        slots = window.slots
        bounds = np.searchsorted(
            slots, np.arange(self._cursor, window.end_slot + 1)
        )
        released: List[Packet] = []
        for k, slot in enumerate(range(self._cursor, window.end_slot)):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            arrivals = [
                Packet(
                    input_port=int(window.inputs[i]),
                    output_port=int(window.outputs[i]),
                    arrival_slot=int(slots[i]),
                    seq=int(window.seqs[i]),
                )
                for i in range(lo, hi)
            ]
            released.extend(self.switch.step(slot, arrivals))
        self._cursor = window.end_slot
        return released

    def feed(self, window: ArrivalBatch) -> Departures:
        if not telemetry.enabled():
            return self._collect(self._step_window(window))
        with telemetry.trace("stage.feed", stage=self.label) as span:
            dep = self._collect(self._step_window(window))
            span.set(packets=len(window), finalized=len(dep.voq))
        telemetry.observe(self._feed_metric, span.span.dur_s)
        return dep

    def finish(
        self, window: Optional[ArrivalBatch] = None
    ) -> Tuple[Departures, Optional[Dict[str, float]]]:
        with telemetry.trace("stage.finish", stage=self.label) as span:
            packets: List[Packet] = []
            if window is not None:
                packets.extend(self._step_window(window))
            limit = max(50 * self.n, self.num_slots)
            packets.extend(self.switch.drain(limit))
            dep = self._collect(packets)
            span.set(finalized=len(dep.voq))
        if span.span is not None:
            telemetry.observe(self._finish_metric, span.span.dur_s)
        return dep, self._extras()

    def _extras(self) -> Optional[Dict[str, float]]:
        """Harvest switch telemetry exactly as the simulation engine does."""
        switch = self.switch
        extras: Dict[str, float] = {}
        if getattr(switch, "dropped", 0):
            extras["dropped"] = float(switch.dropped)
            extras["loss_rate"] = switch.dropped / max(1, switch.injected)
        if hasattr(switch, "max_resequencer_occupancy"):
            extras["max_resequencer"] = float(
                switch.max_resequencer_occupancy()
            )
        if hasattr(switch, "padding_overhead"):
            extras["padding_overhead"] = float(switch.padding_overhead())
        if hasattr(switch, "max_input_backlog"):
            extras["max_input_backlog"] = float(switch.max_input_backlog())
        if hasattr(switch, "resizes"):
            extras["resizes"] = float(switch.resizes)
        return extras or None
