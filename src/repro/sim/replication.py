"""Independent replications: the honest way to error-bar a simulation.

Batch means (``sim/stats.py``) error-bars a *single* run; independent
replications — the same configuration under ``R`` different seeds —
additionally capture run-to-run variability (placement randomness,
traffic randomness), which for Sprinklers is exactly where the §4
probability statements live.  This module runs replications (optionally
in parallel) and summarizes any result metric across them with a
Student-t confidence interval.
"""

from __future__ import annotations

import math
from typing import Callable, List, NamedTuple, Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

from .metrics import SimulationResult
from .parallel import SweepJob, run_jobs

__all__ = ["ReplicatedResult", "replicate"]


class ReplicatedResult(NamedTuple):
    """Cross-replication summary of one scalar metric."""

    metric: str
    mean: float
    half_width: float
    confidence: float
    replications: int
    values: tuple

    @property
    def interval(self) -> tuple:
        """The (low, high) confidence interval for the metric's mean."""
        return (self.mean - self.half_width, self.mean + self.half_width)


def replicate(
    switch_name: str,
    matrix: Optional[np.ndarray] = None,
    num_slots: int = 0,
    replications: int = 10,
    base_seed: int = 0,
    metric: Callable[[SimulationResult], float] = lambda r: r.mean_delay,
    metric_name: str = "mean_delay",
    confidence: float = 0.95,
    load_label: float = float("nan"),
    max_workers: Optional[int] = 1,
    engine: str = "object",
    scenario=None,
    n: Optional[int] = None,
    load: Optional[float] = None,
    store=None,
) -> ReplicatedResult:
    """Run ``replications`` independent seeds of one configuration.

    Seeds are ``base_seed .. base_seed + R - 1``; each seed independently
    redraws the placement *and* the traffic, so the interval covers both
    sources of randomness.  ``engine="vectorized"`` runs each replication
    on the batch engine — identical per-seed results, so identical
    intervals, at paper-scale speed.

    The workload is either an explicit ``matrix`` or a declarative
    ``scenario`` with ``n`` and ``load`` (see
    :func:`repro.sim.experiment.run_single`); ``store`` caches each
    seed's result, so re-running (or widening) a replication study only
    simulates seeds it has not seen.

    >>> from repro.traffic.matrices import uniform_matrix
    >>> res = replicate("load-balanced", uniform_matrix(4, 0.5), 800,
    ...                 replications=3)
    >>> res.replications
    3
    """
    if replications < 2:
        raise ValueError("need at least 2 replications for an interval")
    from ..scenarios.registry import resolve_scenario
    from ..store import store_dir

    scenario_dict = None
    if scenario is not None:
        if n is None or load is None:
            raise ValueError("scenario replications require n and load")
        scenario_dict = resolve_scenario(scenario).to_dict()
        # The job's load_label doubles as the scenario's target load.
        load_label = float(load)
    jobs = [
        SweepJob(
            switch_name, matrix, num_slots, base_seed + r, load_label,
            engine, scenario=scenario_dict, n=n, store=store_dir(store),
        )
        for r in range(replications)
    ]
    results = run_jobs(jobs, max_workers=max_workers)
    values = [float(metric(result)) for result in results]
    mean = float(np.mean(values))
    stderr = float(np.std(values, ddof=1)) / math.sqrt(replications)
    t_crit = float(
        scipy_stats.t.ppf(0.5 + confidence / 2.0, df=replications - 1)
    )
    return ReplicatedResult(
        metric=metric_name,
        mean=mean,
        half_width=t_crit * stderr,
        confidence=confidence,
        replications=replications,
        values=tuple(values),
    )
