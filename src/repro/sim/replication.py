"""Independent replications: the honest way to error-bar a simulation.

Batch means (``sim/stats.py``) error-bars a *single* run; independent
replications — the same configuration under ``R`` different seeds —
additionally capture run-to-run variability (placement randomness,
traffic randomness), which for Sprinklers is exactly where the §4
probability statements live.  This module runs replications (optionally
in parallel) and summarizes any result metric across them with a
Student-t confidence interval.
"""

from __future__ import annotations

import math
from typing import Callable, List, NamedTuple, Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

from .. import telemetry
from .metrics import SimulationResult
from .parallel import SweepJob, run_jobs

__all__ = ["ReplicatedResult", "replicate"]


class ReplicatedResult(NamedTuple):
    """Cross-replication summary of one scalar metric."""

    metric: str
    mean: float
    half_width: float
    confidence: float
    replications: int
    values: tuple

    @property
    def interval(self) -> tuple:
        """The (low, high) confidence interval for the metric's mean."""
        return (self.mean - self.half_width, self.mean + self.half_width)


def _replicate_batched(
    switch_name: str,
    matrix: Optional[np.ndarray],
    num_slots: int,
    seeds: Sequence[int],
    load_label: float,
    spec,
    n: Optional[int],
    load: Optional[float],
    store,
    switch_params: Optional[dict],
) -> List[SimulationResult]:
    """All seeds in one stacked kernel pass, store-compatible per seed.

    Cache keys are exactly the per-seed keys of the sequential path
    (``run_single`` with ``keep_samples=False``), so batched and
    sequential replications share hits; only the missing seeds run, as
    one :func:`~repro.sim.fast_engine.run_replications_fast` call.
    """
    from ..scenarios.build import build_batch_traffic
    from ..scenarios.spec import effective_matrix
    from ..store import coerce_store
    from .experiment import single_run_params
    from .fast_engine import run_replications_fast

    if spec is not None:
        matrix = effective_matrix(spec, n, load)
    cache = coerce_store(store)
    results = {}
    missing = []
    params_by_seed = {}
    for seed in seeds:
        params = single_run_params(
            switch_name, matrix, num_slots, seed,
            float(load) if spec is not None else load_label,
            0.1,  # run_single's warmup_fraction default, as the jobs use
            False, "vectorized", spec, switch_params,
        )
        params_by_seed[seed] = params
        cached = cache.fetch(params) if cache is not None else None
        if cached is not None:
            results[seed] = cached
        else:
            missing.append(seed)
    if missing:
        traffics = None
        if spec is not None:
            traffics = [
                build_batch_traffic(spec, n, load, seed, num_slots)
                for seed in missing
            ]
        fresh = run_replications_fast(
            switch_name,
            matrix,
            num_slots,
            missing,
            load_label=load_label,
            keep_samples=False,
            batch_traffics=traffics,
            switch_params=switch_params,
        )
        for seed, result in zip(missing, fresh):
            results[seed] = result
            if cache is not None:
                cache.save(params_by_seed[seed], result)
    return [results[seed] for seed in seeds]


def replicate(
    switch_name: str,
    matrix: Optional[np.ndarray] = None,
    num_slots: int = 0,
    replications: int = 10,
    base_seed: int = 0,
    metric: Callable[[SimulationResult], float] = lambda r: r.mean_delay,
    metric_name: str = "mean_delay",
    confidence: float = 0.95,
    load_label: float = float("nan"),
    max_workers: Optional[int] = 1,
    engine: str = "object",
    scenario=None,
    n: Optional[int] = None,
    load: Optional[float] = None,
    store=None,
    switch_params: Optional[dict] = None,
    batch_seeds: bool = False,
) -> ReplicatedResult:
    """Run ``replications`` independent seeds of one configuration.

    Seeds are ``base_seed .. base_seed + R - 1``; each seed independently
    redraws the placement *and* the traffic, so the interval covers both
    sources of randomness.  ``engine="vectorized"`` runs each replication
    on the batch engine — identical per-seed results, so identical
    intervals, at paper-scale speed.

    The workload is either an explicit ``matrix`` or a declarative
    ``scenario`` with ``n`` and ``load`` (see
    :func:`repro.sim.experiment.run_single`); ``store`` caches each
    seed's result, so re-running (or widening) a replication study only
    simulates seeds it has not seen.  ``switch_params`` replicates a
    parameterized switch (e.g. PF at a custom ``threshold``), threaded
    through every seed's job and cache key.

    ``batch_seeds=True`` (vectorized engine only) replays all seeds in
    *one* stacked kernel pass where the switch supports a seed axis
    (:data:`~repro.models.Capability.SEED_BATCHED` — every vectorized
    switch, the frame-at-a-time PF/FOFF included: the array-stepped
    formation engine stacks seeds as extra lanes, widening each cycle
    step instead of multiplying the step count) — exactly the same
    per-seed values, but the array-setup overheads that dominate short
    replications are paid once instead of R times.  Switches without
    the capability silently fall back to per-seed runs.

    >>> from repro.traffic.matrices import uniform_matrix
    >>> res = replicate("load-balanced", uniform_matrix(4, 0.5), 800,
    ...                 replications=3)
    >>> res.replications
    3
    """
    if replications < 2:
        raise ValueError("need at least 2 replications for an interval")
    from .. import models
    from ..scenarios.registry import resolve_scenario
    from ..store import store_dir

    scenario_dict = None
    spec = None
    if scenario is not None:
        if n is None or load is None:
            raise ValueError("scenario replications require n and load")
        spec = resolve_scenario(scenario)
        scenario_dict = spec.to_dict()
        # The job's load_label doubles as the scenario's target load.
        load_label = float(load)
    if batch_seeds and engine != "vectorized":
        raise ValueError(
            "batch_seeds requires engine='vectorized' (the object engine "
            "has no seed axis)"
        )
    seeds = [base_seed + r for r in range(replications)]
    # A fabric name replicates seed-by-seed through run_single's fabric
    # dispatch (no stacked seed axis across a coupled chain yet); the
    # scenario / store / pool machinery works unchanged because the job
    # carries the name.
    fabric_spec = models.lookup_fabric(switch_name)
    if fabric_spec is not None:
        model = None
        canonical = fabric_spec.name
    else:
        canonical = models.canonical_name(switch_name)
        model = models.get(canonical)
    batched = (
        model is not None
        and batch_seeds
        and model.seed_batched
        and model.supports_engine("vectorized", switch_params)
    )
    with telemetry.trace(
        "run.replicate",
        switch=canonical,
        replications=replications,
        engine=engine,
        batched=batched,
    ):
        if batched:
            results = _replicate_batched(
                canonical, matrix, num_slots, seeds, load_label,
                spec, n, load, store, switch_params,
            )
        else:
            jobs = [
                SweepJob(
                    canonical, matrix, num_slots, seed, load_label,
                    engine, scenario=scenario_dict, n=n,
                    store=store_dir(store), switch_params=switch_params,
                )
                for seed in seeds
            ]
            results = run_jobs(jobs, max_workers=max_workers)
    values = [float(metric(result)) for result in results]
    mean = float(np.mean(values))
    stderr = float(np.std(values, ddof=1)) / math.sqrt(replications)
    t_crit = float(
        scipy_stats.t.ppf(0.5 + confidence / 2.0, df=replications - 1)
    )
    return ReplicatedResult(
        metric=metric_name,
        mean=mean,
        half_width=t_crit * stderr,
        confidence=confidence,
        replications=replications,
        values=tuple(values),
    )
