"""Seeded random-number management for reproducible experiments.

Every stochastic component of the library (traffic generation, permutation
drawing, Monte-Carlo analysis) draws its randomness from a named stream so
that experiments are exactly reproducible from a single master seed, and so
that changing how one component consumes randomness does not perturb the
others.

Streams are derived with :class:`numpy.random.SeedSequence`, which provides
high-quality, collision-resistant child seeds.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator

import numpy as np

__all__ = ["RngRegistry", "derive_seed", "spawn_generator", "traffic_rng"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a deterministic child seed for ``name`` from ``master_seed``.

    The name is folded into the seed with CRC32 so that distinct stream names
    yield distinct (and stable across runs/platforms) child seeds.

    >>> derive_seed(1, "traffic") != derive_seed(1, "permutation")
    True
    >>> derive_seed(1, "traffic") == derive_seed(1, "traffic")
    True
    """
    if master_seed < 0:
        raise ValueError(f"master_seed must be nonnegative, got {master_seed}")
    tag = zlib.crc32(name.encode("utf-8"))
    seq = np.random.SeedSequence(entropy=master_seed, spawn_key=(tag,))
    return int(seq.generate_state(1, dtype=np.uint64)[0])


def spawn_generator(master_seed: int, name: str) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` for stream ``name``."""
    return np.random.default_rng(derive_seed(master_seed, name))


def traffic_rng(master_seed: int) -> np.random.Generator:
    """The ``"traffic"`` stream's generator — the arrival-process stream.

    This is the stream both engines (and every scenario builder) consume
    for arrivals, hoisted here so each call site constructs it the same
    way; bit-parity between the object and vectorized engines depends on
    them drawing from identical generators.
    """
    return spawn_generator(master_seed, "traffic")


class RngRegistry:
    """A registry of named, independently seeded random generators.

    Components ask the registry for their stream by name; the registry
    memoizes generators so that repeated lookups return the same stream
    object (and therefore continue the same random sequence).

    >>> reg = RngRegistry(master_seed=42)
    >>> g1 = reg.stream("traffic")
    >>> g1 is reg.stream("traffic")
    True
    >>> reg2 = RngRegistry(master_seed=42)
    >>> float(reg2.stream("traffic").random()) == float(
    ...     RngRegistry(master_seed=42).stream("traffic").random())
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError("master_seed must be nonnegative")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = spawn_generator(self.master_seed, name)
        return self._streams[name]

    def reset(self) -> None:
        """Forget all streams; subsequent lookups restart their sequences."""
        self._streams.clear()

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RngRegistry(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )
