"""Measurement instruments for switch simulations.

Collects exactly the quantities the paper's evaluation reports (average
delay, Figs. 6-7) plus the diagnostics the claims rest on: reordering
counts (must be zero for Sprinklers/UFS/PF), throughput, and queue-depth
telemetry for stability checks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..switching.packet import Packet
from ..switching.resequencer import ReorderingDetector

__all__ = ["DelayStats", "SimulationMetrics", "SimulationResult"]


class DelayStats:
    """Streaming delay statistics with exact percentiles.

    Delays are integer slot counts, so an exact sparse histogram (delay
    -> count) rides along at O(distinct delays) memory and yields exact
    percentiles without retaining per-packet arrays.  ``keep_samples``
    additionally retains the raw samples in observation order — needed
    only for the order-sensitive statistics (MSER truncation, batch
    means) behind :meth:`SimulationResult.delay_ci`.
    """

    def __init__(self, keep_samples: bool = True) -> None:
        self.count = 0
        self.total = 0
        self.total_sq = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.keep_samples = keep_samples
        self._samples: List[int] = []
        self._hist: Dict[int, int] = {}

    def add(self, delay: int) -> None:
        """Record one packet delay (slots)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.count += 1
        self.total += delay
        self.total_sq += delay * delay
        if self.min is None or delay < self.min:
            self.min = delay
        if self.max is None or delay > self.max:
            self.max = delay
        self._hist[delay] = self._hist.get(delay, 0) + 1
        if self.keep_samples:
            self._samples.append(delay)

    @property
    def mean(self) -> float:
        """Average delay; NaN if nothing was recorded."""
        if self.count == 0:
            return math.nan
        return self.total / self.count

    @property
    def std(self) -> float:
        """Population standard deviation of recorded delays."""
        if self.count == 0:
            return math.nan
        mean = self.mean
        return math.sqrt(max(0.0, self.total_sq / self.count - mean * mean))

    @property
    def samples(self) -> List[int]:
        """The retained per-packet delays, in observation order."""
        if not self.keep_samples:
            raise ValueError("samples were not retained")
        return self._samples

    @property
    def histogram(self) -> Dict[int, int]:
        """The exact sparse delay histogram (delay -> count)."""
        return dict(self._hist)

    def percentile(self, q: float) -> float:
        """The exact ``q``-th percentile (0..100), from the histogram.

        Matches ``np.percentile`` (linear interpolation) on the same
        data, two-sided lerp included, so retained-sample runs and
        fused-metrics (``keep_samples=False``) runs report identical
        values.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return math.nan
        rank = (q / 100.0) * (self.count - 1)
        target_lo = int(rank)
        target_hi = min(target_lo + 1, self.count - 1)
        frac = rank - target_lo
        lo_val = hi_val = 0
        seen = 0
        found_lo = False
        for value in sorted(self._hist):
            seen += self._hist[value]
            if not found_lo and seen > target_lo:
                lo_val = value
                found_lo = True
            if seen > target_hi:
                hi_val = value
                break
        # np.percentile's two-sided lerp: interpolate from whichever
        # endpoint is nearer, reproducing its rounding exactly.
        if frac >= 0.5:
            return hi_val - (hi_val - lo_val) * (1.0 - frac)
        return lo_val + (hi_val - lo_val) * frac

    def __repr__(self) -> str:
        return f"DelayStats(count={self.count}, mean={self.mean:.2f})"


class SimulationMetrics:
    """Per-run collector fed by the simulation engine."""

    def __init__(self, keep_samples: bool = True) -> None:
        self.delays = DelayStats(keep_samples=keep_samples)
        self.reordering = ReorderingDetector()
        self.measured_departures = 0
        self.fake_departures = 0
        # Delay decomposition sums (packets carrying stage stamps only):
        # aggregation wait, input-side queueing, fabric-1-to-departure.
        self.breakdown_count = 0
        self.assembly_total = 0
        self.input_queue_total = 0
        self.transit_total = 0

    def observe_departure(self, packet: Packet, measure: bool) -> None:
        """Feed one departed packet; ``measure`` gates the delay statistics.

        Ordering is always checked (a reorder during warm-up is just as
        much a correctness violation), fakes are counted but never measured.
        """
        if packet.fake:
            self.fake_departures += 1
            return
        self.reordering.observe(packet)
        if measure:
            self.delays.add(packet.delay)
            self.measured_departures += 1
            if packet.assembled_slot >= 0 and packet.tx_slot >= 0:
                self.breakdown_count += 1
                self.assembly_total += packet.assembled_slot - packet.arrival_slot
                self.input_queue_total += packet.tx_slot - packet.assembled_slot
                self.transit_total += packet.departure_slot - packet.tx_slot

    def delay_breakdown(self) -> Dict[str, float]:
        """Mean per-stage delays for packets with stage stamps.

        Keys: ``assembly`` (waiting for the stripe/frame/grant to form),
        ``input_queue`` (formed but not yet across fabric 1), ``transit``
        (fabric 1 to departure).  The three sum to the mean total delay of
        the stamped packets.
        """
        if self.breakdown_count == 0:
            return {}
        count = self.breakdown_count
        return {
            "assembly": self.assembly_total / count,
            "input_queue": self.input_queue_total / count,
            "transit": self.transit_total / count,
        }


class SimulationResult:
    """Summary of one simulation run (one switch, one workload, one seed)."""

    def __init__(
        self,
        switch_name: str,
        n: int,
        load: float,
        slots: int,
        warmup: int,
        metrics: SimulationMetrics,
        injected: int,
        departed: int,
        extras: Optional[Dict[str, float]] = None,
    ) -> None:
        self.switch_name = switch_name
        self.n = n
        self.load = load
        self.slots = slots
        self.warmup = warmup
        self.mean_delay = metrics.delays.mean
        # Percentiles come from the exact histogram, so they are exact
        # regardless of whether per-packet samples were retained.
        self.p50_delay = metrics.delays.percentile(50)
        self.p99_delay = metrics.delays.percentile(99)
        self.max_delay = metrics.delays.max
        self.measured_packets = metrics.delays.count
        self.late_packets = metrics.reordering.late_packets
        self.max_displacement = metrics.reordering.max_displacement
        self.injected = injected
        self.departed = departed
        self.extras = dict(extras or {})
        for stage, value in metrics.delay_breakdown().items():
            self.extras[f"mean_{stage}_delay"] = value
        self._delay_samples = (
            list(metrics.delays.samples) if metrics.delays.keep_samples else []
        )
        self._delay_histogram = metrics.delays.histogram

    @property
    def is_ordered(self) -> bool:
        """Whether the run saw zero out-of-order departures."""
        return self.late_packets == 0

    def delay_ci(self, batches: int = 20, confidence: float = 0.95):
        """Batch-means confidence interval for the mean delay.

        Requires the run to have retained samples (``keep_samples=True``).
        Applies MSER warm-up truncation first, then batch means; returns a
        :class:`repro.sim.stats.BatchMeansResult`.
        """
        from .stats import batch_means, mser_truncation

        if not self._delay_samples:
            raise ValueError(
                "no retained delay samples (run with keep_samples=True)"
            )
        cut = mser_truncation(self._delay_samples)
        return batch_means(
            self._delay_samples[cut:], batches=batches, confidence=confidence
        )

    @property
    def throughput(self) -> float:
        """Departed packets per slot over the whole run (incl. warm-up)."""
        if self.slots == 0:
            return math.nan
        return self.departed / self.slots

    def to_dict(self, include_samples: bool = True) -> Dict:
        """Full lossless dict form (the experiment store's payload).

        Unlike :meth:`as_row` this captures *everything* needed to
        reconstruct the result object, so a cache hit is
        indistinguishable from a recomputation.  The exact delay
        histogram is always included; ``include_samples=False`` omits
        the (much larger) per-packet sample array — the serialization
        policy for runs that never retained samples in the first place
        and for service result streams.
        """
        data = {
            "switch_name": self.switch_name,
            "n": self.n,
            "load": self.load,
            "slots": self.slots,
            "warmup": self.warmup,
            "mean_delay": self.mean_delay,
            "p50_delay": self.p50_delay,
            "p99_delay": self.p99_delay,
            "max_delay": self.max_delay,
            "measured_packets": self.measured_packets,
            "late_packets": self.late_packets,
            "max_displacement": self.max_displacement,
            "injected": self.injected,
            "departed": self.departed,
            "extras": dict(self.extras),
            "delay_histogram": [
                [delay, count]
                for delay, count in sorted(self._delay_histogram.items())
            ],
        }
        if include_samples:
            data["delay_samples"] = list(self._delay_samples)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (no metrics pass)."""
        result = cls.__new__(cls)
        for field in (
            "switch_name",
            "n",
            "load",
            "slots",
            "warmup",
            "mean_delay",
            "p50_delay",
            "p99_delay",
            "max_delay",
            "measured_packets",
            "late_packets",
            "max_displacement",
            "injected",
            "departed",
        ):
            setattr(result, field, data[field])
        result.extras = dict(data.get("extras") or {})
        result._delay_samples = list(data.get("delay_samples") or [])
        result._delay_histogram = {
            int(delay): int(count)
            for delay, count in (data.get("delay_histogram") or [])
        }
        return result

    def as_row(self) -> Dict[str, float]:
        """Flatten to a plain dict (for tables / CSV)."""
        row = {
            "switch": self.switch_name,
            "n": self.n,
            "load": self.load,
            "slots": self.slots,
            "mean_delay": self.mean_delay,
            "p50_delay": self.p50_delay,
            "p99_delay": self.p99_delay,
            "measured_packets": self.measured_packets,
            "late_packets": self.late_packets,
            "throughput": self.throughput,
        }
        # Rows are flat scalar tables; nested extras (the "telemetry"
        # capture payload) stay on the result object only.
        row.update(
            {k: v for k, v in self.extras.items() if not isinstance(v, dict)}
        )
        return row

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.switch_name}, n={self.n}, "
            f"load={self.load}, mean_delay={self.mean_delay:.1f}, "
            f"late={self.late_packets})"
        )
