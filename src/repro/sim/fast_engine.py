"""Vectorized batch simulation engine (structure-of-arrays, NumPy).

The object engine in :mod:`repro.sim.engine` advances one slot at a time,
constructing a Python object per packet and dispatching through the switch
class hierarchy — faithful, auditable, and far too slow for the paper's
200k-slot Figs. 6-7 regime.  This module simulates the same switches by
*replaying their deterministic dynamics on flat arrays*, one vectorized
pass per pipeline stage instead of one Python iteration per packet per
slot.

Why this is exact, not approximate
----------------------------------

Every switch covered here is, for a fixed arrival stream, a deterministic
feed-forward pipeline of FIFO queues served by the periodic fabrics:

* the input side reduces to per-queue recursions of the form
  ``service_k = max(first_opportunity(ready_k), next_opportunity_after(
  service_{k-1}))``, which is a running maximum — computable in one
  ``np.maximum.accumulate`` per queue;
* the Sprinklers/UFS aggregation step (stripe/frame completion instants)
  is a slice of the per-VOQ arrival sequence;
* the Largest-Stripe-First priority of Sprinklers peels exactly: the
  service of a size class is never affected by smaller classes, so classes
  are replayed largest-first, each against the poll slots left over by the
  larger ones (`_replay_polled_queues`).

Given the same seed, the vectorized engine therefore reproduces the
object engine's per-packet departure slots *exactly* (pinned by the
engine-equivalence tests); the object engine remains the ordering-audit
oracle because it exercises the real data-path code.

Supported switches: ``sprinklers`` (oracle sizing), ``ufs``,
``load-balanced`` and ``output-queued``.  Adaptive resizing, padding
(PF), resequencing (FOFF) and hashing switches keep the object engine —
their control loops are feedback-coupled, which is precisely what the
array replay exploits the absence of.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.interval_assignment import PlacementMode, StripeIntervalAssignment
from ..sim.metrics import SimulationMetrics, SimulationResult
from ..sim.rng import derive_seed
from ..traffic.batch import (
    ArrivalBatch,
    BatchTrafficGenerator,
    stable_voq_argsort,
)
from ..traffic.matrices import validate_matrix

__all__ = [
    "FAST_ENGINE_SWITCHES",
    "supports_fast_engine",
    "run_single_fast",
]

#: Switch registry names the vectorized engine can simulate exactly.
FAST_ENGINE_SWITCHES: Tuple[str, ...] = (
    "sprinklers",
    "ufs",
    "load-balanced",
    "output-queued",
)

#: ``switch.name`` reported by each supported registry entry (the object
#: engine reports the class attribute; results must match field-for-field).
_REPORTED_NAMES: Dict[str, str] = {
    "sprinklers": "sprinklers",
    "ufs": "ufs",
    "load-balanced": "baseline-lb",
    "output-queued": "output-queued",
}


def supports_fast_engine(switch_name: str) -> bool:
    """Whether ``switch_name`` has a vectorized implementation."""
    return switch_name in FAST_ENGINE_SWITCHES


# ---------------------------------------------------------------------------
# Core replay primitives
# ---------------------------------------------------------------------------


def _composite_argsort(major: np.ndarray, minor: np.ndarray) -> np.ndarray:
    """Argsort by ``(major, minor)``.

    When both keys are nonnegative and their packed product fits an int64,
    a single-key quicksort is several times faster than a two-key
    ``np.lexsort`` (one sort pass instead of two stable passes); the keys
    here are unique pairs, so stability is not needed.
    """
    if len(major) == 0:
        return np.empty(0, dtype=np.intp)
    hi = int(major.max())
    span = int(minor.max()) + 1
    if hi < (np.iinfo(np.int64).max // max(span, 1)) - 1:
        return np.argsort(major * span + minor)
    return np.lexsort((minor, major))


def _fifo_service(ready: np.ndarray) -> np.ndarray:
    """Service slots of a FIFO served once per slot, arrivals servable
    the slot they become ready.

    ``service_k = max(ready_k, service_{k-1} + 1)`` as a running max:
    with ``u_k = service_k - k`` this is ``u_k = max(ready_k - k,
    u_{k-1})``.
    """
    if len(ready) == 0:
        return ready
    k = np.arange(len(ready), dtype=np.int64)
    return np.maximum.accumulate(ready - k) + k


def _periodic_fifo_service(
    ready: np.ndarray, residue: int, n: int
) -> np.ndarray:
    """Service slots of a FIFO polled at slots ``t ≡ residue (mod n)``.

    One packet per poll; a packet is servable at the poll of its ready
    slot.  Same running-max structure over poll *indices*.
    """
    if len(ready) == 0:
        return ready
    first = np.maximum((ready - residue + n - 1) // n, 0)
    k = np.arange(len(ready), dtype=np.int64)
    polls = np.maximum.accumulate(first - k) + k
    return residue + polls * n


def _replay_polled_queues(
    queues: np.ndarray,
    levels: np.ndarray,
    ready: np.ndarray,
    order: np.ndarray,
    residues: np.ndarray,
    n: int,
) -> np.ndarray:
    """Exact service slots for a bank of periodic priority queues.

    Each queue ``q`` is polled at slots ``t ≡ residues[q] (mod n)`` and, at
    every poll, serves the head of its *largest* nonempty level (FIFO
    within a level, ordered by ``order``) — the Largest Stripe First rule
    of paper §3.4 at an input-port row or an intermediate-port output
    class.

    The priority discipline peels exactly: packets of a level are never
    delayed by smaller levels, so levels replay largest-first, each as a
    FIFO over the poll slots not consumed by larger levels.

    Parameters are parallel per-event arrays (queue id, size level, ready
    slot, FIFO tie-break) plus the per-queue poll residue; returns the
    per-event service slot, aligned with the inputs.
    """
    service = np.empty(len(queues), dtype=np.int64)
    if len(queues) == 0:
        return service
    first_poll = np.maximum((ready - residues[queues] + n - 1) // n, 0)
    # Group by queue, then level ascending, then FIFO order.  Queue and
    # level pack into one sort key (level needs 4 bits up to n = 2^15).
    packed = (queues << 4) | levels
    grouping = _composite_argsort(packed, order)
    packed_sorted = packed[grouping]
    poll_sorted = first_poll[grouping]
    queue_bounds = np.flatnonzero(
        np.r_[
            True, (packed_sorted[1:] >> 4) != (packed_sorted[:-1] >> 4), True
        ]
    )
    for b in range(len(queue_bounds) - 1):
        lo, hi = queue_bounds[b], queue_bounds[b + 1]
        qid = int(packed_sorted[lo]) >> 4
        residue = int(residues[qid])
        lvl_slice = packed_sorted[lo:hi]
        level_bounds = np.flatnonzero(
            np.r_[True, lvl_slice[1:] != lvl_slice[:-1], True]
        )
        # Poll indices the queue could ever use: the first poll of any
        # event plus one poll per event is a safe upper bound.
        cap = int(poll_sorted[lo:hi].max()) + (hi - lo) + 1
        avail = np.arange(cap, dtype=np.int64)
        # Largest level first; smaller levels see the leftover polls.
        for s in range(len(level_bounds) - 2, -1, -1):
            a, z = lo + level_bounds[s], lo + level_bounds[s + 1]
            wanted = poll_sorted[a:z]
            pos = np.searchsorted(avail, wanted, side="left")
            k = np.arange(z - a, dtype=np.int64)
            taken = np.maximum.accumulate(pos - k) + k
            service[grouping[a:z]] = residue + avail[taken] * n
            if s > 0:
                avail = np.delete(avail, taken)
    return service


def _segmented_fifo_service(
    segment: np.ndarray, ready: np.ndarray
) -> np.ndarray:
    """Per-segment :func:`_fifo_service` (events pre-sorted within segment).

    ``segment`` must be nondecreasing; each segment is an independent FIFO
    served once per slot.
    """
    service = np.empty(len(ready), dtype=np.int64)
    bounds = np.flatnonzero(np.r_[True, segment[1:] != segment[:-1], True])
    for b in range(len(bounds) - 1):
        lo, hi = bounds[b], bounds[b + 1]
        service[lo:hi] = _fifo_service(ready[lo:hi])
    return service


def _row_residues(n: int) -> np.ndarray:
    """Poll residues of the stage-1 queues: fabric 1 connects input ``i``
    to intermediate ``m`` at slots ``t ≡ m - i (mod n)``; queue id is
    ``i * n + m``."""
    ports = np.arange(n, dtype=np.int64)
    return ((ports[None, :] - ports[:, None]) % n).ravel()


def _mid_residues(n: int) -> np.ndarray:
    """Poll residues of the stage-2 queues: fabric 2 connects intermediate
    ``m`` to output ``j`` at slots ``t ≡ m - j (mod n)``; queue id is
    ``m * n + j``."""
    ports = np.arange(n, dtype=np.int64)
    return ((ports[:, None] - ports[None, :]) % n).ravel()


# ---------------------------------------------------------------------------
# Aggregation helpers (stripe / frame completion)
# ---------------------------------------------------------------------------


def _unit_completion(
    batch: ArrivalBatch, unit_size: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Completion data of each packet's aggregation unit (stripe/frame).

    ``unit_size[voq]`` packets of a VOQ form one unit, cut in arrival
    order; the unit completes when its last packet arrives.  Returns
    ``(complete, c_slot, c_order, pos)`` per packet: whether the packet's
    unit ever completes inside the batch, the completion slot, a global
    completion tie-break (the completing packet's generation index —
    generation order *is* per-input acceptance order), and the packet's
    position within its unit.
    """
    voq = batch.voqs
    num_packets = len(voq)
    if num_packets == 0:
        empty = np.empty(0, dtype=np.int64)
        return np.empty(0, dtype=bool), empty, empty, empty
    n = batch.n
    # Group packets by VOQ (stable, so in-group order is arrival order);
    # every unit is then a contiguous run of `unit_size` grouped packets
    # and its completing packet is an in-group index away — no searching.
    order = stable_voq_argsort(voq, n)
    sorted_voq = voq[order]
    counts = np.bincount(voq, minlength=n * n)
    group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    rank = np.arange(num_packets, dtype=np.int64) - group_starts[sorted_voq]
    size = unit_size[sorted_voq]
    pos_g = rank % size
    completer_rank = rank - pos_g + size - 1  # in-group index of unit's last packet
    complete_g = completer_rank < counts[sorted_voq]
    completer_at = group_starts[sorted_voq] + np.minimum(
        completer_rank, counts[sorted_voq] - 1
    )
    c_slot_g = np.where(complete_g, batch.slots[order][completer_at], 0)
    c_order_g = np.where(complete_g, order[completer_at], 0)
    # Scatter back to generation order.
    complete = np.empty(num_packets, dtype=bool)
    c_slot = np.empty(num_packets, dtype=np.int64)
    c_order = np.empty(num_packets, dtype=np.int64)
    pos = np.empty(num_packets, dtype=np.int64)
    complete[order] = complete_g
    c_slot[order] = c_slot_g
    c_order[order] = c_order_g
    pos[order] = pos_g
    return complete, c_slot, c_order, pos


# ---------------------------------------------------------------------------
# Per-switch vectorized data paths
# ---------------------------------------------------------------------------


class _Departures:
    """SoA record of every departed packet of a run.

    ``wire`` is the within-slot observation tie-break of the object
    engine: packets departing in the same slot are handed to the metrics
    in intermediate-port order (output order for the output-queued
    switch).  Retained delay samples must be stored in that
    ``(departure, wire)`` order for order-sensitive downstream statistics
    (MSER truncation, batch means) to match the oracle exactly.
    """

    __slots__ = (
        "voq",
        "seq",
        "arrival",
        "departure",
        "wire",
        "assembled",
        "tx",
    )

    def __init__(
        self,
        voq: np.ndarray,
        seq: np.ndarray,
        arrival: np.ndarray,
        departure: np.ndarray,
        wire: np.ndarray,
        assembled: Optional[np.ndarray] = None,
        tx: Optional[np.ndarray] = None,
    ) -> None:
        self.voq = voq
        self.seq = seq
        self.arrival = arrival
        self.departure = departure
        self.wire = wire
        self.assembled = assembled
        self.tx = tx


def _sprinklers_departures(
    batch: ArrivalBatch, assignment: StripeIntervalAssignment
) -> _Departures:
    """Replay the Sprinklers data path (paper §3, oracle sizing)."""
    n = batch.n
    sizes = np.empty(n * n, dtype=np.int64)
    starts = np.empty(n * n, dtype=np.int64)
    for i in range(n):
        for j in range(n):
            interval = assignment.interval(i, j)
            sizes[i * n + j] = interval.size
            starts[i * n + j] = interval.start
    levels_tab = np.log2(sizes).astype(np.int64)

    complete, c_slot, c_order, pos = _unit_completion(batch, sizes)
    voq = batch.voqs[complete]
    inp = batch.inputs[complete]
    out = batch.outputs[complete]
    size = sizes[voq]
    start = starts[voq]
    level = levels_tab[voq]
    row = start + pos[complete]
    c = c_slot[complete]
    g = c_order[complete]

    # Safe insertion (§3.4.2): a completed stripe enters the input's LSF
    # grid at the first slot, from completion on, at which the fabric-1
    # pointer is not strictly inside its interval; while the pointer is at
    # start+1 .. start+size-1 the stripe waits until the pointer reaches
    # the interval's end.
    pointer = (inp + c) % n
    inside = (pointer > start) & (pointer < start + size)
    t_ins = c + np.where(inside, start + size - pointer, 0)

    # Stage 1: input i's LSF row `row` is polled by fabric 1 at slots
    # t ≡ row - i (mod n), serving the largest stripe class first; within
    # a (row, class) FIFO the order is stripe completion order (stripes of
    # one class covering a row share one dyadic interval, hence one safe-
    # insertion schedule, so insertion order equals completion order).
    tx = _replay_polled_queues(
        inp * n + row, level, t_ins, g, _row_residues(n), n
    )

    # Stage 2: the packet crosses to intermediate port `row` at tx and is
    # delivered next slot; intermediate m serves output j at slots
    # t ≡ m - j (mod n), again largest class first, FIFO by delivery
    # order (at most one delivery per intermediate per slot).
    departure = _replay_polled_queues(
        row * n + out, level, tx + 1, tx, _mid_residues(n), n
    )
    return _Departures(
        voq=voq,
        seq=batch.seqs[complete],
        arrival=batch.slots[complete],
        departure=departure,
        wire=row,
        assembled=c,
        tx=tx,
    )


def _ufs_departures(batch: ArrivalBatch) -> _Departures:
    """Replay Uniform Frame Spreading (paper §2.2)."""
    n = batch.n
    frame_size = np.full(batch.n * batch.n, n, dtype=np.int64)
    complete, c_slot, c_order, pos = _unit_completion(batch, frame_size)

    voq = batch.voqs[complete]
    inp = batch.inputs[complete]
    out = batch.outputs[complete]
    c = c_slot[complete]
    g = c_order[complete]
    p = pos[complete]

    # Frame spreading is cycle-aligned: a frame starts only when fabric 1
    # connects the input to intermediate 0 (t ≡ -i mod n), frames FCFS per
    # input by completion, back to back at best (one poll cycle apart).
    # Compute each frame's start via the running-max recursion over the
    # per-input frame sequence, then scatter to packets.
    frame_last = p == n - 1
    f_inp = inp[frame_last]
    f_c = c[frame_last]
    f_g = g[frame_last]
    f_sort = np.lexsort((f_g, f_inp))
    start = np.empty(len(f_inp), dtype=np.int64)
    bounds = np.flatnonzero(
        np.r_[True, f_inp[f_sort][1:] != f_inp[f_sort][:-1], True]
    )
    for b in range(len(bounds) - 1):
        lo, hi = bounds[b], bounds[b + 1]
        i = int(f_inp[f_sort[lo]])
        residue = (-i) % n
        ready = f_c[f_sort[lo:hi]]
        start[f_sort[lo:hi]] = _periodic_fifo_service(ready, residue, n)
    # Map each packet to its frame's start: frames are keyed like units.
    f_key_sorted = np.argsort(f_g)
    pkt_frame = np.searchsorted(f_g[f_key_sorted], g)
    frame_start = start[f_key_sorted][pkt_frame]

    tx = frame_start + p  # packet `p` of the frame crosses to intermediate p
    mid = p
    departure = _replay_polled_queues(
        mid * n + out,
        np.zeros(len(tx), dtype=np.int64),
        tx + 1,
        tx,
        _mid_residues(n),
        n,
    )
    return _Departures(
        voq=voq,
        seq=batch.seqs[complete],
        arrival=batch.slots[complete],
        departure=departure,
        wire=mid,
        assembled=c,
        tx=tx,
    )


def _baseline_departures(batch: ArrivalBatch) -> _Departures:
    """Replay the baseline load-balanced switch (Chang et al., ref [2])."""
    n = batch.n
    # Stage 1: one FIFO per input, served every slot.  Arrivals are
    # already (slot, input)-sorted, hence in FIFO order within each input.
    order = np.argsort(batch.inputs, kind="stable")
    tx = np.empty(len(batch.slots), dtype=np.int64)
    tx[order] = _segmented_fifo_service(
        batch.inputs[order], batch.slots[order]
    )
    mid = (batch.inputs + tx) % n
    departure = _replay_polled_queues(
        mid * n + batch.outputs,
        np.zeros(len(tx), dtype=np.int64),
        tx + 1,
        tx,
        _mid_residues(n),
        n,
    )
    return _Departures(
        voq=batch.voqs,
        seq=batch.seqs,
        arrival=batch.slots,
        departure=departure,
        wire=mid,
        tx=tx,
    )


def _output_queued_departures(batch: ArrivalBatch) -> _Departures:
    """Replay the ideal output-queued reference switch."""
    n = batch.n
    order = np.argsort(batch.outputs, kind="stable")
    service = np.empty(len(batch.slots), dtype=np.int64)
    service[order] = _segmented_fifo_service(
        batch.outputs[order], batch.slots[order]
    )
    return _Departures(
        voq=batch.voqs,
        seq=batch.seqs,
        arrival=batch.slots,
        departure=service + 1,  # cut-through floor of 1 slot
        wire=batch.outputs,  # OQ departures are observed in output order
    )


_DATA_PATHS = {
    "ufs": _ufs_departures,
    "load-balanced": _baseline_departures,
    "output-queued": _output_queued_departures,
}


# ---------------------------------------------------------------------------
# Metrics assembly
# ---------------------------------------------------------------------------


def _reordering_counts(dep: _Departures) -> Tuple[int, int]:
    """Vectorized :class:`~repro.switching.resequencer.ReorderingDetector`.

    Packets of one VOQ all depart via one output, one per slot at most, so
    per-VOQ observation order is departure-slot order.  A packet is late
    iff an earlier-departing packet of its VOQ carries a higher sequence
    number; displacement is that running max minus the packet's seq.
    """
    if len(dep.voq) == 0:
        return 0, 0
    order = _composite_argsort(dep.voq, dep.departure)
    voq = dep.voq[order]
    seq = dep.seq[order]
    # Segmented running max via a monotone offset: voq ids are sorted, so
    # adding voq * (max seq + 1) makes the global running max segment-local.
    big = int(seq.max()) + 1
    run = np.maximum.accumulate(seq + voq * big) - voq * big
    prev = np.empty(len(run), dtype=np.int64)
    prev[0] = -1
    prev[1:] = run[:-1]
    first = np.r_[True, voq[1:] != voq[:-1]]
    prev[first] = -1
    late = prev > seq
    displacement = int(np.max(prev[late] - seq[late])) if late.any() else 0
    return int(late.sum()), displacement


def _result_from_departures(
    switch_name: str,
    n: int,
    dep: _Departures,
    injected: int,
    num_slots: int,
    warmup_fraction: float,
    load_label: float,
    keep_samples: bool,
    extras: Optional[Dict[str, float]] = None,
) -> SimulationResult:
    """Build a :class:`SimulationResult` identical to the object engine's."""
    warmup = int(num_slots * warmup_fraction)
    metrics = SimulationMetrics(keep_samples=keep_samples)
    measured = dep.arrival >= warmup
    delays = dep.departure[measured] - dep.arrival[measured]
    stats = metrics.delays
    stats.count = int(len(delays))
    stats.total = int(delays.sum())
    stats.total_sq = int(np.sum(delays * delays))
    if len(delays):
        stats.min = int(delays.min())
        stats.max = int(delays.max())
    if keep_samples:
        # Order-sensitive statistics (MSER truncation, batch means in
        # delay_ci) require the object engine's observation order:
        # departure slot, then intermediate-port order within a slot.
        obs = _composite_argsort(
            dep.departure[measured], dep.wire[measured]
        )
        stats._samples = delays[obs].tolist()
    metrics.measured_departures = stats.count

    late, displacement = _reordering_counts(dep)
    metrics.reordering.observed = int(len(dep.voq))
    metrics.reordering.late_packets = late
    metrics.reordering.max_displacement = displacement

    if dep.assembled is not None and dep.tx is not None:
        metrics.breakdown_count = stats.count
        metrics.assembly_total = int(
            (dep.assembled[measured] - dep.arrival[measured]).sum()
        )
        metrics.input_queue_total = int(
            (dep.tx[measured] - dep.assembled[measured]).sum()
        )
        metrics.transit_total = int(
            (dep.departure[measured] - dep.tx[measured]).sum()
        )

    return SimulationResult(
        switch_name=switch_name,
        n=n,
        load=load_label,
        slots=num_slots,
        warmup=warmup,
        metrics=metrics,
        injected=injected,
        departed=int(len(dep.voq)),
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def run_single_fast(
    switch_name: str,
    matrix,
    num_slots: int,
    seed: int = 0,
    load_label: float = float("nan"),
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    batch_traffic: Optional[BatchTrafficGenerator] = None,
) -> SimulationResult:
    """Vectorized counterpart of :func:`repro.sim.experiment.run_single`.

    Same seed discipline (traffic and placement seeds derived identically),
    same measurement conventions (warm-up by arrival slot, ordering checked
    on every departure), same result schema — different internals: the
    whole run is drawn as one arrival batch and replayed with array
    recursions.

    ``batch_traffic`` substitutes a pre-built packet source (the scenario
    subsystem passes its nonstationary batch generator here); ``matrix``
    then only provisions the switch (e.g. Sprinklers' placement).
    """
    if not supports_fast_engine(switch_name):
        known = ", ".join(FAST_ENGINE_SWITCHES)
        raise ValueError(
            f"switch {switch_name!r} has no vectorized data path "
            f"(supported: {known}); use the object engine"
        )
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    matrix = validate_matrix(matrix)
    n = matrix.shape[0]
    if batch_traffic is None:
        traffic_rng = np.random.default_rng(derive_seed(seed, "traffic"))
        batch_traffic = BatchTrafficGenerator(matrix, traffic_rng)
    if batch_traffic.n != n:
        raise ValueError("batch traffic size does not match matrix")
    batch = batch_traffic.draw(num_slots)

    extras: Optional[Dict[str, float]] = None
    if switch_name == "sprinklers":
        placement_rng = np.random.default_rng(
            derive_seed(seed, "sprinklers-placement")
        )
        assignment = StripeIntervalAssignment(
            matrix, rng=placement_rng, mode=PlacementMode.OLS
        )
        dep = _sprinklers_departures(batch, assignment)
        extras = {"resizes": 0.0}  # oracle sizing never resizes
    else:
        dep = _DATA_PATHS[switch_name](batch)

    return _result_from_departures(
        _REPORTED_NAMES[switch_name],
        n,
        dep,
        injected=len(batch),
        num_slots=num_slots,
        warmup_fraction=warmup_fraction,
        load_label=load_label,
        keep_samples=keep_samples,
        extras=extras,
    )
