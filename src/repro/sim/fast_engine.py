"""Vectorized batch simulation engine (structure-of-arrays, NumPy).

The object engine in :mod:`repro.sim.engine` advances one slot at a time,
constructing a Python object per packet and dispatching through the switch
class hierarchy — faithful, auditable, and far too slow for the paper's
200k-slot Figs. 6-7 regime.  This module simulates the same switches by
*replaying their deterministic dynamics on flat arrays*, one vectorized
pass per pipeline stage instead of one Python iteration per packet per
slot.

Per-switch data paths live in :mod:`repro.sim.kernels` and are resolved
through the switch-model registry (:mod:`repro.models`): a switch is
vectorizable iff its :class:`~repro.models.SwitchModel` carries a kernel,
and every kernel declares :data:`~repro.models.Capability.EXACT_REPLAY`
— given the same seed it reproduces the object engine's per-packet
departure slots *exactly* (pinned by the engine-equivalence tests).  The
object engine remains the ordering-audit oracle because it exercises the
real data-path code.

Vectorized today: ``sprinklers`` (oracle sizing), ``ufs``, ``pf``
(padding is deterministic given frame formation), ``foff`` (resequencer
replay via a per-flow departure-time sort), ``load-balanced`` and
``output-queued`` — ask ``repro.models.available(engine="vectorized")``
rather than hardcoding the list.  Switches whose control loops are
feedback-coupled (adaptive Sprinklers) or not yet modeled (CMS, hashing)
keep the object engine.

Two scaling modes sit on top of the kernels:

* **Windowed (streaming) replay** — ``run_single_fast(...,
  window_slots=W)`` draws and replays the run in consecutive ``W``-slot
  windows through the switch's resumable stream kernel
  (:data:`~repro.models.Capability.STREAMING`), with bit-identical
  results and O(``W``) peak arrival-array memory instead of O(run).
* **Multi-seed batching** — :func:`run_replications_fast` replays many
  seeds at once through one stream-kernel instance where the kernel
  supports a seed axis (:data:`~repro.models.Capability.SEED_BATCHED`),
  amortizing the array-setup overheads that dominate short replications.

The legacy module attributes ``FAST_ENGINE_SWITCHES`` and
``supports_fast_engine`` are deprecation shims over the registry.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import models, telemetry
from ..sim.metrics import SimulationMetrics, SimulationResult
from ..sim.rng import traffic_rng
from ..traffic.batch import BatchTrafficGenerator
from ..traffic.matrices import validate_matrix
from .kernels.base import Departures, composite_argsort
from .kernels.compiled import compiled_active, kernel_backend
from .kernels.compiled.fold_pass import fold_running_max

__all__ = [
    "FAST_ENGINE_SWITCHES",
    "supports_fast_engine",
    "run_single_fast",
    "run_replications_fast",
]


def supports_fast_engine(switch_name: str) -> bool:
    """Whether ``switch_name`` has a vectorized implementation.

    .. deprecated::
        Ask the registry instead:
        ``repro.models.get(name).kernel is not None`` (or membership in
        ``repro.models.available(engine="vectorized")``).  Unknown names
        return False, as they always did.
    """
    warnings.warn(
        "supports_fast_engine is deprecated; use repro.models.get(name)"
        ".kernel / repro.models.available(engine='vectorized')",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        return models.get(switch_name).kernel is not None
    except ValueError:
        return False


def __getattr__(name: str):
    if name == "FAST_ENGINE_SWITCHES":
        warnings.warn(
            "FAST_ENGINE_SWITCHES is deprecated; use "
            "repro.models.available(engine='vectorized')",
            DeprecationWarning,
            stacklevel=2,
        )
        return models.available(engine="vectorized")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Target stacked-event count per seed group in the batched replication
#: path: wide enough to amortize per-call overheads across seeds, small
#: enough that the stacked working set stays cache-resident (measured
#: optimum on the engine benchmark; see benchmarks/bench_engines.py).
_STACK_TARGET_EVENTS = 1 << 14


# ---------------------------------------------------------------------------
# Metrics assembly
# ---------------------------------------------------------------------------


def _fold_reordering(
    voq: np.ndarray, seq: np.ndarray, prev_max: np.ndarray
) -> tuple:
    """Vectorized :class:`~repro.switching.resequencer.ReorderingDetector`
    step over one (voq, observation)-sorted event block.

    Per VOQ in observation order, a packet is late iff an
    earlier-observed packet of its VOQ carries a higher sequence number.
    ``prev_max`` carries each VOQ's running max across blocks (windows);
    it is seeded from and updated **in place**.  Returns ``(late_mask,
    prev)`` where ``prev`` is the per-packet predecessor max (for
    displacement).  The segmented running max uses a monotone offset:
    voq ids are sorted, so adding ``voq * (max seq + 1)`` makes the
    global running max segment-local.
    """
    if compiled_active():
        prev = np.empty(len(voq), dtype=np.int64)
        fold_running_max(voq, seq, prev_max, prev)
        return prev > seq, prev
    big = int(seq.max()) + 1
    run = np.maximum.accumulate(seq + voq * big) - voq * big
    prev = np.empty(len(run), dtype=np.int64)
    prev[0] = -1
    prev[1:] = run[:-1]
    first = np.r_[True, voq[1:] != voq[:-1]]
    prev[first] = -1
    prev = np.maximum(prev, prev_max[voq])
    bounds = np.flatnonzero(np.r_[first, True])
    last = bounds[1:] - 1
    prev_max[voq[last]] = np.maximum(run, prev)[last]
    return prev > seq, prev


class _MetricsAccumulator:
    """Streaming fold of :class:`Departures` into run metrics.

    Consumes departures one finalized window at a time (windows arrive in
    nondecreasing departure order, as the stream kernels guarantee) and
    carries exactly the state the final :class:`SimulationResult` needs:
    scalar delay statistics, the retained samples (observation order),
    the per-VOQ running max sequence number of the vectorized
    :class:`~repro.switching.resequencer.ReorderingDetector` — a packet
    is late iff an earlier-observed packet of its VOQ carries a higher
    sequence number — and the delay-breakdown sums.  The monolithic path
    is the one-window special case, so both paths share this logic.
    """

    def __init__(self, n: int, warmup: int, keep_samples: bool) -> None:
        self.n = n
        self.warmup = warmup
        self.keep_samples = keep_samples
        self.count = 0
        self.total = 0
        self.total_sq = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.hist: Dict[int, int] = {}
        self.samples: List[int] = []
        self.departed = 0
        self.late = 0
        self.displacement = 0
        self._prev_max = np.full(n * n, -1, dtype=np.int64)
        self.has_breakdown = False
        self.assembly_total = 0
        self.input_queue_total = 0
        self.transit_total = 0

    def add(self, dep: Departures) -> None:
        if len(dep.voq) == 0:
            return
        self.departed += len(dep.voq)

        # Reordering: per VOQ in observation order, a packet is late iff
        # the running max sequence number already exceeds its own.
        within = dep.wire if dep.wire_is_rank else dep.departure
        order = composite_argsort(dep.voq, within)
        voq = dep.voq[order]
        seq = dep.seq[order]
        late, prev = _fold_reordering(voq, seq, self._prev_max)
        if late.any():
            self.late += int(late.sum())
            self.displacement = max(
                self.displacement, int(np.max(prev[late] - seq[late]))
            )

        # Delay statistics over measured (post-warm-up arrival) packets.
        measured = dep.arrival >= self.warmup
        delays = dep.departure[measured] - dep.arrival[measured]
        self.count += int(len(delays))
        self.total += int(delays.sum())
        self.total_sq += int(np.sum(delays * delays))
        if len(delays):
            self.min = (
                int(delays.min()) if self.min is None
                else min(self.min, int(delays.min()))
            )
            self.max = (
                int(delays.max()) if self.max is None
                else max(self.max, int(delays.max()))
            )
            # The exact sparse delay histogram: integer slot-count delays
            # fold per window, so percentiles stay exact with zero
            # retained per-packet arrays (the fused-metrics path).
            hist = self.hist
            values, counts = np.unique(delays, return_counts=True)
            for value, cnt in zip(values.tolist(), counts.tolist()):
                hist[value] = hist.get(value, 0) + cnt
        if self.keep_samples:
            # Order-sensitive statistics (MSER truncation, batch means
            # in delay_ci) require the object engine's observation
            # order: departure slot, then the kernel's within-slot
            # tie-break.  Finalized windows never interleave in that
            # order, so per-window sorted blocks concatenate exactly.
            obs = composite_argsort(dep.departure[measured], dep.wire[measured])
            self.samples.extend(delays[obs].tolist())

        if dep.assembled is not None and dep.tx is not None:
            self.has_breakdown = True
            self.assembly_total += int(
                (dep.assembled[measured] - dep.arrival[measured]).sum()
            )
            self.input_queue_total += int(
                (dep.tx[measured] - dep.assembled[measured]).sum()
            )
            self.transit_total += int(
                (dep.departure[measured] - dep.tx[measured]).sum()
            )

    def result(
        self,
        switch_name: str,
        injected: int,
        num_slots: int,
        load_label: float,
        extras: Optional[Dict[str, float]] = None,
    ) -> SimulationResult:
        """Build a :class:`SimulationResult` identical to the object
        engine's."""
        metrics = SimulationMetrics(keep_samples=self.keep_samples)
        stats = metrics.delays
        stats.count = self.count
        stats.total = self.total
        stats.total_sq = self.total_sq
        if self.count:
            stats.min = self.min
            stats.max = self.max
        stats._hist = dict(self.hist)
        if self.keep_samples:
            stats._samples = self.samples
        metrics.measured_departures = self.count

        metrics.reordering.observed = self.departed
        metrics.reordering.late_packets = self.late
        metrics.reordering.max_displacement = self.displacement

        if self.has_breakdown:
            metrics.breakdown_count = self.count
            metrics.assembly_total = self.assembly_total
            metrics.input_queue_total = self.input_queue_total
            metrics.transit_total = self.transit_total

        return SimulationResult(
            switch_name=switch_name,
            n=self.n,
            load=load_label,
            slots=num_slots,
            warmup=self.warmup,
            metrics=metrics,
            injected=injected,
            departed=self.departed,
            extras=extras,
        )


class _StackedMetricsAccumulator:
    """Per-seed metrics from one *stacked* multi-seed departure record.

    The seed-batched replay keeps all seeds in one event block (VOQ ids
    ``seed * n^2 + voq``); folding metrics per seed with segmented
    reductions (``np.add.at`` / ``bincount`` keyed by the seed block)
    costs a handful of stacked passes instead of R per-seed accumulator
    calls plus a split pass — the accounting that used to dominate short
    batched replications.  Sample retention needs per-seed observation
    order, so this path serves ``keep_samples=False`` (what replications
    use); results are identical to the per-seed accumulator.
    """

    def __init__(self, n: int, num_blocks: int, warmup: int) -> None:
        self.n = n
        self.num_blocks = num_blocks
        self.warmup = warmup
        big = np.iinfo(np.int64).max
        self.count = np.zeros(num_blocks, dtype=np.int64)
        self.total = np.zeros(num_blocks, dtype=np.int64)
        self.total_sq = np.zeros(num_blocks, dtype=np.int64)
        self.min = np.full(num_blocks, big, dtype=np.int64)
        self.max = np.full(num_blocks, -1, dtype=np.int64)
        self.hist: List[Dict[int, int]] = [{} for _ in range(num_blocks)]
        self.departed = np.zeros(num_blocks, dtype=np.int64)
        self.late = np.zeros(num_blocks, dtype=np.int64)
        self.displacement = np.zeros(num_blocks, dtype=np.int64)
        self._prev_max = np.full(num_blocks * n * n, -1, dtype=np.int64)
        self.has_breakdown = False
        self.assembly_total = np.zeros(num_blocks, dtype=np.int64)
        self.input_queue_total = np.zeros(num_blocks, dtype=np.int64)
        self.transit_total = np.zeros(num_blocks, dtype=np.int64)

    @staticmethod
    def _segment_sums(values: np.ndarray, bounds: np.ndarray) -> np.ndarray:
        """Exact int64 per-segment sums via one padded prefix sum."""
        prefix = np.concatenate(([0], np.cumsum(values)))
        return prefix[bounds[1:]] - prefix[bounds[:-1]]

    def add(self, dep: Departures) -> None:
        """Fold a stacked record (``dep.voq`` seed-extended)."""
        if len(dep.voq) == 0:
            return
        n2 = self.n * self.n

        # One (voq, observation) sort serves double duty: it is the
        # reordering-detector order AND it groups events by seed block
        # (block is the VOQ id's high digits), so every per-seed
        # statistic below folds with prefix sums over block slices —
        # no scattered np.add.at passes.
        within = dep.wire if dep.wire_is_rank else dep.departure
        order = composite_argsort(dep.voq, within)
        voq = dep.voq[order]
        seq = dep.seq[order]
        block = voq // n2
        bounds = np.searchsorted(block, np.arange(self.num_blocks + 1))
        self.departed += bounds[1:] - bounds[:-1]

        late, prev = _fold_reordering(voq, seq, self._prev_max)
        if late.any():
            late_block = block[late]
            np.add.at(self.late, late_block, 1)
            np.maximum.at(
                self.displacement, late_block, prev[late] - seq[late]
            )

        measured = (dep.arrival >= self.warmup)[order].astype(np.int64)
        arrival = dep.arrival[order]
        departure = dep.departure[order]
        delays = (departure - arrival) * measured
        self.count += self._segment_sums(measured, bounds)
        self.total += self._segment_sums(delays, bounds)
        self.total_sq += self._segment_sums(delays * delays, bounds)
        is_measured = measured.astype(bool)
        np.minimum.at(
            self.min, block[is_measured], delays[is_measured]
        )
        np.maximum.at(
            self.max, block[is_measured], delays[is_measured]
        )
        if is_measured.any():
            # Per-seed exact delay histograms in one stacked unique pass
            # (composite key: block * stride + delay).
            mdelays = delays[is_measured]
            stride = int(mdelays.max()) + 1
            values, counts = np.unique(
                block[is_measured] * stride + mdelays, return_counts=True
            )
            for key, cnt in zip(values.tolist(), counts.tolist()):
                h = self.hist[key // stride]
                delay = key % stride
                h[delay] = h.get(delay, 0) + cnt

        if dep.assembled is not None and dep.tx is not None:
            self.has_breakdown = True
            assembled = dep.assembled[order]
            tx = dep.tx[order]
            self.assembly_total += self._segment_sums(
                (assembled - arrival) * measured, bounds
            )
            self.input_queue_total += self._segment_sums(
                (tx - assembled) * measured, bounds
            )
            self.transit_total += self._segment_sums(
                (departure - tx) * measured, bounds
            )

    def results(
        self,
        switch_name: str,
        injected: Sequence[int],
        num_slots: int,
        load_label: float,
        extras: Sequence[Optional[Dict[str, float]]],
    ) -> List[SimulationResult]:
        out = []
        for b in range(self.num_blocks):
            metrics = SimulationMetrics(keep_samples=False)
            stats = metrics.delays
            stats.count = int(self.count[b])
            stats.total = int(self.total[b])
            stats.total_sq = int(self.total_sq[b])
            if stats.count:
                stats.min = int(self.min[b])
                stats.max = int(self.max[b])
            stats._hist = dict(self.hist[b])
            metrics.measured_departures = stats.count
            metrics.reordering.observed = int(self.departed[b])
            metrics.reordering.late_packets = int(self.late[b])
            metrics.reordering.max_displacement = int(self.displacement[b])
            if self.has_breakdown:
                metrics.breakdown_count = stats.count
                metrics.assembly_total = int(self.assembly_total[b])
                metrics.input_queue_total = int(self.input_queue_total[b])
                metrics.transit_total = int(self.transit_total[b])
            out.append(
                SimulationResult(
                    switch_name=switch_name,
                    n=self.n,
                    load=load_label,
                    slots=num_slots,
                    warmup=self.warmup,
                    metrics=metrics,
                    injected=int(injected[b]),
                    departed=int(self.departed[b]),
                    extras=extras[b],
                )
            )
        return out


def _result_from_departures(
    switch_name: str,
    n: int,
    dep: Departures,
    injected: int,
    num_slots: int,
    warmup_fraction: float,
    load_label: float,
    keep_samples: bool,
    extras: Optional[Dict[str, float]] = None,
) -> SimulationResult:
    """Build a :class:`SimulationResult` from one monolithic replay."""
    warmup = int(num_slots * warmup_fraction)
    acc = _MetricsAccumulator(n, warmup, keep_samples)
    acc.add(dep)
    return acc.result(switch_name, injected, num_slots, load_label, extras)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def _observe_throughput(span, slots: int, packets: int) -> None:
    """Window-rate observations off a finished span (``span`` is None on
    the disabled path's null handle, making this a no-op)."""
    if span is None or not span.dur_s:
        return
    telemetry.observe("replay.window.slots_per_s", slots / span.dur_s)
    telemetry.observe("replay.window.packets_per_s", packets / span.dur_s)


def _checked_model(switch_name: str, switch_params: Dict) -> "models.SwitchModel":
    """Resolve a switch model and validate vectorized-engine support."""
    model = models.get(switch_name)
    if model.kernel is None:
        known = ", ".join(models.available(engine="vectorized"))
        raise ValueError(
            f"switch {switch_name!r} has no vectorized data path "
            f"(supported: {known}); use the object engine"
        )
    model.validate_params(switch_params)
    unsupported = set(switch_params) - set(model.kernel_params)
    if unsupported:
        raise ValueError(
            f"switch {switch_name!r}: parameters {sorted(unsupported)} are "
            f"not modeled by the vectorized kernel (kernel honors: "
            f"{sorted(model.kernel_params) or 'none'}); use the object "
            f"engine"
        )
    return model


def run_single_fast(
    switch_name: str,
    matrix,
    num_slots: int,
    seed: int = 0,
    load_label: float = float("nan"),
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    batch_traffic: Optional[BatchTrafficGenerator] = None,
    switch_params: Optional[Dict] = None,
    window_slots: Optional[int] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Vectorized counterpart of :func:`repro.sim.experiment.run_single`.

    Same seed discipline (traffic and placement seeds derived identically),
    same measurement conventions (warm-up by arrival slot, ordering checked
    on every departure), same result schema — different internals: the
    whole run is drawn as one arrival batch and replayed by the switch's
    registered kernel (:mod:`repro.sim.kernels`, resolved through
    :mod:`repro.models`).

    ``batch_traffic`` substitutes a pre-built packet source (the scenario
    subsystem passes its nonstationary batch generator here); ``matrix``
    then only provisions the switch (e.g. Sprinklers' placement).
    ``switch_params`` must be parameters the model's kernel declares in
    ``kernel_params`` (this entry point raises rather than falling back).

    ``window_slots`` switches to the *streaming* replay: traffic is drawn
    and replayed in consecutive windows of that many slots through the
    model's resumable stream kernel, producing a bit-identical result
    with O(``window_slots``) peak arrival-array memory — the mode for
    multi-million-slot runs that cannot materialize their arrivals at
    once.  Requires the model to declare
    :data:`~repro.models.Capability.STREAMING`.

    ``backend`` selects the kernel backend for this run (``"numpy"`` or
    ``"compiled"``; see :mod:`repro.sim.kernels.compiled`).  Results are
    bit-identical across backends; ``None`` keeps whatever is active.
    """
    if backend is not None:
        with kernel_backend(backend):
            return run_single_fast(
                switch_name,
                matrix,
                num_slots,
                seed=seed,
                load_label=load_label,
                warmup_fraction=warmup_fraction,
                keep_samples=keep_samples,
                batch_traffic=batch_traffic,
                switch_params=switch_params,
                window_slots=window_slots,
            )
    switch_params = switch_params or {}
    model = _checked_model(switch_name, switch_params)
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    matrix = validate_matrix(matrix)
    n = matrix.shape[0]
    if batch_traffic is None:
        batch_traffic = BatchTrafficGenerator(matrix, traffic_rng(seed))
    if batch_traffic.n != n:
        raise ValueError("batch traffic size does not match matrix")

    if window_slots is None:
        with telemetry.trace(
            "replay.monolithic", switch=model.reported_name, slots=num_slots
        ) as run_span:
            with telemetry.trace("traffic.draw"):
                batch = batch_traffic.draw(num_slots)
            with telemetry.trace("kernel.replay"):
                dep, extras = model.kernel(
                    batch, matrix, seed, **switch_params
                )
            run_span.set(packets=len(batch))
        _observe_throughput(run_span.span, num_slots, len(batch))
        return _result_from_departures(
            model.reported_name,
            n,
            dep,
            injected=len(batch),
            num_slots=num_slots,
            warmup_fraction=warmup_fraction,
            load_label=load_label,
            keep_samples=keep_samples,
            extras=extras,
        )

    if window_slots <= 0:
        raise ValueError("window_slots must be positive")
    if model.stream_kernel is None:
        known = ", ".join(
            models.available(engine="vectorized", capability="streaming")
        )
        raise ValueError(
            f"switch {switch_name!r} has no streaming kernel "
            f"(streaming switches: {known}); drop window_slots"
        )
    # The windowed replay runs through the Stage adapter — the same
    # window-in / finalized-departures-out interface the multi-stage
    # fabrics compose (repro.sim.stage / repro.sim.composite).
    from .stage import KernelStage

    stage = KernelStage(model, matrix, seed, num_slots, switch_params)
    warmup = int(num_slots * warmup_fraction)
    acc = _MetricsAccumulator(n, warmup, keep_samples)
    with telemetry.trace(
        "replay.stream",
        switch=model.reported_name,
        slots=num_slots,
        window_slots=window_slots,
    ):
        if window_slots >= num_slots:
            # One window is the whole run: a single flush pass does it all.
            with telemetry.trace("traffic.draw"):
                batch = batch_traffic.draw(num_slots)
            injected = len(batch)
            final, extras = stage.finish(batch)
        else:
            injected = 0
            windows = telemetry.traced_iter(
                "traffic.draw",
                batch_traffic.draw_chunks(num_slots, window_slots),
            )
            for window in windows:
                injected += len(window)
                with telemetry.trace(
                    "replay.window",
                    slots=window.num_slots,
                    packets=len(window),
                ) as span:
                    acc.add(stage.feed(window))
                _observe_throughput(span.span, window.num_slots, len(window))
                telemetry.count("replay.windows")
        with telemetry.trace("replay.finish"):
            if window_slots < num_slots:
                final, extras = stage.finish()
            acc.add(final)
    return acc.result(
        model.reported_name, injected, num_slots, load_label, extras
    )


def run_replications_fast(
    switch_name: str,
    matrix,
    num_slots: int,
    seeds: Sequence[int],
    load_label: float = float("nan"),
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    batch_traffics: Optional[Sequence[BatchTrafficGenerator]] = None,
    switch_params: Optional[Dict] = None,
    window_slots: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[SimulationResult]:
    """Replay many seeds of one configuration in a single kernel pass.

    All seeds' traffic is drawn window-by-window and stacked into one
    event block per window; the switch's stream kernel replays the stack
    with a leading seed axis (disjoint per-seed id blocks, so the seeds'
    dynamics stay exactly independent).  Per-seed results are
    bit-identical to ``run_single_fast`` run seed-by-seed — what changes
    is wall-clock: one array pass over R seeds' events amortizes the
    per-call overheads that dominate short replications.

    Requires the model to declare
    :data:`~repro.models.Capability.SEED_BATCHED` — which every
    vectorized switch does, the frame-at-a-time PF/FOFF included: their
    array-stepped formation engine treats each (seed, input) pair as one
    more lane, so stacking seeds widens the per-cycle vector step
    instead of multiplying the step count.

    ``batch_traffics`` substitutes pre-built per-seed packet sources (one
    per seed, e.g. scenario traffic); ``window_slots`` bounds arrival
    memory exactly as in :func:`run_single_fast` (default: one window);
    ``backend`` selects the kernel backend exactly as there.
    """
    if backend is not None:
        with kernel_backend(backend):
            return run_replications_fast(
                switch_name,
                matrix,
                num_slots,
                seeds,
                load_label=load_label,
                warmup_fraction=warmup_fraction,
                keep_samples=keep_samples,
                batch_traffics=batch_traffics,
                switch_params=switch_params,
                window_slots=window_slots,
            )
    switch_params = switch_params or {}
    model = _checked_model(switch_name, switch_params)
    if model.stream_kernel is None or not model.seed_batched:
        known = ", ".join(
            models.available(engine="vectorized", capability="seed-batched")
        )
        raise ValueError(
            f"switch {switch_name!r} has no seed-batched kernel "
            f"(seed-batched switches: {known}); replicate seed-by-seed"
        )
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    matrix = validate_matrix(matrix)
    n = matrix.shape[0]
    seeds = list(seeds)
    if batch_traffics is None:
        batch_traffics = [
            BatchTrafficGenerator(matrix, traffic_rng(seed))
            for seed in seeds
        ]
    if len(batch_traffics) != len(seeds):
        raise ValueError("need one traffic source per seed")
    for traffic in batch_traffics:
        if traffic.n != n:
            raise ValueError("batch traffic size does not match matrix")
    window = window_slots if window_slots is not None else num_slots
    if window <= 0:
        raise ValueError("window_slots must be positive")

    warmup = int(num_slots * warmup_fraction)
    if window >= num_slots and not keep_samples:
        # One window is the whole run and nobody wants samples: draw each
        # seed monolithically, flush the stacked replay in a single pass,
        # and fold per-seed metrics with segmented reductions over the
        # stack — the default (and fastest) multi-seed batching mode.
        # Seeds are stacked in cache-sized groups: stacking amortizes
        # per-call overheads, but an over-wide stack spills the working
        # set out of cache and loses more than it amortizes.
        per_seed = max(1.0, float(np.sum(matrix)) * num_slots)
        group = max(1, min(len(seeds), int(_STACK_TARGET_EVENTS / per_seed)))
        results: List[SimulationResult] = []
        for lo in range(0, len(seeds), group):
            chunk = seeds[lo : lo + group]
            with telemetry.trace(
                "replay.seed_batch", seeds=len(chunk), slots=num_slots
            ):
                streamer = model.stream_kernel(
                    matrix, chunk, num_slots, **switch_params
                )
                batches = [
                    t.draw(num_slots)
                    for t in batch_traffics[lo : lo + group]
                ]
                dep, extras = streamer.finish_stacked(batches)
                acc = _StackedMetricsAccumulator(n, len(chunk), warmup)
                acc.add(dep)
            results.extend(
                acc.results(
                    model.reported_name,
                    [len(b) for b in batches],
                    num_slots,
                    load_label,
                    extras,
                )
            )
        return results
    streamer = model.stream_kernel(matrix, seeds, num_slots, **switch_params)
    accs = [
        _MetricsAccumulator(n, warmup, keep_samples) for _ in seeds
    ]
    injected = [0] * len(seeds)
    if window >= num_slots:
        batches = [t.draw(num_slots) for t in batch_traffics]
        injected = [len(b) for b in batches]
        final, extras = streamer.finish(batches)
    else:
        draws = [t.draw_chunks(num_slots, window) for t in batch_traffics]
        for windows in zip(*draws):
            for r, w in enumerate(windows):
                injected[r] += len(w)
            for r, dep in enumerate(streamer.feed(list(windows))):
                accs[r].add(dep)
        final, extras = streamer.finish()
    for r, dep in enumerate(final):
        accs[r].add(dep)
    return [
        accs[r].result(
            model.reported_name, injected[r], num_slots, load_label, extras[r]
        )
        for r in range(len(seeds))
    ]
