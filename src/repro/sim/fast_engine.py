"""Vectorized batch simulation engine (structure-of-arrays, NumPy).

The object engine in :mod:`repro.sim.engine` advances one slot at a time,
constructing a Python object per packet and dispatching through the switch
class hierarchy — faithful, auditable, and far too slow for the paper's
200k-slot Figs. 6-7 regime.  This module simulates the same switches by
*replaying their deterministic dynamics on flat arrays*, one vectorized
pass per pipeline stage instead of one Python iteration per packet per
slot.

Per-switch data paths live in :mod:`repro.sim.kernels` and are resolved
through the switch-model registry (:mod:`repro.models`): a switch is
vectorizable iff its :class:`~repro.models.SwitchModel` carries a kernel,
and every kernel declares :data:`~repro.models.Capability.EXACT_REPLAY`
— given the same seed it reproduces the object engine's per-packet
departure slots *exactly* (pinned by the engine-equivalence tests).  The
object engine remains the ordering-audit oracle because it exercises the
real data-path code.

Vectorized today: ``sprinklers`` (oracle sizing), ``ufs``, ``pf``
(padding is deterministic given frame formation), ``foff`` (resequencer
replay via a per-flow departure-time sort), ``load-balanced`` and
``output-queued`` — ask ``repro.models.available(engine="vectorized")``
rather than hardcoding the list.  Switches whose control loops are
feedback-coupled (adaptive Sprinklers) or not yet modeled (CMS, hashing)
keep the object engine.

The legacy module attributes ``FAST_ENGINE_SWITCHES`` and
``supports_fast_engine`` are deprecation shims over the registry.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Tuple

import numpy as np

from .. import models
from ..sim.metrics import SimulationMetrics, SimulationResult
from ..sim.rng import derive_seed
from ..traffic.batch import BatchTrafficGenerator
from ..traffic.matrices import validate_matrix
from .kernels.base import Departures, composite_argsort

__all__ = [
    "FAST_ENGINE_SWITCHES",
    "supports_fast_engine",
    "run_single_fast",
]


def supports_fast_engine(switch_name: str) -> bool:
    """Whether ``switch_name`` has a vectorized implementation.

    .. deprecated::
        Ask the registry instead:
        ``repro.models.get(name).kernel is not None`` (or membership in
        ``repro.models.available(engine="vectorized")``).  Unknown names
        return False, as they always did.
    """
    warnings.warn(
        "supports_fast_engine is deprecated; use repro.models.get(name)"
        ".kernel / repro.models.available(engine='vectorized')",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        return models.get(switch_name).kernel is not None
    except ValueError:
        return False


def __getattr__(name: str):
    if name == "FAST_ENGINE_SWITCHES":
        warnings.warn(
            "FAST_ENGINE_SWITCHES is deprecated; use "
            "repro.models.available(engine='vectorized')",
            DeprecationWarning,
            stacklevel=2,
        )
        return models.available(engine="vectorized")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ---------------------------------------------------------------------------
# Metrics assembly
# ---------------------------------------------------------------------------


def _reordering_counts(dep: Departures) -> Tuple[int, int]:
    """Vectorized :class:`~repro.switching.resequencer.ReorderingDetector`.

    Per VOQ, packets are checked in observation order; a packet is late
    iff an earlier-observed packet of its VOQ carries a higher sequence
    number, and displacement is that running max minus the packet's seq.
    For most switches per-VOQ observation order is simply departure-slot
    order (one departure per output per slot); kernels that release
    several packets of a flow in one slot (FOFF's resequencers) provide
    the full observation rank in ``wire`` instead (``wire_is_rank``).
    """
    if len(dep.voq) == 0:
        return 0, 0
    within = dep.wire if dep.wire_is_rank else dep.departure
    order = composite_argsort(dep.voq, within)
    voq = dep.voq[order]
    seq = dep.seq[order]
    # Segmented running max via a monotone offset: voq ids are sorted, so
    # adding voq * (max seq + 1) makes the global running max segment-local.
    big = int(seq.max()) + 1
    run = np.maximum.accumulate(seq + voq * big) - voq * big
    prev = np.empty(len(run), dtype=np.int64)
    prev[0] = -1
    prev[1:] = run[:-1]
    first = np.r_[True, voq[1:] != voq[:-1]]
    prev[first] = -1
    late = prev > seq
    displacement = int(np.max(prev[late] - seq[late])) if late.any() else 0
    return int(late.sum()), displacement


def _result_from_departures(
    switch_name: str,
    n: int,
    dep: Departures,
    injected: int,
    num_slots: int,
    warmup_fraction: float,
    load_label: float,
    keep_samples: bool,
    extras: Optional[Dict[str, float]] = None,
) -> SimulationResult:
    """Build a :class:`SimulationResult` identical to the object engine's."""
    warmup = int(num_slots * warmup_fraction)
    metrics = SimulationMetrics(keep_samples=keep_samples)
    measured = dep.arrival >= warmup
    delays = dep.departure[measured] - dep.arrival[measured]
    stats = metrics.delays
    stats.count = int(len(delays))
    stats.total = int(delays.sum())
    stats.total_sq = int(np.sum(delays * delays))
    if len(delays):
        stats.min = int(delays.min())
        stats.max = int(delays.max())
    if keep_samples:
        # Order-sensitive statistics (MSER truncation, batch means in
        # delay_ci) require the object engine's observation order:
        # departure slot, then the kernel's within-slot tie-break.
        obs = composite_argsort(dep.departure[measured], dep.wire[measured])
        stats._samples = delays[obs].tolist()
    metrics.measured_departures = stats.count

    late, displacement = _reordering_counts(dep)
    metrics.reordering.observed = int(len(dep.voq))
    metrics.reordering.late_packets = late
    metrics.reordering.max_displacement = displacement

    if dep.assembled is not None and dep.tx is not None:
        metrics.breakdown_count = stats.count
        metrics.assembly_total = int(
            (dep.assembled[measured] - dep.arrival[measured]).sum()
        )
        metrics.input_queue_total = int(
            (dep.tx[measured] - dep.assembled[measured]).sum()
        )
        metrics.transit_total = int(
            (dep.departure[measured] - dep.tx[measured]).sum()
        )

    return SimulationResult(
        switch_name=switch_name,
        n=n,
        load=load_label,
        slots=num_slots,
        warmup=warmup,
        metrics=metrics,
        injected=injected,
        departed=int(len(dep.voq)),
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def run_single_fast(
    switch_name: str,
    matrix,
    num_slots: int,
    seed: int = 0,
    load_label: float = float("nan"),
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    batch_traffic: Optional[BatchTrafficGenerator] = None,
    switch_params: Optional[Dict] = None,
) -> SimulationResult:
    """Vectorized counterpart of :func:`repro.sim.experiment.run_single`.

    Same seed discipline (traffic and placement seeds derived identically),
    same measurement conventions (warm-up by arrival slot, ordering checked
    on every departure), same result schema — different internals: the
    whole run is drawn as one arrival batch and replayed by the switch's
    registered kernel (:mod:`repro.sim.kernels`, resolved through
    :mod:`repro.models`).

    ``batch_traffic`` substitutes a pre-built packet source (the scenario
    subsystem passes its nonstationary batch generator here); ``matrix``
    then only provisions the switch (e.g. Sprinklers' placement).
    ``switch_params`` must be parameters the model's kernel declares in
    ``kernel_params`` (this entry point raises rather than falling back).
    """
    model = models.get(switch_name)
    if model.kernel is None:
        known = ", ".join(models.available(engine="vectorized"))
        raise ValueError(
            f"switch {switch_name!r} has no vectorized data path "
            f"(supported: {known}); use the object engine"
        )
    switch_params = switch_params or {}
    model.validate_params(switch_params)
    unsupported = set(switch_params) - set(model.kernel_params)
    if unsupported:
        raise ValueError(
            f"switch {switch_name!r}: parameters {sorted(unsupported)} are "
            f"not modeled by the vectorized kernel (kernel honors: "
            f"{sorted(model.kernel_params) or 'none'}); use the object "
            f"engine"
        )
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    matrix = validate_matrix(matrix)
    n = matrix.shape[0]
    if batch_traffic is None:
        traffic_rng = np.random.default_rng(derive_seed(seed, "traffic"))
        batch_traffic = BatchTrafficGenerator(matrix, traffic_rng)
    if batch_traffic.n != n:
        raise ValueError("batch traffic size does not match matrix")
    batch = batch_traffic.draw(num_slots)

    dep, extras = model.kernel(batch, matrix, seed, **switch_params)
    return _result_from_departures(
        model.reported_name,
        n,
        dep,
        injected=len(batch),
        num_slots=num_slots,
        warmup_fraction=warmup_fraction,
        load_label=load_label,
        keep_samples=keep_samples,
        extras=extras,
    )
