"""Slotted-time simulation driver.

Wires a traffic generator to a switch, steps them slot by slot, applies the
standard warm-up discipline (delays are measured only for packets that
*arrived* after the warm-up window, so start-up transients do not bias the
averages), and optionally drains the switch at the end so late packets are
still checked for ordering.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.metrics import SimulationMetrics, SimulationResult
from ..traffic.generator import TrafficGenerator

__all__ = ["SimulationEngine", "simulate"]


class SimulationEngine:
    """Runs one switch against one traffic generator.

    Parameters
    ----------
    switch:
        Any object with the ``step(slot, arrivals) -> departures`` protocol
        (all switches in :mod:`repro.switching` and
        :mod:`repro.core.sprinklers_switch`).
    traffic:
        The packet source.
    warmup_fraction:
        Fraction of the run treated as warm-up (delay samples from packets
        arriving in this window are discarded).
    drain:
        After the arrival stream ends, keep stepping (up to ``drain_slots``)
        so in-flight packets can depart and be checked/measured.
    keep_samples:
        Retain every delay for percentile computation (off for very long
        runs to save memory).
    """

    def __init__(
        self,
        switch,
        traffic: TrafficGenerator,
        warmup_fraction: float = 0.1,
        drain: bool = True,
        drain_slots: Optional[int] = None,
        keep_samples: bool = True,
    ) -> None:
        if switch.n != traffic.n:
            raise ValueError(
                f"switch size {switch.n} != traffic size {traffic.n}"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.switch = switch
        self.traffic = traffic
        self.warmup_fraction = warmup_fraction
        self.drain = drain
        self.drain_slots = drain_slots
        self.keep_samples = keep_samples

    def run(self, num_slots: int, load_label: float = float("nan")) -> SimulationResult:
        """Simulate ``num_slots`` slots of arrivals; return the summary."""
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        warmup = int(num_slots * self.warmup_fraction)
        metrics = SimulationMetrics(keep_samples=self.keep_samples)
        switch = self.switch

        for slot, packets in self.traffic.slots(num_slots):
            for packet in switch.step(slot, packets):
                metrics.observe_departure(
                    packet, measure=packet.arrival_slot >= warmup
                )
        if self.drain:
            limit = self.drain_slots
            if limit is None:
                limit = max(50 * switch.n, num_slots)
            for packet in switch.drain(limit):
                metrics.observe_departure(
                    packet, measure=packet.arrival_slot >= warmup
                )

        extras: Dict[str, float] = {}
        if getattr(switch, "dropped", 0):
            extras["dropped"] = float(switch.dropped)
            extras["loss_rate"] = switch.dropped / max(1, switch.injected)
        if hasattr(switch, "max_resequencer_occupancy"):
            extras["max_resequencer"] = float(switch.max_resequencer_occupancy())
        if hasattr(switch, "padding_overhead"):
            extras["padding_overhead"] = float(switch.padding_overhead())
        if hasattr(switch, "max_input_backlog"):
            extras["max_input_backlog"] = float(switch.max_input_backlog())
        if hasattr(switch, "resizes"):
            extras["resizes"] = float(switch.resizes)

        return SimulationResult(
            switch_name=switch.name,
            n=switch.n,
            load=load_label,
            slots=num_slots,
            warmup=warmup,
            metrics=metrics,
            injected=switch.injected,
            departed=switch.departed,
            extras=extras,
        )


def simulate(
    switch,
    traffic: TrafficGenerator,
    num_slots: int,
    load_label: float = float("nan"),
    **engine_kwargs,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SimulationEngine`."""
    engine = SimulationEngine(switch, traffic, **engine_kwargs)
    return engine.run(num_slots, load_label=load_label)
