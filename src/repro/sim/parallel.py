"""Multiprocess experiment sweeps.

The §6 grid (patterns x loads x switches) is embarrassingly parallel; this
module fans :func:`repro.sim.experiment.run_single` out over a process
pool.  Configurations are fully described by picklable primitives (switch
name, matrix or scenario dict, seed, store path), so workers rebuild
everything locally — no shared state, bit-identical to the sequential
runner given the same seeds.  When a store directory is set, workers
share the cache through the filesystem (content addressing makes
concurrent writes idempotent), so repeated parallel sweeps recompute
nothing.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, NamedTuple, Optional, Sequence, Union

import numpy as np

from .. import telemetry
from ..models import PAPER_SWITCHES
from ..scenarios.registry import resolve_scenario
from ..store import ExperimentStore, store_dir
from .experiment import TRAFFIC_PATTERNS, run_single
from .metrics import SimulationResult

__all__ = ["SweepJob", "run_jobs", "parallel_delay_sweep"]


class SweepJob(NamedTuple):
    """One (switch, workload) cell of a sweep.

    ``engine`` selects the simulation engine per job ("object" or
    "vectorized").  The workload is either an explicit ``matrix`` or a
    ``scenario`` (spec dict / registry name) with ``n``; ``load_label``
    doubles as the scenario's target load.  ``store`` is the experiment
    store's directory path (not the object — jobs stay fully described by
    picklable primitives).  ``switch_params`` passes schema-checked
    constructor parameters (e.g. PF's ``threshold``) through to
    :func:`~repro.sim.experiment.run_single` — as a plain dict, so jobs
    stay picklable.
    """

    switch_name: str
    matrix: Optional[np.ndarray]
    num_slots: int
    seed: int
    load_label: float
    engine: str = "object"
    scenario: Optional[object] = None
    n: Optional[int] = None
    store: Optional[str] = None
    switch_params: Optional[dict] = None


def _run_job(job: SweepJob) -> SimulationResult:
    scenario_args = {}
    if job.scenario is not None:
        scenario_args = {
            "scenario": job.scenario,
            "n": job.n,
            "load": job.load_label,
        }
    return run_single(
        job.switch_name,
        job.matrix,
        job.num_slots,
        seed=job.seed,
        load_label=job.load_label,
        keep_samples=False,
        engine=job.engine,
        store=job.store,
        switch_params=job.switch_params,
        **scenario_args,
    )


def _run_job_timed(job: SweepJob):
    """Pool worker entry when the parent collects telemetry: the job's
    result plus its busy wall seconds (measured in the worker — the only
    place the compute time is visible)."""
    t0 = time.perf_counter()
    result = _run_job(job)
    return result, time.perf_counter() - t0


def run_jobs(
    jobs: Sequence[SweepJob], max_workers: Optional[int] = None
) -> List[SimulationResult]:
    """Execute jobs on a process pool; results in job order.

    ``max_workers=1`` (or a single job) runs inline, which keeps tests
    fast and debugging sane.

    With telemetry enabled in the parent, the pool path also records
    per-job busy time (``parallel.job_s``) and the pool's utilization —
    summed worker busy time over ``elapsed x workers``
    (``parallel.utilization``); an idle-heavy gauge means the sweep is
    dominated by stragglers or pool startup, not simulation.
    """
    if max_workers == 1 or len(jobs) <= 1:
        if not telemetry.enabled():
            return [_run_job(job) for job in jobs]
        results: List[SimulationResult] = []
        for job in jobs:
            with telemetry.trace(
                "sweep.job", switch=job.switch_name, load=job.load_label
            ):
                results.append(_run_job(job))
        return results
    if not telemetry.enabled():
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(_run_job, jobs))
    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    with telemetry.trace("sweep.pool", jobs=len(jobs), workers=workers):
        t0 = time.perf_counter()
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            timed = list(pool.map(_run_job_timed, jobs))
        elapsed = time.perf_counter() - t0
    busy = 0.0
    for _, wall_s in timed:
        busy += wall_s
        telemetry.observe("parallel.job_s", wall_s)
    if elapsed > 0:
        telemetry.set_gauge(
            "parallel.utilization", min(1.0, busy / (elapsed * workers))
        )
    return [result for result, _ in timed]


def parallel_delay_sweep(
    pattern: str,
    n: int = 32,
    loads: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    num_slots: int = 50_000,
    switches: Sequence[str] = PAPER_SWITCHES,
    seed: int = 0,
    max_workers: Optional[int] = None,
    engine: str = "object",
    store: Union[None, str, ExperimentStore] = None,
) -> List[SimulationResult]:
    """Parallel version of :func:`repro.sim.experiment.delay_vs_load_sweep`.

    Produces the same results as the sequential sweep for the same seeds
    (verified in tests), in whatever wall-clock the pool allows.  Combine
    ``engine="vectorized"`` with the pool for the fastest paper-scale
    sweeps: vectorization removes the per-packet constant, the pool the
    per-configuration serialization.  ``pattern`` also accepts scenario
    designators (registry name or spec file), like the sequential sweep.
    """
    cache_dir = store_dir(store)
    if isinstance(pattern, str) and pattern in TRAFFIC_PATTERNS:
        make_matrix = TRAFFIC_PATTERNS[pattern]
        jobs = [
            SweepJob(
                name, make_matrix(n, load), num_slots, seed, load, engine,
                store=cache_dir,
            )
            for load in loads
            for name in switches
        ]
    else:
        spec = resolve_scenario(pattern)  # raises with the known names
        jobs = [
            SweepJob(
                name, None, num_slots, seed, load, engine,
                scenario=spec.to_dict(), n=n, store=cache_dir,
            )
            for load in loads
            for name in switches
        ]
    return run_jobs(jobs, max_workers=max_workers)
