"""Multiprocess experiment sweeps.

The §6 grid (patterns x loads x switches) is embarrassingly parallel; this
module fans :func:`repro.sim.experiment.run_single` out over a process
pool.  Configurations are fully described by picklable primitives (switch
name, matrix or scenario dict, seed, store path), so workers rebuild
everything locally — no shared state, bit-identical to the sequential
runner given the same seeds.  When a store directory is set, workers
share the cache through the filesystem (content addressing makes
concurrent writes idempotent), so repeated parallel sweeps recompute
nothing.

Failure semantics: one bad cell never kills the pool.  Every job runs
under a per-job exception capture; a failure becomes a
:class:`FailedJob` record (the job's identity plus the worker-side
traceback) while every other job still completes.  ``on_error="raise"``
(the default) then raises a :class:`SweepError` carrying the records;
``on_error="record"`` returns the records in the result list in job
order, which is how the simulation service surfaces per-shard failures
without abandoning a sweep.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import List, NamedTuple, Optional, Sequence, Union

import numpy as np

from .. import telemetry
from ..models import PAPER_SWITCHES
from ..scenarios.registry import resolve_scenario
from ..store import ExperimentStore, store_dir
from .experiment import TRAFFIC_PATTERNS, run_single
from .metrics import SimulationResult

__all__ = [
    "FailedJob",
    "SweepError",
    "SweepJob",
    "run_jobs",
    "parallel_delay_sweep",
]


class SweepJob(NamedTuple):
    """One (switch, workload) cell of a sweep.

    ``engine`` selects the simulation engine per job ("object" or
    "vectorized").  The workload is either an explicit ``matrix`` or a
    ``scenario`` (spec dict / registry name) with ``n``; ``load_label``
    doubles as the scenario's target load.  ``store`` is the experiment
    store's directory path (not the object — jobs stay fully described by
    picklable primitives).  ``switch_params`` passes schema-checked
    constructor parameters (e.g. PF's ``threshold``) through to
    :func:`~repro.sim.experiment.run_single` — as a plain dict, so jobs
    stay picklable.
    """

    switch_name: str
    matrix: Optional[np.ndarray]
    num_slots: int
    seed: int
    load_label: float
    engine: str = "object"
    scenario: Optional[object] = None
    n: Optional[int] = None
    store: Optional[str] = None
    switch_params: Optional[dict] = None


class FailedJob(NamedTuple):
    """One sweep cell that raised: its identity plus the worker traceback.

    Appears in :func:`run_jobs` results under ``on_error="record"`` (in
    the failed job's position, preserving job order) and rides inside
    :class:`SweepError` under ``on_error="raise"``.
    """

    job: SweepJob
    error: str
    traceback: str

    def describe(self) -> str:
        """One-line identity for logs and error messages."""
        return (
            f"{self.job.switch_name} @ load {self.job.load_label} "
            f"seed {self.job.seed}: {self.error}"
        )


class SweepError(RuntimeError):
    """Raised when sweep jobs failed (after every job ran to completion).

    ``failures`` holds the :class:`FailedJob` records; the message names
    each failed cell and carries the first traceback in full — the one
    debugging artifact a dead CI sweep needs.
    """

    def __init__(self, failures: Sequence[FailedJob], total: int) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} of {total} sweep jobs failed:"]
        lines.extend(f"  {f.describe()}" for f in self.failures)
        lines.append("first failure traceback:")
        lines.append(self.failures[0].traceback.rstrip())
        super().__init__("\n".join(lines))


def _run_job(job: SweepJob) -> SimulationResult:
    scenario_args = {}
    if job.scenario is not None:
        scenario_args = {
            "scenario": job.scenario,
            "n": job.n,
            "load": job.load_label,
        }
    return run_single(
        job.switch_name,
        job.matrix,
        job.num_slots,
        seed=job.seed,
        load_label=job.load_label,
        keep_samples=False,
        engine=job.engine,
        store=job.store,
        switch_params=job.switch_params,
        **scenario_args,
    )


def _run_job_safe(job: SweepJob):
    """Pool worker entry: ``(result, failure, wall_s)`` where exactly one
    of result/failure is set.  The exception is flattened to strings in
    the worker — tracebacks do not pickle, and the parent needs the
    worker-side stack anyway."""
    t0 = time.perf_counter()
    try:
        result = _run_job(job)
    except Exception as exc:
        failure = {
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
        return None, failure, time.perf_counter() - t0
    return result, None, time.perf_counter() - t0


def run_jobs(
    jobs: Sequence[SweepJob],
    max_workers: Optional[int] = None,
    on_error: str = "raise",
) -> List[Union[SimulationResult, FailedJob]]:
    """Execute jobs on a process pool; results in job order.

    ``max_workers=1`` (or a single job) runs inline, which keeps tests
    fast and debugging sane.

    A job that raises is captured as a :class:`FailedJob` (identity +
    worker traceback) instead of killing the pool; the remaining jobs
    always run to completion.  ``on_error="raise"`` (default) raises
    :class:`SweepError` afterwards; ``on_error="record"`` returns the
    failure records in place, so callers — the simulation service's
    shard executor, resilient sweep campaigns — can keep the good cells.

    With telemetry enabled in the parent, the pool path also records
    per-job busy time (``parallel.job_s``) and the pool's utilization —
    summed worker busy time over ``elapsed x workers``
    (``parallel.utilization``); an idle-heavy gauge means the sweep is
    dominated by stragglers or pool startup, not simulation.  Failures
    count into ``parallel.job_failures``.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(
            f"on_error must be 'raise' or 'record', got {on_error!r}"
        )
    if max_workers == 1 or len(jobs) <= 1:
        outcomes = []
        for job in jobs:
            with telemetry.trace(
                "sweep.job", switch=job.switch_name, load=job.load_label
            ):
                outcomes.append(_run_job_safe(job))
    else:
        workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        with telemetry.trace("sweep.pool", jobs=len(jobs), workers=workers):
            t0 = time.perf_counter()
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                outcomes = list(pool.map(_run_job_safe, jobs))
            elapsed = time.perf_counter() - t0
        if telemetry.enabled():
            busy = 0.0
            for _, _, wall_s in outcomes:
                busy += wall_s
                telemetry.observe("parallel.job_s", wall_s)
            if elapsed > 0:
                telemetry.set_gauge(
                    "parallel.utilization",
                    min(1.0, busy / (elapsed * workers)),
                )
    results: List[Union[SimulationResult, FailedJob]] = []
    failures: List[FailedJob] = []
    for job, (result, failure, _) in zip(jobs, outcomes):
        if failure is None:
            results.append(result)
            continue
        failed = FailedJob(
            job=job, error=failure["error"], traceback=failure["traceback"]
        )
        telemetry.count("parallel.job_failures")
        failures.append(failed)
        results.append(failed)
    if failures and on_error == "raise":
        raise SweepError(failures, total=len(jobs))
    return results


def parallel_delay_sweep(
    pattern: str,
    n: int = 32,
    loads: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    num_slots: int = 50_000,
    switches: Sequence[str] = PAPER_SWITCHES,
    seed: int = 0,
    max_workers: Optional[int] = None,
    engine: str = "object",
    store: Union[None, str, ExperimentStore] = None,
    on_error: str = "raise",
) -> List[Union[SimulationResult, FailedJob]]:
    """Parallel version of :func:`repro.sim.experiment.delay_vs_load_sweep`.

    Produces the same results as the sequential sweep for the same seeds
    (verified in tests), in whatever wall-clock the pool allows.  Combine
    ``engine="vectorized"`` with the pool for the fastest paper-scale
    sweeps: vectorization removes the per-packet constant, the pool the
    per-configuration serialization.  ``pattern`` also accepts scenario
    designators (registry name or spec file), like the sequential sweep.
    ``on_error`` follows :func:`run_jobs`: ``"record"`` returns
    :class:`FailedJob` records for bad cells instead of raising.
    """
    cache_dir = store_dir(store)
    if isinstance(pattern, str) and pattern in TRAFFIC_PATTERNS:
        make_matrix = TRAFFIC_PATTERNS[pattern]
        jobs = [
            SweepJob(
                name, make_matrix(n, load), num_slots, seed, load, engine,
                store=cache_dir,
            )
            for load in loads
            for name in switches
        ]
    else:
        spec = resolve_scenario(pattern)  # raises with the known names
        jobs = [
            SweepJob(
                name, None, num_slots, seed, load, engine,
                scenario=spec.to_dict(), n=n, store=cache_dir,
            )
            for load in loads
            for name in switches
        ]
    return run_jobs(jobs, max_workers=max_workers, on_error=on_error)
