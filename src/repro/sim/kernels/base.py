"""Shared replay primitives for the vectorized switch kernels.

Every switch the batch engine models is, for a fixed arrival stream, a
deterministic pipeline of FIFO queues served by the periodic fabrics.
The recursions here are the whole toolkit the per-switch kernels build
on:

* ``service_k = max(ready_k, service_{k-1} + 1)`` — a FIFO served once
  per slot — is a running maximum, one ``np.maximum.accumulate`` per
  queue (:func:`fifo_service`, :func:`segmented_fifo_service`);
* the same recursion over poll *indices* covers queues polled every
  ``n``-th slot (:func:`periodic_fifo_service`);
* banks of periodic priority queues (the Largest-Stripe-First grids of
  Sprinklers, the per-output FIFOs at the intermediate stage) peel
  exactly largest level first (:func:`replay_polled_queues`);
* stripe/frame completion instants are slices of the per-VOQ arrival
  sequence (:func:`unit_completion`).

:class:`Departures` is the structure-of-arrays record every kernel
returns; :mod:`repro.sim.fast_engine` turns it into a
:class:`~repro.sim.metrics.SimulationResult` identical to the object
engine's.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ... import telemetry
from ...traffic.batch import ArrivalBatch, stable_voq_argsort
from .compiled import compiled_active
from .compiled.polled_pass import serve_polled

__all__ = [
    "Departures",
    "PolledQueueBank",
    "UnitAssembler",
    "WindowStacker",
    "composite_argsort",
    "concat_ranges",
    "fifo_service",
    "mid_residues",
    "periodic_fifo_service",
    "replay_polled_queues",
    "row_residues",
    "segmented_fifo_service",
    "stable_id_argsort",
    "unit_completion",
]


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated index ranges ``[starts[i], starts[i] + counts[i])``.

    The vectorized form of ``np.concatenate([np.arange(s, s + c) ...])``
    — one ``repeat`` plus one ``arange`` regardless of how many ranges
    there are.  Used wherever a kernel expands variable-length per-event
    runs in one shot (PF's fake-cell positions fill ``[size, n)`` of
    each padded frame).
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return np.repeat(starts - (ends - counts), counts) + np.arange(
        total, dtype=np.int64
    )


def stable_id_argsort(ids: np.ndarray, id_space: int) -> np.ndarray:
    """Stable argsort of small nonnegative ids (radix path when they fit).

    The generalization of :func:`repro.traffic.batch.stable_voq_argsort`
    to an arbitrary id space — the streamed kernels group by seed-extended
    VOQ ids (``seed * n^2 + voq``), which outgrow ``n^2``.
    """
    if id_space <= np.iinfo(np.uint16).max:
        return np.argsort(ids.astype(np.uint16), kind="stable")
    return np.argsort(ids, kind="stable")


def composite_argsort(major: np.ndarray, minor: np.ndarray) -> np.ndarray:
    """Argsort by ``(major, minor)``.

    When both keys are nonnegative and their packed product fits an int64,
    a single-key quicksort is several times faster than a two-key
    ``np.lexsort`` (one sort pass instead of two stable passes); callers
    must pass unique pairs (stability is not guaranteed).
    """
    if len(major) == 0:
        return np.empty(0, dtype=np.intp)
    hi = int(major.max())
    span = int(minor.max()) + 1
    if hi < (np.iinfo(np.int64).max // max(span, 1)) - 1:
        return np.argsort(major * span + minor)
    return np.lexsort((minor, major))


def fifo_service(ready: np.ndarray) -> np.ndarray:
    """Service slots of a FIFO served once per slot, arrivals servable
    the slot they become ready.

    ``service_k = max(ready_k, service_{k-1} + 1)`` as a running max:
    with ``u_k = service_k - k`` this is ``u_k = max(ready_k - k,
    u_{k-1})``.
    """
    if len(ready) == 0:
        return ready
    k = np.arange(len(ready), dtype=np.int64)
    return np.maximum.accumulate(ready - k) + k


def periodic_fifo_service(
    ready: np.ndarray, residue: int, n: int
) -> np.ndarray:
    """Service slots of a FIFO polled at slots ``t ≡ residue (mod n)``.

    One packet per poll; a packet is servable at the poll of its ready
    slot.  Same running-max structure over poll *indices*.
    """
    if len(ready) == 0:
        return ready
    first = np.maximum((ready - residue + n - 1) // n, 0)
    k = np.arange(len(ready), dtype=np.int64)
    polls = np.maximum.accumulate(first - k) + k
    return residue + polls * n


def replay_polled_queues(
    queues: np.ndarray,
    levels: np.ndarray,
    ready: np.ndarray,
    order: np.ndarray,
    residues: np.ndarray,
    n: int,
    presorted: bool = False,
) -> np.ndarray:
    """Exact service slots for a bank of periodic priority queues.

    Each queue ``q`` is polled at slots ``t ≡ residues[q] (mod n)`` and, at
    every poll, serves the head of its *largest* nonempty level (FIFO
    within a level, ordered by ``order``) — the Largest Stripe First rule
    of paper §3.4 at an input-port row or an intermediate-port output
    class.

    The priority discipline peels exactly: packets of a level are never
    delayed by smaller levels, so levels replay largest-first, each as a
    FIFO over the poll slots not consumed by larger levels.

    Parameters are parallel per-event arrays (queue id, size level, ready
    slot, FIFO tie-break) plus the per-queue poll residue; returns the
    per-event service slot, aligned with the inputs.
    """
    num_events = len(queues)
    service = np.empty(num_events, dtype=np.int64)
    if num_events == 0:
        return service
    first_poll = np.maximum((ready - residues[queues] + n - 1) // n, 0)
    # Group by queue, then level ascending, then FIFO order.  Queue and
    # level pack into one sort key (level needs 4 bits up to n = 2^15).
    packed = (queues << 4) | levels
    if presorted:
        # Caller promises events already sit in (level, order) order
        # within each queue, so a *stable* sort by queue alone suffices —
        # radix-cheap while the packed ids fit 16 bits.
        grouping = stable_id_argsort(packed, int(packed.max()) + 1)
    else:
        grouping = composite_argsort(packed, order)
    packed_sorted = packed[grouping]
    poll_sorted = first_poll[grouping]
    queue_sorted = packed_sorted >> 4

    if compiled_active():
        # Compiled backend: the same grouping feeds the scalar mirror of
        # both disciplines below (single-level running max, multi-level
        # largest-first peel); bit-identical by the parity grid.
        polls = np.empty(num_events, dtype=np.int64)
        serve_polled(packed_sorted, poll_sorted, polls)
        service[grouping] = residues[queue_sorted] + polls * n
        return service

    # Fast path: one priority level everywhere (every non-Sprinklers
    # switch) — each queue is a plain FIFO over its own polls, and all
    # queues replay at once as a *segmented* running max: per-segment
    # offsets spaced wider than the value range make one global
    # ``np.maximum.accumulate`` segment-local.  No Python loop per queue.
    if num_events and int(levels.min()) == int(levels.max()):
        is_start = np.r_[True, queue_sorted[1:] != queue_sorted[:-1]]
        segment = np.cumsum(is_start) - 1
        seg_first = np.flatnonzero(is_start)
        k = np.arange(num_events, dtype=np.int64) - seg_first[segment]
        value = poll_sorted - k + num_events  # shifted nonnegative
        stride = np.int64(int(poll_sorted.max()) + num_events + 1)
        if int(segment[-1]) < (np.iinfo(np.int64).max - stride) // stride:
            run = (
                np.maximum.accumulate(value + segment * stride)
                - segment * stride
                - num_events
            )
            service[grouping] = residues[queue_sorted] + (run + k) * n
            return service

    queue_bounds = np.flatnonzero(
        np.r_[True, queue_sorted[1:] != queue_sorted[:-1], True]
    )
    for b in range(len(queue_bounds) - 1):
        lo, hi = queue_bounds[b], queue_bounds[b + 1]
        qid = int(queue_sorted[lo])
        residue = int(residues[qid])
        lvl_slice = packed_sorted[lo:hi]
        level_bounds = np.flatnonzero(
            np.r_[True, lvl_slice[1:] != lvl_slice[:-1], True]
        )
        if len(level_bounds) == 2:
            # Single level in this queue: a plain FIFO over its polls.
            wanted = poll_sorted[lo:hi]
            k = np.arange(hi - lo, dtype=np.int64)
            taken = np.maximum.accumulate(wanted - k) + k
            service[grouping[lo:hi]] = residue + taken * n
            continue
        # Poll indices the queue could ever use: the first poll of any
        # event plus one poll per event is a safe upper bound.
        cap = int(poll_sorted[lo:hi].max()) + (hi - lo) + 1
        avail = np.arange(cap, dtype=np.int64)
        # Largest level first; smaller levels see the leftover polls.
        for s in range(len(level_bounds) - 2, -1, -1):
            a, z = lo + level_bounds[s], lo + level_bounds[s + 1]
            wanted = poll_sorted[a:z]
            pos = np.searchsorted(avail, wanted, side="left")
            k = np.arange(z - a, dtype=np.int64)
            taken = np.maximum.accumulate(pos - k) + k
            service[grouping[a:z]] = residue + avail[taken] * n
            if s > 0:
                avail = np.delete(avail, taken)
    return service


def segmented_fifo_service(
    segment: np.ndarray, ready: np.ndarray
) -> np.ndarray:
    """Per-segment :func:`fifo_service` (events pre-sorted within segment).

    ``segment`` must be nondecreasing; each segment is an independent FIFO
    served once per slot.
    """
    service = np.empty(len(ready), dtype=np.int64)
    bounds = np.flatnonzero(np.r_[True, segment[1:] != segment[:-1], True])
    for b in range(len(bounds) - 1):
        lo, hi = bounds[b], bounds[b + 1]
        service[lo:hi] = fifo_service(ready[lo:hi])
    return service


def row_residues(n: int) -> np.ndarray:
    """Poll residues of the stage-1 queues: fabric 1 connects input ``i``
    to intermediate ``m`` at slots ``t ≡ m - i (mod n)``; queue id is
    ``i * n + m``."""
    ports = np.arange(n, dtype=np.int64)
    return ((ports[None, :] - ports[:, None]) % n).ravel()


def mid_residues(n: int) -> np.ndarray:
    """Poll residues of the stage-2 queues: fabric 2 connects intermediate
    ``m`` to output ``j`` at slots ``t ≡ m - j (mod n)``; queue id is
    ``m * n + j``."""
    ports = np.arange(n, dtype=np.int64)
    return ((ports[:, None] - ports[None, :]) % n).ravel()


def unit_completion(
    batch: ArrivalBatch, unit_size: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Completion data of each packet's aggregation unit (stripe/frame).

    ``unit_size[voq]`` packets of a VOQ form one unit, cut in arrival
    order; the unit completes when its last packet arrives.  Returns
    ``(complete, c_slot, c_order, pos)`` per packet: whether the packet's
    unit ever completes inside the batch, the completion slot, a global
    completion tie-break (the completing packet's generation index —
    generation order *is* per-input acceptance order), and the packet's
    position within its unit.
    """
    voq = batch.voqs
    num_packets = len(voq)
    if num_packets == 0:
        empty = np.empty(0, dtype=np.int64)
        return np.empty(0, dtype=bool), empty, empty, empty
    n = batch.n
    # Group packets by VOQ (stable, so in-group order is arrival order);
    # every unit is then a contiguous run of `unit_size` grouped packets
    # and its completing packet is an in-group index away — no searching.
    order = stable_voq_argsort(voq, n)
    sorted_voq = voq[order]
    counts = np.bincount(voq, minlength=n * n)
    group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    rank = np.arange(num_packets, dtype=np.int64) - group_starts[sorted_voq]
    size = unit_size[sorted_voq]
    pos_g = rank % size
    completer_rank = rank - pos_g + size - 1  # in-group index of unit's last packet
    complete_g = completer_rank < counts[sorted_voq]
    completer_at = group_starts[sorted_voq] + np.minimum(
        completer_rank, counts[sorted_voq] - 1
    )
    c_slot_g = np.where(complete_g, batch.slots[order][completer_at], 0)
    c_order_g = np.where(complete_g, order[completer_at], 0)
    # Scatter back to generation order.
    complete = np.empty(num_packets, dtype=bool)
    c_slot = np.empty(num_packets, dtype=np.int64)
    c_order = np.empty(num_packets, dtype=np.int64)
    pos = np.empty(num_packets, dtype=np.int64)
    complete[order] = complete_g
    c_slot[order] = c_slot_g
    c_order[order] = c_order_g
    pos[order] = pos_g
    return complete, c_slot, c_order, pos


class Departures:
    """SoA record of every departed packet of a run.

    ``wire`` is the within-slot observation tie-break of the object
    engine: packets departing in the same slot are handed to the metrics
    in intermediate-port order (output order for the output-queued
    switch, resequencer release order for FOFF).  ``(departure, wire)``
    pairs must be unique per packet — kernels whose natural tie-break is
    not unique (FOFF releases several packets of a flow at one slot)
    store a precomputed observation rank instead.  Retained delay samples
    are stored in that ``(departure, wire)`` order so order-sensitive
    downstream statistics (MSER truncation, batch means) match the
    oracle exactly.
    """

    __slots__ = (
        "voq",
        "seq",
        "arrival",
        "departure",
        "wire",
        "assembled",
        "tx",
        "wire_is_rank",
    )

    def __init__(
        self,
        voq: np.ndarray,
        seq: np.ndarray,
        arrival: np.ndarray,
        departure: np.ndarray,
        wire: np.ndarray,
        assembled: Optional[np.ndarray] = None,
        tx: Optional[np.ndarray] = None,
        wire_is_rank: bool = False,
    ) -> None:
        self.voq = voq
        self.seq = seq
        self.arrival = arrival
        self.departure = departure
        self.wire = wire
        self.assembled = assembled
        self.tx = tx
        #: True when ``wire`` is already a global observation rank (every
        #: packet unique, consistent with (departure, wire) order) rather
        #: than a within-slot port tie-break.  Kernels that release
        #: several packets of one flow in a single slot (FOFF) must set
        #: this; for everyone else per-VOQ departure slots are unique and
        #: the cheaper departure-keyed ordering suffices.
        self.wire_is_rank = wire_is_rank

    def __len__(self) -> int:
        return len(self.voq)


# ---------------------------------------------------------------------------
# Streaming (windowed-replay) primitives
# ---------------------------------------------------------------------------
#
# The streamed kernels replay a run window-by-window instead of all at
# once.  The carried state between windows is small and exact:
#
# * a :class:`PolledQueueBank` holds the *unserved* events of a bank of
#   periodic (priority) queues.  At each window boundary ``B`` it
#   finalizes every event whose service slot is ``< B`` — provably equal
#   to the monolithic replay, because all future events are ready at or
#   after ``B`` and the replay recursions are monotone (adding events
#   never makes anyone depart earlier), so services below ``B`` can no
#   longer change and polls below ``B`` left free can never be used.
#   Carried events have their ready slots clamped to ``B`` (their true
#   service is provably >= ``B``), which makes the carried re-replay a
#   fresh peel over polls >= ``B`` only.
# * a :class:`UnitAssembler` holds each VOQ's trailing partial
#   aggregation unit (stripe/frame) until later arrivals complete it.
# * a :class:`WindowStacker` assigns run-global generation indices (the
#   FIFO tie-breaks of the monolithic kernels) across windows, and
#   stacks multiple seeds' windows into disjoint id blocks for the
#   multi-seed replay (block ``s`` uses VOQ ids ``s * n^2 + voq``; queues
#   of different blocks never interact, so one replay pass serves every
#   seed at once).


class PolledQueueBank:
    """Streamed :func:`replay_polled_queues` over a bank of queues.

    ``feed`` unions the carried unserved events with the new ones,
    replays the whole bank, finalizes events with service slot strictly
    below ``boundary`` (``None`` finalizes everything) and carries the
    rest.  ``payload`` is a tuple of caller arrays sliced alongside.
    """

    def __init__(
        self, residues: np.ndarray, n: int, presorted: bool = False
    ) -> None:
        self._residues = np.asarray(residues, dtype=np.int64)
        self._n = n
        #: Caller promise: events of one queue always arrive in FIFO
        #: (``order``-key) order, across feeds — enables the radix
        #: grouping fast path in :func:`replay_polled_queues`.
        self._presorted = presorted
        self._pending: Optional[Tuple[np.ndarray, ...]] = None
        self._payload: Tuple[np.ndarray, ...] = ()

    def feed(
        self,
        queues: np.ndarray,
        levels: np.ndarray,
        ready: np.ndarray,
        order: np.ndarray,
        payload: Tuple[np.ndarray, ...],
        boundary: Optional[int],
    ) -> Tuple[np.ndarray, np.ndarray, Tuple[np.ndarray, ...]]:
        """Returns ``(service, order, payload)`` of the finalized events."""
        if self._pending is not None:
            p_queues, p_levels, p_ready, p_order = self._pending
            queues = np.concatenate([p_queues, queues])
            levels = np.concatenate([p_levels, levels])
            ready = np.concatenate([p_ready, ready])
            order = np.concatenate([p_order, order])
            payload = tuple(
                np.concatenate([old, new])
                for old, new in zip(self._payload, payload)
            )
        if len(queues) == 0:
            self._pending = None
            self._payload = ()
            return np.empty(0, dtype=np.int64), order, payload
        service = replay_polled_queues(
            queues, levels, ready, order, self._residues, self._n,
            presorted=self._presorted,
        )
        if boundary is None:
            self._pending = None
            self._payload = ()
            return service, order, payload
        done = service < boundary
        keep = ~done
        self._pending = (
            queues[keep],
            levels[keep],
            np.maximum(ready[keep], boundary),
            order[keep],
        )
        self._payload = tuple(a[keep] for a in payload)
        if telemetry.enabled():
            # Events carried past this window's boundary: the streamed
            # replay's working-set signal (a growing carry means windows
            # are cut faster than the queues drain).
            telemetry.observe(
                "kernel.polled_queue.carry", len(self._pending[0])
            )
        return service[done], order[done], tuple(a[done] for a in payload)


class UnitAssembler:
    """Carried partial aggregation units (stripes / full frames) per VOQ.

    ``unit_size[voq]`` consecutive arrivals of a VOQ form one unit; a
    unit completes when its last packet arrives, which may be many
    windows after its first.  ``feed`` buffers the trailing partial unit
    of every VOQ and emits the packets of units completed so far,
    mirroring :func:`unit_completion` run on the whole stream.
    """

    def __init__(self, unit_size: np.ndarray) -> None:
        self._size = np.asarray(unit_size, dtype=np.int64)
        self._num = len(self._size)
        #: Rank of the next packet to arrive per VOQ.
        self._rank_next = np.zeros(self._num, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        self._buf = (empty, empty, empty, empty)

    def feed(
        self,
        voqs: np.ndarray,
        slots: np.ndarray,
        seqs: np.ndarray,
        gidx: np.ndarray,
    ) -> Tuple[np.ndarray, ...]:
        """Add packets (generation order); return completed-unit packets.

        Returns ``(voq, slot, seq, gidx, pos, c_slot, c_order)`` — the
        per-packet unit data of :func:`unit_completion`, restricted to
        units whose completing packet has now arrived.
        """
        b_voq, b_slot, b_seq, b_g = self._buf
        voq = np.concatenate([b_voq, voqs])
        slot = np.concatenate([b_slot, slots])
        seq = np.concatenate([b_seq, seqs])
        g = np.concatenate([b_g, gidx])
        if len(voq) == 0:
            empty = np.empty(0, dtype=np.int64)
            return (empty,) * 7
        if len(voqs):
            self._rank_next += np.bincount(voqs, minlength=self._num)
        # One stable sort groups the union by VOQ; buffered packets come
        # first (lower concat index and lower ranks), new packets follow
        # in generation order, so group ranks are consecutive from the
        # group's first buffered rank — no per-packet rank storage.
        order = stable_id_argsort(voq, self._num)
        voq_s = voq[order]
        slot_s = slot[order]
        seq_s = seq[order]
        g_s = g[order]
        is_start = np.r_[True, voq_s[1:] != voq_s[:-1]]
        seg = np.cumsum(is_start) - 1
        seg_first = np.flatnonzero(is_start)
        seg_bounds = np.flatnonzero(np.r_[is_start, True])
        seg_last = seg_bounds[1:] - 1
        # rank = first buffered rank of the VOQ + index within the group;
        # the first buffered rank is rank_next minus everything now held
        # (note rank_next was already advanced by the new arrivals).
        within = np.arange(len(voq_s), dtype=np.int64) - seg_first[seg]
        group_count = (seg_last - seg_first + 1)[seg]
        base = self._rank_next[voq_s] - group_count
        rank_s = base + within
        size = self._size[voq_s]
        pos = rank_s % size
        completer_rank = rank_s - pos + size - 1
        complete = completer_rank <= rank_s[seg_last][seg]
        completer_at = np.minimum(
            seg_first[seg] + (completer_rank - base), len(voq_s) - 1
        )
        keep = ~complete
        self._buf = (voq_s[keep], slot_s[keep], seq_s[keep], g_s[keep])
        return (
            voq_s[complete],
            slot_s[complete],
            seq_s[complete],
            g_s[complete],
            pos[complete],
            slot_s[completer_at][complete],
            g_s[completer_at][complete],
        )


class WindowStacker:
    """Stack per-seed arrival windows into one disjoint-id event block.

    Tracks per-block generation counters so every packet gets the same
    run-global generation index it would have in a monolithic batch (the
    FIFO tie-break the kernels key on), and checks the windows advance in
    lock-step.
    """

    def __init__(self, num_blocks: int) -> None:
        self._gnext = np.zeros(num_blocks, dtype=np.int64)
        self.num_blocks = num_blocks

    def stack(self, windows) -> Tuple[np.ndarray, ...]:
        """Returns ``(block, slots, inputs, outputs, seqs, gidx, boundary)``.

        ``block[k]`` is the window (seed) index of event ``k``; ``gidx``
        is the per-block generation index; ``boundary`` is the common end
        slot of the windows (events of later windows are all at or past
        it).
        """
        if len(windows) != self.num_blocks:
            raise ValueError(
                f"expected {self.num_blocks} windows, got {len(windows)}"
            )
        spans = {(w.start_slot, w.num_slots) for w in windows}
        if len(spans) != 1:
            raise ValueError("seed windows must cover the same slot range")
        parts_b, parts_g = [], []
        for b, w in enumerate(windows):
            count = len(w)
            parts_b.append(np.full(count, b, dtype=np.int64))
            parts_g.append(
                self._gnext[b] + np.arange(count, dtype=np.int64)
            )
            self._gnext[b] += count
        return (
            np.concatenate(parts_b),
            np.concatenate([w.slots for w in windows]),
            np.concatenate([w.inputs for w in windows]),
            np.concatenate([w.outputs for w in windows]),
            np.concatenate([w.seqs for w in windows]),
            np.concatenate(parts_g),
            windows[0].end_slot,
        )
