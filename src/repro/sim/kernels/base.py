"""Shared replay primitives for the vectorized switch kernels.

Every switch the batch engine models is, for a fixed arrival stream, a
deterministic pipeline of FIFO queues served by the periodic fabrics.
The recursions here are the whole toolkit the per-switch kernels build
on:

* ``service_k = max(ready_k, service_{k-1} + 1)`` — a FIFO served once
  per slot — is a running maximum, one ``np.maximum.accumulate`` per
  queue (:func:`fifo_service`, :func:`segmented_fifo_service`);
* the same recursion over poll *indices* covers queues polled every
  ``n``-th slot (:func:`periodic_fifo_service`);
* banks of periodic priority queues (the Largest-Stripe-First grids of
  Sprinklers, the per-output FIFOs at the intermediate stage) peel
  exactly largest level first (:func:`replay_polled_queues`);
* stripe/frame completion instants are slices of the per-VOQ arrival
  sequence (:func:`unit_completion`).

:class:`Departures` is the structure-of-arrays record every kernel
returns; :mod:`repro.sim.fast_engine` turns it into a
:class:`~repro.sim.metrics.SimulationResult` identical to the object
engine's.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch, stable_voq_argsort

__all__ = [
    "Departures",
    "composite_argsort",
    "fifo_service",
    "mid_residues",
    "periodic_fifo_service",
    "replay_polled_queues",
    "row_residues",
    "segmented_fifo_service",
    "unit_completion",
]


def composite_argsort(major: np.ndarray, minor: np.ndarray) -> np.ndarray:
    """Argsort by ``(major, minor)``.

    When both keys are nonnegative and their packed product fits an int64,
    a single-key quicksort is several times faster than a two-key
    ``np.lexsort`` (one sort pass instead of two stable passes); callers
    must pass unique pairs (stability is not guaranteed).
    """
    if len(major) == 0:
        return np.empty(0, dtype=np.intp)
    hi = int(major.max())
    span = int(minor.max()) + 1
    if hi < (np.iinfo(np.int64).max // max(span, 1)) - 1:
        return np.argsort(major * span + minor)
    return np.lexsort((minor, major))


def fifo_service(ready: np.ndarray) -> np.ndarray:
    """Service slots of a FIFO served once per slot, arrivals servable
    the slot they become ready.

    ``service_k = max(ready_k, service_{k-1} + 1)`` as a running max:
    with ``u_k = service_k - k`` this is ``u_k = max(ready_k - k,
    u_{k-1})``.
    """
    if len(ready) == 0:
        return ready
    k = np.arange(len(ready), dtype=np.int64)
    return np.maximum.accumulate(ready - k) + k


def periodic_fifo_service(
    ready: np.ndarray, residue: int, n: int
) -> np.ndarray:
    """Service slots of a FIFO polled at slots ``t ≡ residue (mod n)``.

    One packet per poll; a packet is servable at the poll of its ready
    slot.  Same running-max structure over poll *indices*.
    """
    if len(ready) == 0:
        return ready
    first = np.maximum((ready - residue + n - 1) // n, 0)
    k = np.arange(len(ready), dtype=np.int64)
    polls = np.maximum.accumulate(first - k) + k
    return residue + polls * n


def replay_polled_queues(
    queues: np.ndarray,
    levels: np.ndarray,
    ready: np.ndarray,
    order: np.ndarray,
    residues: np.ndarray,
    n: int,
) -> np.ndarray:
    """Exact service slots for a bank of periodic priority queues.

    Each queue ``q`` is polled at slots ``t ≡ residues[q] (mod n)`` and, at
    every poll, serves the head of its *largest* nonempty level (FIFO
    within a level, ordered by ``order``) — the Largest Stripe First rule
    of paper §3.4 at an input-port row or an intermediate-port output
    class.

    The priority discipline peels exactly: packets of a level are never
    delayed by smaller levels, so levels replay largest-first, each as a
    FIFO over the poll slots not consumed by larger levels.

    Parameters are parallel per-event arrays (queue id, size level, ready
    slot, FIFO tie-break) plus the per-queue poll residue; returns the
    per-event service slot, aligned with the inputs.
    """
    num_events = len(queues)
    service = np.empty(num_events, dtype=np.int64)
    if num_events == 0:
        return service
    first_poll = np.maximum((ready - residues[queues] + n - 1) // n, 0)
    # Group by queue, then level ascending, then FIFO order.  Queue and
    # level pack into one sort key (level needs 4 bits up to n = 2^15).
    packed = (queues << 4) | levels
    grouping = composite_argsort(packed, order)
    packed_sorted = packed[grouping]
    poll_sorted = first_poll[grouping]
    queue_sorted = packed_sorted >> 4

    # Fast path: one priority level everywhere (every non-Sprinklers
    # switch) — each queue is a plain FIFO over its own polls, and all
    # queues replay at once as a *segmented* running max: per-segment
    # offsets spaced wider than the value range make one global
    # ``np.maximum.accumulate`` segment-local.  No Python loop per queue.
    if num_events and int(levels.min()) == int(levels.max()):
        is_start = np.r_[True, queue_sorted[1:] != queue_sorted[:-1]]
        segment = np.cumsum(is_start) - 1
        seg_first = np.flatnonzero(is_start)
        k = np.arange(num_events, dtype=np.int64) - seg_first[segment]
        value = poll_sorted - k + num_events  # shifted nonnegative
        stride = np.int64(int(poll_sorted.max()) + num_events + 1)
        if int(segment[-1]) < (np.iinfo(np.int64).max - stride) // stride:
            run = (
                np.maximum.accumulate(value + segment * stride)
                - segment * stride
                - num_events
            )
            service[grouping] = residues[queue_sorted] + (run + k) * n
            return service

    queue_bounds = np.flatnonzero(
        np.r_[True, queue_sorted[1:] != queue_sorted[:-1], True]
    )
    for b in range(len(queue_bounds) - 1):
        lo, hi = queue_bounds[b], queue_bounds[b + 1]
        qid = int(queue_sorted[lo])
        residue = int(residues[qid])
        lvl_slice = packed_sorted[lo:hi]
        level_bounds = np.flatnonzero(
            np.r_[True, lvl_slice[1:] != lvl_slice[:-1], True]
        )
        if len(level_bounds) == 2:
            # Single level in this queue: a plain FIFO over its polls.
            wanted = poll_sorted[lo:hi]
            k = np.arange(hi - lo, dtype=np.int64)
            taken = np.maximum.accumulate(wanted - k) + k
            service[grouping[lo:hi]] = residue + taken * n
            continue
        # Poll indices the queue could ever use: the first poll of any
        # event plus one poll per event is a safe upper bound.
        cap = int(poll_sorted[lo:hi].max()) + (hi - lo) + 1
        avail = np.arange(cap, dtype=np.int64)
        # Largest level first; smaller levels see the leftover polls.
        for s in range(len(level_bounds) - 2, -1, -1):
            a, z = lo + level_bounds[s], lo + level_bounds[s + 1]
            wanted = poll_sorted[a:z]
            pos = np.searchsorted(avail, wanted, side="left")
            k = np.arange(z - a, dtype=np.int64)
            taken = np.maximum.accumulate(pos - k) + k
            service[grouping[a:z]] = residue + avail[taken] * n
            if s > 0:
                avail = np.delete(avail, taken)
    return service


def segmented_fifo_service(
    segment: np.ndarray, ready: np.ndarray
) -> np.ndarray:
    """Per-segment :func:`fifo_service` (events pre-sorted within segment).

    ``segment`` must be nondecreasing; each segment is an independent FIFO
    served once per slot.
    """
    service = np.empty(len(ready), dtype=np.int64)
    bounds = np.flatnonzero(np.r_[True, segment[1:] != segment[:-1], True])
    for b in range(len(bounds) - 1):
        lo, hi = bounds[b], bounds[b + 1]
        service[lo:hi] = fifo_service(ready[lo:hi])
    return service


def row_residues(n: int) -> np.ndarray:
    """Poll residues of the stage-1 queues: fabric 1 connects input ``i``
    to intermediate ``m`` at slots ``t ≡ m - i (mod n)``; queue id is
    ``i * n + m``."""
    ports = np.arange(n, dtype=np.int64)
    return ((ports[None, :] - ports[:, None]) % n).ravel()


def mid_residues(n: int) -> np.ndarray:
    """Poll residues of the stage-2 queues: fabric 2 connects intermediate
    ``m`` to output ``j`` at slots ``t ≡ m - j (mod n)``; queue id is
    ``m * n + j``."""
    ports = np.arange(n, dtype=np.int64)
    return ((ports[:, None] - ports[None, :]) % n).ravel()


def unit_completion(
    batch: ArrivalBatch, unit_size: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Completion data of each packet's aggregation unit (stripe/frame).

    ``unit_size[voq]`` packets of a VOQ form one unit, cut in arrival
    order; the unit completes when its last packet arrives.  Returns
    ``(complete, c_slot, c_order, pos)`` per packet: whether the packet's
    unit ever completes inside the batch, the completion slot, a global
    completion tie-break (the completing packet's generation index —
    generation order *is* per-input acceptance order), and the packet's
    position within its unit.
    """
    voq = batch.voqs
    num_packets = len(voq)
    if num_packets == 0:
        empty = np.empty(0, dtype=np.int64)
        return np.empty(0, dtype=bool), empty, empty, empty
    n = batch.n
    # Group packets by VOQ (stable, so in-group order is arrival order);
    # every unit is then a contiguous run of `unit_size` grouped packets
    # and its completing packet is an in-group index away — no searching.
    order = stable_voq_argsort(voq, n)
    sorted_voq = voq[order]
    counts = np.bincount(voq, minlength=n * n)
    group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    rank = np.arange(num_packets, dtype=np.int64) - group_starts[sorted_voq]
    size = unit_size[sorted_voq]
    pos_g = rank % size
    completer_rank = rank - pos_g + size - 1  # in-group index of unit's last packet
    complete_g = completer_rank < counts[sorted_voq]
    completer_at = group_starts[sorted_voq] + np.minimum(
        completer_rank, counts[sorted_voq] - 1
    )
    c_slot_g = np.where(complete_g, batch.slots[order][completer_at], 0)
    c_order_g = np.where(complete_g, order[completer_at], 0)
    # Scatter back to generation order.
    complete = np.empty(num_packets, dtype=bool)
    c_slot = np.empty(num_packets, dtype=np.int64)
    c_order = np.empty(num_packets, dtype=np.int64)
    pos = np.empty(num_packets, dtype=np.int64)
    complete[order] = complete_g
    c_slot[order] = c_slot_g
    c_order[order] = c_order_g
    pos[order] = pos_g
    return complete, c_slot, c_order, pos


class Departures:
    """SoA record of every departed packet of a run.

    ``wire`` is the within-slot observation tie-break of the object
    engine: packets departing in the same slot are handed to the metrics
    in intermediate-port order (output order for the output-queued
    switch, resequencer release order for FOFF).  ``(departure, wire)``
    pairs must be unique per packet — kernels whose natural tie-break is
    not unique (FOFF releases several packets of a flow at one slot)
    store a precomputed observation rank instead.  Retained delay samples
    are stored in that ``(departure, wire)`` order so order-sensitive
    downstream statistics (MSER truncation, batch means) match the
    oracle exactly.
    """

    __slots__ = (
        "voq",
        "seq",
        "arrival",
        "departure",
        "wire",
        "assembled",
        "tx",
        "wire_is_rank",
    )

    def __init__(
        self,
        voq: np.ndarray,
        seq: np.ndarray,
        arrival: np.ndarray,
        departure: np.ndarray,
        wire: np.ndarray,
        assembled: Optional[np.ndarray] = None,
        tx: Optional[np.ndarray] = None,
        wire_is_rank: bool = False,
    ) -> None:
        self.voq = voq
        self.seq = seq
        self.arrival = arrival
        self.departure = departure
        self.wire = wire
        self.assembled = assembled
        self.tx = tx
        #: True when ``wire`` is already a global observation rank (every
        #: packet unique, consistent with (departure, wire) order) rather
        #: than a within-slot port tie-break.  Kernels that release
        #: several packets of one flow in a single slot (FOFF) must set
        #: this; for everyone else per-VOQ departure slots are unique and
        #: the cheaper departure-keyed ordering suffices.
        self.wire_is_rank = wire_is_rank

    def __len__(self) -> int:
        return len(self.voq)
