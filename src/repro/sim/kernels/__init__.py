"""Per-switch vectorized kernels for the batch simulation engine.

Each module in this package implements one switch's deterministic data
path as array recursions over an :class:`~repro.traffic.batch.
ArrivalBatch` — the *kernel* of the vectorized engine.  A kernel is a
callable

    kernel(batch, matrix, seed) -> (Departures, extras | None)

that replays the switch's dynamics exactly (same seeds, same per-packet
departure slots as the object engine in :mod:`repro.switching`) and is
attached to a :class:`~repro.models.SwitchModel` in the switch registry;
:func:`repro.sim.fast_engine.run_single_fast` dispatches through that
registry, so adding a vectorized switch means writing one module here and
registering it — no engine changes.

Shared replay primitives (running-maximum FIFO service, periodic polling,
largest-level-first peeling, stripe/frame completion) live in
:mod:`repro.sim.kernels.base`; the frame-at-a-time input discipline
shared by PF and FOFF lives in :mod:`repro.sim.kernels.frames`.
"""

from .base import (
    Departures,
    composite_argsort,
    fifo_service,
    mid_residues,
    periodic_fifo_service,
    replay_polled_queues,
    row_residues,
    segmented_fifo_service,
    unit_completion,
)

__all__ = [
    "Departures",
    "composite_argsort",
    "fifo_service",
    "mid_residues",
    "periodic_fifo_service",
    "replay_polled_queues",
    "row_residues",
    "segmented_fifo_service",
    "unit_completion",
]
