"""Vectorized kernel: the Sprinklers switch (paper §3, oracle sizing)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...core.interval_assignment import PlacementMode, StripeIntervalAssignment
from ...sim.rng import derive_seed
from ...traffic.batch import ArrivalBatch
from .base import (
    Departures,
    PolledQueueBank,
    UnitAssembler,
    WindowStacker,
    mid_residues,
    replay_polled_queues,
    row_residues,
    unit_completion,
)

__all__ = ["departures", "stream"]


def _placement_tables(matrix: np.ndarray, seed: int):
    """Per-VOQ stripe (size, start, level) tables of one seed's placement.

    Drawn from the same derived seed as the object-engine builder
    (``derive_seed(seed, "sprinklers-placement")``), so the placement —
    and therefore every departure slot — is identical.
    """
    n = matrix.shape[0]
    placement_rng = np.random.default_rng(
        derive_seed(seed, "sprinklers-placement")
    )
    assignment = StripeIntervalAssignment(
        matrix, rng=placement_rng, mode=PlacementMode.OLS
    )
    sizes = np.empty(n * n, dtype=np.int64)
    starts = np.empty(n * n, dtype=np.int64)
    for i in range(n):
        for j in range(n):
            interval = assignment.interval(i, j)
            sizes[i * n + j] = interval.size
            starts[i * n + j] = interval.start
    return sizes, starts, np.log2(sizes).astype(np.int64)


def departures(
    batch: ArrivalBatch, matrix: np.ndarray, seed: int
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay the Sprinklers data path.

    The stripe-interval assignment is drawn from the same derived seed as
    the object-engine builder (``derive_seed(seed, "sprinklers-placement")``),
    so the placement — and therefore every departure slot — is identical.
    """
    n = batch.n
    sizes, starts, levels_tab = _placement_tables(matrix, seed)

    complete, c_slot, c_order, pos = unit_completion(batch, sizes)
    voq = batch.voqs[complete]
    inp = batch.inputs[complete]
    out = batch.outputs[complete]
    size = sizes[voq]
    start = starts[voq]
    level = levels_tab[voq]
    row = start + pos[complete]
    c = c_slot[complete]
    g = c_order[complete]

    # Safe insertion (§3.4.2): a completed stripe enters the input's LSF
    # grid at the first slot, from completion on, at which the fabric-1
    # pointer is not strictly inside its interval; while the pointer is at
    # start+1 .. start+size-1 the stripe waits until the pointer reaches
    # the interval's end.
    pointer = (inp + c) % n
    inside = (pointer > start) & (pointer < start + size)
    t_ins = c + np.where(inside, start + size - pointer, 0)

    # Stage 1: input i's LSF row `row` is polled by fabric 1 at slots
    # t ≡ row - i (mod n), serving the largest stripe class first; within
    # a (row, class) FIFO the order is stripe completion order (stripes of
    # one class covering a row share one dyadic interval, hence one safe-
    # insertion schedule, so insertion order equals completion order).
    tx = replay_polled_queues(
        inp * n + row, level, t_ins, g, row_residues(n), n
    )

    # Stage 2: the packet crosses to intermediate port `row` at tx and is
    # delivered next slot; intermediate m serves output j at slots
    # t ≡ m - j (mod n), again largest class first, FIFO by delivery
    # order (at most one delivery per intermediate per slot).
    departure = replay_polled_queues(
        row * n + out, level, tx + 1, tx, mid_residues(n), n
    )
    dep = Departures(
        voq=voq,
        seq=batch.seqs[complete],
        arrival=batch.slots[complete],
        departure=departure,
        wire=row,
        assembled=c,
        tx=tx,
    )
    return dep, {"resizes": 0.0}  # oracle sizing never resizes


class _SprinklersStream:
    """Windowed (and seed-stacked) replay of the Sprinklers data path.

    Seed block ``b`` owns VOQ ids ``b * n^2 + voq`` and queue ids in the
    matching blocks, so one :class:`PolledQueueBank` replay pass serves
    every seed at once while keeping the seeds' dynamics exactly
    independent — per-seed results are bit-identical to the monolithic
    :func:`departures`.
    """

    def __init__(self, matrix: np.ndarray, seeds, total_slots: int) -> None:
        n = matrix.shape[0]
        self.n = n
        self.num_blocks = len(seeds)
        tables = [_placement_tables(matrix, seed) for seed in seeds]
        self._sizes = np.concatenate([t[0] for t in tables])
        self._starts = np.concatenate([t[1] for t in tables])
        self._levels = np.concatenate([t[2] for t in tables])
        self._stacker = WindowStacker(self.num_blocks)
        self._assembler = UnitAssembler(self._sizes)
        self._stage1 = PolledQueueBank(
            np.tile(row_residues(n), self.num_blocks), n
        )
        self._stage2 = PolledQueueBank(
            np.tile(mid_residues(n), self.num_blocks), n
        )

    def _advance(self, stripes, boundary):
        """Push completed stripes through both stages up to ``boundary``."""
        n = self.n
        voq_x, slot, seq, gidx, pos, c_slot, c_order = stripes
        inp = (voq_x % (n * n)) // n
        size = self._sizes[voq_x]
        start = self._starts[voq_x]
        row = start + pos

        # Safe insertion (§3.4.2), as in the monolithic kernel.
        pointer = (inp + c_slot) % n
        inside = (pointer > start) & (pointer < start + size)
        t_ins = c_slot + np.where(inside, start + size - pointer, 0)

        tx, _, payload = self._stage1.feed(
            (voq_x // (n * n)) * n * n + inp * n + row,
            self._levels[voq_x],
            t_ins,
            c_order,
            (voq_x, seq, slot, row, c_slot),
            boundary,
        )
        voq_x, seq, slot, row, c_slot = payload
        departure, tx, payload = self._stage2.feed(
            (voq_x // (n * n)) * n * n + row * n + (voq_x % n),
            self._levels[voq_x],
            tx + 1,
            tx,
            (voq_x, seq, slot, row, c_slot),
            boundary,
        )
        voq_x, seq, slot, row, c_slot = payload
        return Departures(
            voq=voq_x,
            seq=seq,
            arrival=slot,
            departure=departure,
            wire=row,
            assembled=c_slot,
            tx=tx,
        )

    def _round(self, windows, final: bool, split: bool = True):
        n = self.n
        boundary = None
        if windows is not None:
            block, slots, inputs, outputs, seqs, gidx, end = (
                self._stacker.stack(windows)
            )
            if not final:
                boundary = end
            voq_x = block * n * n + inputs * n + outputs
            stripes = self._assembler.feed(voq_x, slots, seqs, gidx)
        else:
            stripes = (np.empty(0, dtype=np.int64),) * 7
        dep = self._advance(stripes, boundary)
        return _split_blocks(dep, n, self.num_blocks) if split else dep

    def feed(self, windows):
        return self._round(windows, final=False)

    def finish(self, windows=None):
        """Final round: feed ``windows`` (if any) and flush everything.

        Passing the whole run as one ``windows`` list here replays it in
        a single pass — the monolithic-cost path multi-seed replication
        uses.
        """
        deps = self._round(windows, final=True)
        # Oracle sizing never resizes.
        return deps, [{"resizes": 0.0}] * self.num_blocks

    def finish_stacked(self, windows=None):
        """Like :meth:`finish`, but returns the seed-extended stacked
        record (no per-seed split) for the stacked metrics fold."""
        dep = self._round(windows, final=True, split=False)
        return dep, [{"resizes": 0.0}] * self.num_blocks


def _split_blocks(dep: Departures, n: int, num_blocks: int):
    """Split a stacked :class:`Departures` into per-seed records.

    Seed-extended VOQ ids are reduced back to ``[0, n^2)``; every other
    field is per-seed data already.  One stable sort by seed block plus
    contiguous slices, instead of one boolean-mask pass per seed.
    """
    if num_blocks == 1:
        return [
            Departures(
                voq=dep.voq % (n * n),
                seq=dep.seq,
                arrival=dep.arrival,
                departure=dep.departure,
                wire=dep.wire,
                assembled=dep.assembled,
                tx=dep.tx,
                wire_is_rank=dep.wire_is_rank,
            )
        ]
    block = dep.voq // (n * n)
    order = np.argsort(block, kind="stable")
    voq = dep.voq[order] % (n * n)
    seq = dep.seq[order]
    arrival = dep.arrival[order]
    departure = dep.departure[order]
    wire = dep.wire[order]
    assembled = None if dep.assembled is None else dep.assembled[order]
    tx = None if dep.tx is None else dep.tx[order]
    bounds = np.concatenate((
        [0], np.cumsum(np.bincount(block, minlength=num_blocks)),
    ))
    out = []
    for b in range(num_blocks):
        lo, hi = bounds[b], bounds[b + 1]
        out.append(
            Departures(
                voq=voq[lo:hi],
                seq=seq[lo:hi],
                arrival=arrival[lo:hi],
                departure=departure[lo:hi],
                wire=wire[lo:hi],
                assembled=None if assembled is None else assembled[lo:hi],
                tx=None if tx is None else tx[lo:hi],
                wire_is_rank=dep.wire_is_rank,
            )
        )
    return out


def stream(matrix: np.ndarray, seeds, total_slots: int) -> _SprinklersStream:
    """Resumable multi-seed Sprinklers replay (see :class:`_SprinklersStream`)."""
    return _SprinklersStream(matrix, seeds, total_slots)
