"""Vectorized kernel: the Sprinklers switch (paper §3, oracle sizing)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...core.interval_assignment import PlacementMode, StripeIntervalAssignment
from ...sim.rng import derive_seed
from ...traffic.batch import ArrivalBatch
from .base import Departures, mid_residues, replay_polled_queues, row_residues, unit_completion

__all__ = ["departures"]


def departures(
    batch: ArrivalBatch, matrix: np.ndarray, seed: int
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay the Sprinklers data path.

    The stripe-interval assignment is drawn from the same derived seed as
    the object-engine builder (``derive_seed(seed, "sprinklers-placement")``),
    so the placement — and therefore every departure slot — is identical.
    """
    n = batch.n
    placement_rng = np.random.default_rng(
        derive_seed(seed, "sprinklers-placement")
    )
    assignment = StripeIntervalAssignment(
        matrix, rng=placement_rng, mode=PlacementMode.OLS
    )
    sizes = np.empty(n * n, dtype=np.int64)
    starts = np.empty(n * n, dtype=np.int64)
    for i in range(n):
        for j in range(n):
            interval = assignment.interval(i, j)
            sizes[i * n + j] = interval.size
            starts[i * n + j] = interval.start
    levels_tab = np.log2(sizes).astype(np.int64)

    complete, c_slot, c_order, pos = unit_completion(batch, sizes)
    voq = batch.voqs[complete]
    inp = batch.inputs[complete]
    out = batch.outputs[complete]
    size = sizes[voq]
    start = starts[voq]
    level = levels_tab[voq]
    row = start + pos[complete]
    c = c_slot[complete]
    g = c_order[complete]

    # Safe insertion (§3.4.2): a completed stripe enters the input's LSF
    # grid at the first slot, from completion on, at which the fabric-1
    # pointer is not strictly inside its interval; while the pointer is at
    # start+1 .. start+size-1 the stripe waits until the pointer reaches
    # the interval's end.
    pointer = (inp + c) % n
    inside = (pointer > start) & (pointer < start + size)
    t_ins = c + np.where(inside, start + size - pointer, 0)

    # Stage 1: input i's LSF row `row` is polled by fabric 1 at slots
    # t ≡ row - i (mod n), serving the largest stripe class first; within
    # a (row, class) FIFO the order is stripe completion order (stripes of
    # one class covering a row share one dyadic interval, hence one safe-
    # insertion schedule, so insertion order equals completion order).
    tx = replay_polled_queues(
        inp * n + row, level, t_ins, g, row_residues(n), n
    )

    # Stage 2: the packet crosses to intermediate port `row` at tx and is
    # delivered next slot; intermediate m serves output j at slots
    # t ≡ m - j (mod n), again largest class first, FIFO by delivery
    # order (at most one delivery per intermediate per slot).
    departure = replay_polled_queues(
        row * n + out, level, tx + 1, tx, mid_residues(n), n
    )
    dep = Departures(
        voq=voq,
        seq=batch.seqs[complete],
        arrival=batch.slots[complete],
        departure=departure,
        wire=row,
        assembled=c,
        tx=tx,
    )
    return dep, {"resizes": 0.0}  # oracle sizing never resizes
