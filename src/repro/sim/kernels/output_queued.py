"""Vectorized kernel: the ideal output-queued reference switch."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch
from .base import (
    Departures,
    PolledQueueBank,
    WindowStacker,
    segmented_fifo_service,
)

__all__ = ["departures", "stream"]


def departures(
    batch: ArrivalBatch, matrix: np.ndarray, seed: int
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay the ideal output-queued reference switch."""
    order = np.argsort(batch.outputs, kind="stable")
    service = np.empty(len(batch.slots), dtype=np.int64)
    service[order] = segmented_fifo_service(
        batch.outputs[order], batch.slots[order]
    )
    dep = Departures(
        voq=batch.voqs,
        seq=batch.seqs,
        arrival=batch.slots,
        departure=service + 1,  # cut-through floor of 1 slot
        wire=batch.outputs,  # OQ departures are observed in output order
    )
    return dep, None


class _OutputQueuedStream:
    """Windowed (and seed-stacked) replay of the OQ reference switch:
    one period-1 FIFO bank keyed by (seed block, output)."""

    def __init__(self, matrix: np.ndarray, seeds, total_slots: int) -> None:
        n = matrix.shape[0]
        self.n = n
        self.num_blocks = len(seeds)
        self._stacker = WindowStacker(self.num_blocks)
        # Arrivals reach the bank in generation order — FIFO order
        # within every output queue — so radix grouping suffices.
        self._bank = PolledQueueBank(
            np.zeros(self.num_blocks * n, dtype=np.int64), 1, presorted=True
        )

    def _advance(self, events, boundary):
        n = self.n
        block, slots, inputs, outputs, seqs, gidx = events
        voq_x = block * n * n + inputs * n + outputs
        # Departure is service + 1, so finalize services below
        # boundary - 1 to keep finalized departures strictly windowed.
        service, _, payload = self._bank.feed(
            block * n + outputs,
            np.zeros(len(slots), dtype=np.int64),
            slots,
            gidx,
            (voq_x, seqs, slots, outputs),
            None if boundary is None else boundary - 1,
        )
        voq_x, seqs, slots, outputs = payload
        return Departures(
            voq=voq_x,
            seq=seqs,
            arrival=slots,
            departure=service + 1,
            wire=outputs,
        )

    def _round(self, windows, final: bool, split: bool = True):
        from .sprinklers import _split_blocks

        boundary = None
        if windows is not None:
            block, slots, inputs, outputs, seqs, gidx, end = (
                self._stacker.stack(windows)
            )
            if not final:
                boundary = end
            events = (block, slots, inputs, outputs, seqs, gidx)
        else:
            events = (np.empty(0, dtype=np.int64),) * 6
        dep = self._advance(events, boundary)
        return (
            _split_blocks(dep, self.n, self.num_blocks) if split else dep
        )

    def feed(self, windows):
        return self._round(windows, final=False)

    def finish(self, windows=None):
        deps = self._round(windows, final=True)
        return deps, [None] * self.num_blocks

    def finish_stacked(self, windows=None):
        dep = self._round(windows, final=True, split=False)
        return dep, [None] * self.num_blocks


def stream(matrix: np.ndarray, seeds, total_slots: int) -> _OutputQueuedStream:
    """Resumable multi-seed OQ replay (see :class:`_OutputQueuedStream`)."""
    return _OutputQueuedStream(matrix, seeds, total_slots)
