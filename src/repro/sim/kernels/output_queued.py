"""Vectorized kernel: the ideal output-queued reference switch."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch
from .base import Departures, segmented_fifo_service

__all__ = ["departures"]


def departures(
    batch: ArrivalBatch, matrix: np.ndarray, seed: int
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay the ideal output-queued reference switch."""
    order = np.argsort(batch.outputs, kind="stable")
    service = np.empty(len(batch.slots), dtype=np.int64)
    service[order] = segmented_fifo_service(
        batch.outputs[order], batch.slots[order]
    )
    dep = Departures(
        voq=batch.voqs,
        seq=batch.seqs,
        arrival=batch.slots,
        departure=service + 1,  # cut-through floor of 1 slot
        wire=batch.outputs,  # OQ departures are observed in output order
    )
    return dep, None
