"""Vectorized kernel: Padded Frames (paper §2.3, Jaramillo-Milan-Srikant).

PF is UFS with a padding escape hatch: an input with no full frame pads
its longest VOQ (if it holds at least ``threshold = max(1, N // 2)``
packets, matching :class:`~repro.switching.pf.PaddedFramesSwitch`'s
default) up to a full frame with fake cells.  Padding is deterministic
given frame formation — which VOQ is padded, and by how much, is a pure
function of the cycle-boundary occupancies — so the whole data path
replays exactly:

1. frame formation per input per cycle (:mod:`.frames`);
2. every frame, padded or not, deposits cell ``k`` (real packets first,
   then fakes) on intermediate port ``k`` at ``start + k``;
3. the per-output intermediate FIFOs replay as polled queues — with the
   fake cells *included*, because they consume stage-2 service like real
   ones (that is the price of padding the paper charges PF for);
4. fakes are discarded at the output: excluded from the departure record
   but counted for the ``padding_overhead`` extra.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch
from .base import Departures, mid_residues, replay_polled_queues
from .frames import (
    build_frame_schedule,
    drain_horizon,
    frame_membership,
    pf_picker,
)

__all__ = ["departures"]


def departures(
    batch: ArrivalBatch,
    matrix: np.ndarray,
    seed: int,
    threshold: Optional[int] = None,
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay the Padded Frames switch."""
    n = batch.n
    if threshold is None:
        threshold = max(1, n // 2)
    if not 1 <= threshold <= n:
        # Same contract as PaddedFramesSwitch: threshold 0 would pad
        # empty VOQs forever, threshold > n would never pad at all.
        raise ValueError(f"threshold must be in [1, {n}], got {threshold}")
    schedule = build_frame_schedule(batch, lambda i: pf_picker(n, threshold))
    member, assembled, position = frame_membership(batch, schedule)

    tx = assembled[member] + position[member]
    mid = position[member]
    out = batch.outputs[member]

    # Fake cells fill positions size .. n-1 of their frame, heading to the
    # padded VOQ's output.
    padded = schedule.fakes > 0
    reps = schedule.fakes[padded]
    num_fakes = int(reps.sum())
    if num_fakes:
        ends = np.cumsum(reps)
        within = np.arange(num_fakes, dtype=np.int64) - np.repeat(
            ends - reps, reps
        )
        fake_pos = np.repeat(schedule.size[padded], reps) + within
        fake_tx = np.repeat(schedule.slot[padded], reps) + fake_pos
        fake_out = np.repeat(schedule.voq[padded] % n, reps)
        queues = np.concatenate([mid * n + out, fake_pos * n + fake_out])
        ready = np.concatenate([tx, fake_tx]) + 1
        fifo_order = np.concatenate([tx, fake_tx])
    else:
        queues = mid * n + out
        ready = tx + 1
        fifo_order = tx

    service = replay_polled_queues(
        queues,
        np.zeros(len(queues), dtype=np.int64),
        ready,
        fifo_order,
        mid_residues(n),
        n,
    )
    # The object engine's drain phase is finite: cells that would depart
    # after its horizon stay in flight there and are never observed.
    cut = drain_horizon(batch)
    num_real = len(tx)
    real_service = service[:num_real]
    departed = real_service <= cut
    fakes_departed = int(np.sum(service[num_real:] <= cut))
    dep = Departures(
        voq=batch.voqs[member][departed],
        seq=batch.seqs[member][departed],
        arrival=batch.slots[member][departed],
        departure=real_service[departed],
        wire=mid[departed],
        assembled=assembled[member][departed],
        tx=tx[departed],
    )
    sent = int(departed.sum()) + fakes_departed
    extras = {"padding_overhead": fakes_departed / sent if sent else 0.0}
    return dep, extras
