"""Vectorized kernel: Padded Frames (paper §2.3, Jaramillo-Milan-Srikant).

PF is UFS with a padding escape hatch: an input with no full frame pads
its longest VOQ (if it holds at least ``threshold = max(1, N // 2)``
packets, matching :class:`~repro.switching.pf.PaddedFramesSwitch`'s
default) up to a full frame with fake cells.  Padding is deterministic
given frame formation — which VOQ is padded, and by how much, is a pure
function of the cycle-boundary occupancies — so the whole data path
replays exactly:

1. frame formation per input per cycle (:mod:`.frames`);
2. every frame, padded or not, deposits cell ``k`` (real packets first,
   then fakes) on intermediate port ``k`` at ``start + k``;
3. the per-output intermediate FIFOs replay as polled queues — with the
   fake cells *included*, because they consume stage-2 service like real
   ones (that is the price of padding the paper charges PF for);
4. fakes are discarded at the output: excluded from the departure record
   but counted for the ``padding_overhead`` extra.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch
from .base import (
    Departures,
    PolledQueueBank,
    WindowStacker,
    concat_ranges,
    mid_residues,
    replay_polled_queues,
)
from .frames import (
    FrameFormationStream,
    FramedPacketBuffer,
    build_frame_schedule,
    drain_cut,
    drain_horizon,
    frame_membership,
    pf_rule,
)

__all__ = ["departures", "stream"]


def _check_threshold(n: int, threshold: Optional[int]) -> int:
    if threshold is None:
        threshold = max(1, n // 2)
    if not 1 <= threshold <= n:
        # Same contract as PaddedFramesSwitch: threshold 0 would pad
        # empty VOQs forever, threshold > n would never pad at all.
        raise ValueError(f"threshold must be in [1, {n}], got {threshold}")
    return threshold


def departures(
    batch: ArrivalBatch,
    matrix: np.ndarray,
    seed: int,
    threshold: Optional[int] = None,
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay the Padded Frames switch."""
    n = batch.n
    threshold = _check_threshold(n, threshold)
    schedule = build_frame_schedule(batch, pf_rule(threshold))
    member, assembled, position = frame_membership(batch, schedule)

    tx = assembled[member] + position[member]
    mid = position[member]
    out = batch.outputs[member]

    # Fake cells fill positions size .. n-1 of their frame, heading to the
    # padded VOQ's output.
    padded = schedule.fakes > 0
    reps = schedule.fakes[padded]
    num_fakes = int(reps.sum())
    if num_fakes:
        fake_pos = concat_ranges(schedule.size[padded], reps)
        fake_tx = np.repeat(schedule.slot[padded], reps) + fake_pos
        fake_out = np.repeat(schedule.voq[padded] % n, reps)
        queues = np.concatenate([mid * n + out, fake_pos * n + fake_out])
        ready = np.concatenate([tx, fake_tx]) + 1
        fifo_order = np.concatenate([tx, fake_tx])
    else:
        queues = mid * n + out
        ready = tx + 1
        fifo_order = tx

    service = replay_polled_queues(
        queues,
        np.zeros(len(queues), dtype=np.int64),
        ready,
        fifo_order,
        mid_residues(n),
        n,
    )
    # The object engine's drain phase is finite: cells that would depart
    # after its horizon stay in flight there and are never observed.
    cut = drain_horizon(batch)
    num_real = len(tx)
    real_service = service[:num_real]
    departed = real_service <= cut
    fakes_departed = int(np.sum(service[num_real:] <= cut))
    dep = Departures(
        voq=batch.voqs[member][departed],
        seq=batch.seqs[member][departed],
        arrival=batch.slots[member][departed],
        departure=real_service[departed],
        wire=mid[departed],
        assembled=assembled[member][departed],
        tx=tx[departed],
    )
    sent = int(departed.sum()) + fakes_departed
    extras = {"padding_overhead": fakes_departed / sent if sent else 0.0}
    return dep, extras


def _fake_cells(schedule, n: int):
    """Stage-2 events of a frame schedule's fake cells.

    Fake cells fill positions size .. n-1 of their frame, heading to the
    padded VOQ's output.  Returns ``(queue_local, tx, block)`` — the
    (mid, output) queue id within the frame's seed block, the crossing
    slot, and the block.
    """
    padded = schedule.fakes > 0
    reps = schedule.fakes[padded]
    num_fakes = int(reps.sum())
    if num_fakes == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    fake_pos = concat_ranges(schedule.size[padded], reps)
    fake_tx = np.repeat(schedule.slot[padded], reps) + fake_pos
    voq_x = np.repeat(schedule.voq[padded], reps)
    fake_out = voq_x % n
    block = voq_x // (n * n)
    return fake_pos * n + fake_out, fake_tx, block


class _PfStream:
    """Windowed (and seed-stacked) replay of the Padded Frames switch.

    Frame formation streams cycle-by-cycle (:class:`FrameFormationStream`),
    framed packets and fake cells enter the stage-2 polled queues as they
    form, and the object engine's finite drain horizon is applied to the
    flushed services at the end — exactly the monolithic pipeline, window
    at a time.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        seeds,
        total_slots: int,
        threshold: Optional[int] = None,
    ) -> None:
        n = matrix.shape[0]
        self.n = n
        self.num_blocks = len(seeds)
        threshold = _check_threshold(n, threshold)
        self._stacker = WindowStacker(self.num_blocks)
        self._formation = FrameFormationStream(
            n, self.num_blocks, pf_rule(threshold)
        )
        self._packets = FramedPacketBuffer(self.num_blocks * n * n)
        self._stage2 = PolledQueueBank(
            np.tile(mid_residues(n), self.num_blocks), n
        )
        # The drain horizon needs the run length: services past it are
        # unobserved in the object engine.
        self._cut = drain_cut(total_slots, n)
        self._fakes_departed = np.zeros(self.num_blocks, dtype=np.int64)
        self._real_departed = np.zeros(self.num_blocks, dtype=np.int64)

    def _advance(self, schedule, new_packets, boundary):
        n = self.n
        voq_x, slot, seq, gidx, rank, assembled, position = new_packets
        tx = assembled + position
        block = voq_x // (n * n)
        out = voq_x % n
        fake_queue, fake_tx, fake_block = _fake_cells(schedule, n)
        is_fake = np.concatenate([
            np.zeros(len(tx), dtype=np.int64),
            np.ones(len(fake_tx), dtype=np.int64),
        ])
        zero = np.zeros(len(fake_tx), dtype=np.int64)
        queues = np.concatenate([
            block * n * n + position * n + out,
            fake_block * n * n + fake_queue,
        ])
        ready = np.concatenate([tx, fake_tx]) + 1
        fifo_order = np.concatenate([tx, fake_tx])
        payload = (
            np.concatenate([voq_x, fake_block * n * n]),
            np.concatenate([seq, zero]),
            np.concatenate([slot, zero]),
            np.concatenate([position, zero]),
            np.concatenate([assembled, zero]),
            is_fake,
        )
        service, tx, payload = self._stage2.feed(
            queues,
            np.zeros(len(queues), dtype=np.int64),
            ready,
            fifo_order,
            payload,
            boundary,
        )
        voq_x, seq, slot, position, assembled, is_fake = payload
        # The object engine's drain phase is finite: cells that would
        # depart after its horizon stay in flight there, unobserved.
        # Window-finalized services are always below the horizon (the
        # boundary never exceeds the run length); the final flush is
        # where the cut actually bites.
        seen = service <= self._cut
        block = voq_x // (n * n)
        fake = is_fake == 1
        np.add.at(self._fakes_departed, block[fake & seen], 1)
        real = ~fake & seen
        np.add.at(self._real_departed, block[real], 1)
        return Departures(
            voq=voq_x[real],
            seq=seq[real],
            arrival=slot[real],
            departure=service[real],
            wire=position[real],
            assembled=assembled[real],
            tx=tx[real],
        )

    def _round(self, windows, final: bool, split: bool = True):
        from .sprinklers import _split_blocks

        n = self.n
        boundary = None
        if windows is not None:
            block, slots, inputs, outputs, seqs, gidx, end = (
                self._stacker.stack(windows)
            )
            if not final:
                boundary = end
            voq_x = block * n * n + inputs * n + outputs
        else:
            block = slots = inputs = outputs = seqs = gidx = voq_x = (
                np.empty(0, dtype=np.int64)
            )
        schedule = self._formation.feed(
            block, slots, inputs, outputs, boundary
        )
        framed = self._packets.feed(voq_x, slots, seqs, gidx, schedule)
        dep = self._advance(schedule, framed, boundary)
        return _split_blocks(dep, n, self.num_blocks) if split else dep

    def feed(self, windows):
        return self._round(windows, final=False)

    def _extras(self):
        extras = []
        for b in range(self.num_blocks):
            sent = int(self._real_departed[b] + self._fakes_departed[b])
            extras.append({
                "padding_overhead": (
                    int(self._fakes_departed[b]) / sent if sent else 0.0
                )
            })
        return extras

    def finish(self, windows=None):
        deps = self._round(windows, final=True)
        return deps, self._extras()

    def finish_stacked(self, windows=None):
        """Like :meth:`finish`, but returns the seed-extended stacked
        record (no per-seed split) for the stacked metrics fold."""
        dep = self._round(windows, final=True, split=False)
        return dep, self._extras()


def stream(
    matrix: np.ndarray,
    seeds,
    total_slots: int,
    threshold: Optional[int] = None,
) -> _PfStream:
    """Resumable multi-seed PF replay (see :class:`_PfStream`)."""
    return _PfStream(matrix, seeds, total_slots, threshold=threshold)
