"""Compiled per-VOQ running-max pass (scalar mirror of
:func:`repro.sim.fast_engine._fold_reordering`'s segmented fold).

Events arrive grouped by VOQ in observation order; the pass carries one
running maximum per segment, seeded from (and written back to) the
cross-window ``prev_max`` state, and records for every event the maximum
sequence number observed *before* it — the quantity the reordering
metrics (late packets, displacement) derive from.
"""

from __future__ import annotations

import numpy as np

from ._jit import njit

__all__ = ["fold_running_max"]


@njit(cache=True)
def fold_running_max(
    voq: np.ndarray,
    seq: np.ndarray,
    prev_max: np.ndarray,
    prev: np.ndarray,
) -> None:
    """Fill ``prev[i]`` with the running max before event ``i``; update
    ``prev_max`` per VOQ.  ``voq`` must be grouped (equal ids adjacent),
    events in observation order within each group."""
    cur = np.int64(-1)
    cur_voq = np.int64(-1)
    for i in range(len(voq)):
        v = voq[i]
        if v != cur_voq:
            if cur_voq >= 0:
                prev_max[cur_voq] = cur
            cur_voq = v
            cur = prev_max[v]
        prev[i] = cur
        if seq[i] > cur:
            cur = seq[i]
    if cur_voq >= 0:
        prev_max[cur_voq] = cur
