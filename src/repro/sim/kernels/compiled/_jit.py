"""The numba shim: ``@njit`` when numba is importable, identity otherwise.

The compiled passes are written as scalar loops under :func:`njit`.  With
numba installed they compile to machine code (the ``backend="compiled"``
fast path); without it they run as plain Python — slow, but *exactly* the
same arithmetic, which is what lets the parity grid exercise the compiled
code path on machines that never installed numba.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["HAVE_NUMBA", "njit"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _numba_njit
except ImportError:  # the container default: pure-Python fallback
    _numba_njit = None

#: Whether numba is importable (the compiled passes actually compile).
HAVE_NUMBA = _numba_njit is not None


def njit(**options: Any) -> Callable[[Callable], Callable]:
    """``numba.njit(**options)`` when available, else the identity.

    Always used in factory form (``@njit(cache=True)``) so the fallback
    stays a one-liner.  The fallback exposes the undecorated function
    under ``.py_func`` like numba does, so callers can reach the plain
    Python version uniformly.
    """

    def decorate(func: Callable) -> Callable:
        if _numba_njit is not None:  # pragma: no cover - numba-only
            return _numba_njit(**options)(func)
        func.py_func = func  # type: ignore[attr-defined]
        return func

    return decorate
