"""Optional compiled kernel backend for the hot scalar-recursion passes.

Three per-element recursions dominate the vectorized replay at scale:
frame formation (:mod:`.frames_pass`), polled-queue service
(:mod:`.polled_pass`), and the per-VOQ reordering fold
(:mod:`.fold_pass`).  Each is reimplemented here as a numba ``@njit``
scalar loop that is *bit-identical* to its NumPy counterpart — same
decisions, same arithmetic, same outputs — so switching backend never
changes a result (and store cache keys deliberately ignore it).

Backend selection is process-global, mirroring how the telemetry switch
works: ``set_kernel_backend("compiled")`` flips every subsequent replay,
and :func:`kernel_backend` scopes a selection to a ``with`` block (the
form ``run_single(..., backend=...)`` and the CLI's ``--backend-kernel``
use).  Without numba installed the compiled passes run as plain Python —
the same code path, orders of magnitude slower — which keeps the parity
grid meaningful everywhere; :func:`compiled_available` reports whether
the real speedup is on the table.
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Tuple

from . import fold_pass, frames_pass, polled_pass
from ._jit import HAVE_NUMBA

__all__ = [
    "KERNEL_BACKENDS",
    "compiled_active",
    "compiled_available",
    "fold_pass",
    "frames_pass",
    "get_kernel_backend",
    "kernel_backend",
    "polled_pass",
    "resolve_compiled_passes",
    "set_kernel_backend",
]

#: The selectable kernel backends.  "numpy" is the pinned reference the
#: parity suites define correctness against; "compiled" must match it
#: bit for bit.
KERNEL_BACKENDS: Tuple[str, ...] = ("numpy", "compiled")

_backend = "numpy"


def compiled_available() -> bool:
    """Whether numba is importable (the compiled passes actually compile).

    The "compiled" backend is selectable either way — without numba the
    passes run as pure Python, exact but slow, which is how the parity
    grid exercises them on minimal installs.
    """
    return HAVE_NUMBA


def get_kernel_backend() -> str:
    """The currently selected backend name."""
    return _backend


def compiled_active() -> bool:
    """True when the compiled passes should be dispatched (the hot check
    the kernel branch points call once per pass)."""
    return _backend == "compiled"


def set_kernel_backend(name: str) -> None:
    """Select the process-global kernel backend."""
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; known: "
            + ", ".join(KERNEL_BACKENDS)
        )
    global _backend
    _backend = name


@contextmanager
def kernel_backend(name: Optional[str] = None) -> Iterator[None]:
    """Scope a backend selection to a ``with`` block.

    ``None`` is a no-op (keep whatever is active) so call sites can
    thread an optional ``backend=`` argument through unconditionally.
    """
    if name is None:
        yield
        return
    previous = _backend
    set_kernel_backend(name)
    try:
        yield
    finally:
        set_kernel_backend(previous)


def resolve_compiled_passes(
    kernel_module: str,
) -> Tuple[Callable[..., object], ...]:
    """The compiled pass entry points a kernel module's replay runs through.

    Every vectorized kernel funnels polled-queue service and the
    reordering fold; the frame-at-a-time kernels (anything importing
    :mod:`repro.sim.kernels.frames`) additionally run the formation
    stepper.  The REG005 lint rule calls this to verify that a switch
    advertising the COMPILED capability actually resolves compiled
    implementations for its passes.
    """
    module = importlib.import_module(kernel_module)
    passes: Tuple[Callable[..., object], ...] = (
        polled_pass.serve_polled,
        fold_pass.fold_running_max,
    )
    uses_frames = any(
        getattr(value, "__module__", None) == "repro.sim.kernels.frames"
        for value in vars(module).values()
    )
    if uses_frames:
        passes = passes + (frames_pass.form_lanes,)
    return passes
