"""Compiled polled-queue service pass (scalar mirror of
:func:`repro.sim.kernels.base.replay_polled_queues`).

Operates on the same ``(queue << 4) | level``-packed, queue-grouped event
arrays the NumPy replay sorts, and reproduces its two disciplines
exactly:

* single level in a queue — a FIFO over the queue's polls, i.e. the
  running recursion ``poll_index = max(first_poll, previous + 1)``;
* multiple levels — the largest-first peel: each level binary-searches
  the *remaining* poll indices (an explicit ascending ``avail`` array)
  for its first-poll lower bound, takes the running-max slot, and the
  taken indices are compacted away before the next-smaller level runs.

The pass emits per-event *poll indices*; the caller maps them to service
slots (``residue + index * n``), keeping this module free of any switch
knowledge.
"""

from __future__ import annotations

import numpy as np

from ._jit import njit

__all__ = ["serve_polled"]


@njit(cache=True)
def _serve_multilevel(
    packed: np.ndarray,
    poll: np.ndarray,
    out: np.ndarray,
    lo: int,
    hi: int,
) -> None:
    # Poll indices the queue could ever use: the first poll of any event
    # plus one poll per event is a safe upper bound (same cap as the
    # NumPy peel).
    cap = 0
    for e in range(lo, hi):
        if poll[e] > cap:
            cap = poll[e]
    cap = cap + (hi - lo) + 1
    avail = np.arange(cap)
    m = cap
    # Level segment bounds inside [lo, hi): levels pack into 4 bits, so
    # at most 16 segments.
    bounds = np.empty(18, dtype=np.int64)
    bounds[0] = lo
    nseg = 0
    for e in range(lo + 1, hi):
        if packed[e] != packed[e - 1]:
            nseg += 1
            bounds[nseg] = e
    nseg += 1
    bounds[nseg] = hi
    taken = np.empty(hi - lo, dtype=np.int64)
    # Largest level first; smaller levels see the leftover polls.
    for s in range(nseg - 1, -1, -1):
        a = bounds[s]
        z = bounds[s + 1]
        prev_idx = -1
        cnt = 0
        for e in range(a, z):
            want = poll[e]
            # Lower bound of `want` in avail[:m].
            lo_b = 0
            hi_b = m
            while lo_b < hi_b:
                mid = (lo_b + hi_b) >> 1
                if avail[mid] < want:
                    lo_b = mid + 1
                else:
                    hi_b = mid
            idx = lo_b
            if idx <= prev_idx:
                idx = prev_idx + 1
            out[e] = avail[idx]
            taken[cnt] = idx
            cnt += 1
            prev_idx = idx
        if s > 0:
            # Compact the taken indices (strictly ascending) out of avail.
            t = 0
            write = taken[0]
            for r in range(taken[0], m):
                if t < cnt and r == taken[t]:
                    t += 1
                else:
                    avail[write] = avail[r]
                    write += 1
            m = write


@njit(cache=True)
def serve_polled(
    packed_sorted: np.ndarray,
    poll_sorted: np.ndarray,
    out: np.ndarray,
) -> None:
    """Per-event poll indices for queue-grouped polled-queue events.

    ``packed_sorted``/``poll_sorted`` are the replay's event arrays after
    its (queue, level, order) grouping sort; ``out`` receives each
    event's poll index in the same positions.
    """
    num = len(packed_sorted)
    i = 0
    while i < num:
        q = packed_sorted[i] >> 4
        lvl = packed_sorted[i] & 15
        single = True
        j = i
        while j < num and (packed_sorted[j] >> 4) == q:
            if (packed_sorted[j] & 15) != lvl:
                single = False
            j += 1
        if single:
            # FIFO over the queue's polls: one serviced per poll, never
            # before an event's own first poll.
            prev = np.int64(-2)
            for e in range(i, j):
                cand = prev + 1
                if poll_sorted[e] > cand:
                    cand = poll_sorted[e]
                out[e] = cand
                prev = cand
        else:
            _serve_multilevel(packed_sorted, poll_sorted, out, i, j)
        i = j
