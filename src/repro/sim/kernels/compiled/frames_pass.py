"""Compiled per-lane frame-formation stepper (scalar mirror of
:class:`repro.sim.kernels.frames._LaneFormation`).

Each lane runs the reference per-input recursion — absorb arrivals up to
the current cycle, evaluate the PF/FOFF pick, form or jump — as one
compiled loop over *all* of the lane's cycles, instead of the NumPy
engine's one vector pass per global cycle index.  Lanes are independent
(each owns its VOQ row exclusively), so iterating lane-major emits every
frame of a lane in ascending cycle order — which preserves the only
ordering the :class:`~repro.sim.kernels.frames.FrameSchedule` contract
requires (ascending ``start`` within a VOQ); the global cross-VOQ order
is explicitly unspecified.

Pending arrivals arrive as lane-major CSR arrays (``pstart`` offsets into
``(lane, tag)``-sorted tag/output arrays).  The loop absorbs with
``tag <= c``, which is exactly the reference's ``tag == c``: a lane's
unconsumed tags are never below its cycle (absorption is in tag order and
declines jump straight to the next tag), so the relaxed test can never
absorb early.
"""

from __future__ import annotations

import numpy as np

from ._jit import njit

__all__ = ["form_lanes"]

_INT64_MAX = int(np.iinfo(np.int64).max)


@njit(cache=True)
def form_lanes(
    n: int,
    is_pf: bool,
    threshold: int,
    drain: bool,
    avail: np.ndarray,
    taken: np.ndarray,
    full_rr: np.ndarray,
    partial_rr: np.ndarray,
    cycle: np.ndarray,
    lim: np.ndarray,
    residue: np.ndarray,
    voq_base: np.ndarray,
    ptag: np.ndarray,
    pout: np.ndarray,
    pstart: np.ndarray,
    f_voq: np.ndarray,
    f_start: np.ndarray,
    f_size: np.ndarray,
    f_fakes: np.ndarray,
    f_slot: np.ndarray,
    consumed: np.ndarray,
):
    """Advance every lane below its ``lim`` cycle (exclusive), or run the
    drain-quiescence loop when ``drain`` is set.

    Mutates the per-lane state grids in place, appends formed frames to
    the ``f_*`` output arrays (preallocated by the caller at the real-
    packet upper bound), and records per-lane consumed-event counts in
    ``consumed``.  Returns ``(frame_count, decline_jumps)``.
    """
    count = 0
    jumps = 0
    num_lanes = avail.shape[0]
    for lane in range(num_lanes):
        c = cycle[lane]
        limit = lim[lane]
        at = pstart[lane]
        end = pstart[lane + 1]
        if c >= limit:
            consumed[lane] = 0
            continue
        # Lane aggregates, maintained incrementally below.
        total = 0
        full_count = 0
        for j in range(n):
            a = avail[lane, j]
            total += a
            if a >= n:
                full_count += 1
        while c < limit:
            while at < end and ptag[at] <= c:
                j = pout[at]
                at += 1
                avail[lane, j] += 1
                total += 1
                if avail[lane, j] == n:
                    full_count += 1
            # The pick: full frames behind the RR pointer first, then the
            # per-rule fallback (PF pads the longest VOQ past threshold,
            # FOFF takes the next nonempty VOQ behind a second pointer).
            jj = -1
            k = 0
            took_full = False
            if full_count > 0:
                p = full_rr[lane]
                for off in range(n):
                    q = p + off
                    if q >= n:
                        q -= n
                    if avail[lane, q] >= n:
                        jj = q
                        k = n
                        took_full = True
                        break
            if jj < 0:
                if is_pf:
                    if total >= threshold:
                        best = 0
                        longest = -1
                        for q in range(n):
                            if avail[lane, q] > best:
                                best = avail[lane, q]
                                longest = q
                        if longest >= 0 and best >= threshold:
                            jj = longest
                            k = best
                elif total > 0:
                    p = partial_rr[lane]
                    for off in range(n):
                        q = p + off
                        if q >= n:
                            q -= n
                        if avail[lane, q] > 0:
                            jj = q
                            k = avail[lane, q]
                            break
            if jj >= 0:
                f_voq[count] = voq_base[lane] + jj
                f_start[count] = taken[lane, jj]
                f_size[count] = k
                # Full frames pad nothing (k = n), so PF's fake-cell
                # count is n - k in both pick branches.
                f_fakes[count] = n - k if is_pf else 0
                f_slot[count] = residue[lane] + c * n
                count += 1
                taken[lane, jj] += k
                before = avail[lane, jj]
                avail[lane, jj] = before - k
                total -= k
                if before >= n and avail[lane, jj] < n:
                    full_count -= 1
                if took_full:
                    full_rr[lane] = jj + 1 if jj + 1 < n else 0
                elif not is_pf:
                    partial_rr[lane] = jj + 1 if jj + 1 < n else 0
                c += 1
                continue
            # No frame this cycle: jump to the next pending arrival (the
            # idle-span skip), the window limit, or drain quiescence.
            jumps += 1
            if at >= end:
                if drain:
                    # Drain quiescence: the NumPy engine parks the lane
                    # at INT64_MAX (never revisited); mirror that.
                    c = _INT64_MAX
                    break
                c = limit
            else:
                nxt = ptag[at]
                if drain or nxt < limit:
                    c = nxt
                else:
                    c = limit
        cycle[lane] = c
        consumed[lane] = at - pstart[lane]
    return count, jumps
