"""Vectorized kernel: Uniform Frame Spreading (paper §2.2)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch
from .base import (
    Departures,
    mid_residues,
    periodic_fifo_service,
    replay_polled_queues,
    unit_completion,
)

__all__ = ["departures"]


def departures(
    batch: ArrivalBatch, matrix: np.ndarray, seed: int
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay Uniform Frame Spreading (full-frame aggregation)."""
    n = batch.n
    frame_size = np.full(batch.n * batch.n, n, dtype=np.int64)
    complete, c_slot, c_order, pos = unit_completion(batch, frame_size)

    voq = batch.voqs[complete]
    inp = batch.inputs[complete]
    out = batch.outputs[complete]
    c = c_slot[complete]
    g = c_order[complete]
    p = pos[complete]

    # Frame spreading is cycle-aligned: a frame starts only when fabric 1
    # connects the input to intermediate 0 (t ≡ -i mod n), frames FCFS per
    # input by completion, back to back at best (one poll cycle apart).
    # Compute each frame's start via the running-max recursion over the
    # per-input frame sequence, then scatter to packets.
    frame_last = p == n - 1
    f_inp = inp[frame_last]
    f_c = c[frame_last]
    f_g = g[frame_last]
    f_sort = np.lexsort((f_g, f_inp))
    start = np.empty(len(f_inp), dtype=np.int64)
    bounds = np.flatnonzero(
        np.r_[True, f_inp[f_sort][1:] != f_inp[f_sort][:-1], True]
    )
    for b in range(len(bounds) - 1):
        lo, hi = bounds[b], bounds[b + 1]
        i = int(f_inp[f_sort[lo]])
        residue = (-i) % n
        ready = f_c[f_sort[lo:hi]]
        start[f_sort[lo:hi]] = periodic_fifo_service(ready, residue, n)
    # Map each packet to its frame's start: frames are keyed like units.
    f_key_sorted = np.argsort(f_g)
    pkt_frame = np.searchsorted(f_g[f_key_sorted], g)
    frame_start = start[f_key_sorted][pkt_frame]

    tx = frame_start + p  # packet `p` of the frame crosses to intermediate p
    mid = p
    departure = replay_polled_queues(
        mid * n + out,
        np.zeros(len(tx), dtype=np.int64),
        tx + 1,
        tx,
        mid_residues(n),
        n,
    )
    dep = Departures(
        voq=voq,
        seq=batch.seqs[complete],
        arrival=batch.slots[complete],
        departure=departure,
        wire=mid,
        assembled=c,
        tx=tx,
    )
    return dep, None
