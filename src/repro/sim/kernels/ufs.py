"""Vectorized kernel: Uniform Frame Spreading (paper §2.2)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch
from .base import (
    Departures,
    PolledQueueBank,
    UnitAssembler,
    WindowStacker,
    composite_argsort,
    mid_residues,
    periodic_fifo_service,
    replay_polled_queues,
    unit_completion,
)

__all__ = ["departures", "stream"]


def departures(
    batch: ArrivalBatch, matrix: np.ndarray, seed: int
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay Uniform Frame Spreading (full-frame aggregation)."""
    n = batch.n
    frame_size = np.full(batch.n * batch.n, n, dtype=np.int64)
    complete, c_slot, c_order, pos = unit_completion(batch, frame_size)

    voq = batch.voqs[complete]
    inp = batch.inputs[complete]
    out = batch.outputs[complete]
    c = c_slot[complete]
    g = c_order[complete]
    p = pos[complete]

    # Frame spreading is cycle-aligned: a frame starts only when fabric 1
    # connects the input to intermediate 0 (t ≡ -i mod n), frames FCFS per
    # input by completion, back to back at best (one poll cycle apart).
    # Compute each frame's start via the running-max recursion over the
    # per-input frame sequence, then scatter to packets.
    frame_last = p == n - 1
    f_inp = inp[frame_last]
    f_c = c[frame_last]
    f_g = g[frame_last]
    f_sort = np.lexsort((f_g, f_inp))
    start = np.empty(len(f_inp), dtype=np.int64)
    # No completed frame at all (short run / tiny load): nothing departs.
    bounds = np.flatnonzero(
        np.r_[True, f_inp[f_sort][1:] != f_inp[f_sort][:-1], True]
    ) if len(f_inp) else np.empty(1, dtype=np.int64)
    for b in range(len(bounds) - 1):
        lo, hi = bounds[b], bounds[b + 1]
        i = int(f_inp[f_sort[lo]])
        residue = (-i) % n
        ready = f_c[f_sort[lo:hi]]
        start[f_sort[lo:hi]] = periodic_fifo_service(ready, residue, n)
    # Map each packet to its frame's start: frames are keyed like units.
    f_key_sorted = np.argsort(f_g)
    pkt_frame = np.searchsorted(f_g[f_key_sorted], g)
    frame_start = start[f_key_sorted][pkt_frame]

    tx = frame_start + p  # packet `p` of the frame crosses to intermediate p
    mid = p
    departure = replay_polled_queues(
        mid * n + out,
        np.zeros(len(tx), dtype=np.int64),
        tx + 1,
        tx,
        mid_residues(n),
        n,
    )
    dep = Departures(
        voq=voq,
        seq=batch.seqs[complete],
        arrival=batch.slots[complete],
        departure=departure,
        wire=mid,
        assembled=c,
        tx=tx,
    )
    return dep, None


class _UfsStream:
    """Windowed (and seed-stacked) replay of Uniform Frame Spreading.

    Full frames assemble in a :class:`UnitAssembler`; each completed
    frame then waits as *one event* in a per-input periodic FIFO bank
    for its cycle-aligned start slot (packets are parked in a side store
    keyed by the frame's completion index until then), and finally the
    frame's packets replay through the stage-2 polled queues.
    """

    def __init__(self, matrix: np.ndarray, seeds, total_slots: int) -> None:
        n = matrix.shape[0]
        self.n = n
        self.num_blocks = len(seeds)
        self._stacker = WindowStacker(self.num_blocks)
        self._assembler = UnitAssembler(
            np.full(self.num_blocks * n * n, n, dtype=np.int64)
        )
        ports = np.arange(n, dtype=np.int64)
        # (Frames are emitted VOQ-grouped, not completion-ordered, so
        # this bank cannot use the presorted radix grouping.)
        self._frame_bank = PolledQueueBank(
            np.tile((-ports) % n, self.num_blocks), n
        )
        self._stage2 = PolledQueueBank(
            np.tile(mid_residues(n), self.num_blocks), n
        )
        # Packets of completed frames awaiting their frame's start slot,
        # sorted by (frame key, position).  The frame key is the
        # completing packet's generation index, block-tagged for
        # cross-seed uniqueness.
        empty = np.empty(0, dtype=np.int64)
        self._parked = (empty,) * 6  # fkey, voq_x, seq, slot, pos, c_slot

    def _frame_key(self, block: np.ndarray, c_order: np.ndarray) -> np.ndarray:
        return c_order * self.num_blocks + block

    def _advance(self, frames, parked_new, boundary):
        """Run the frame-start FIFO and stage 2 up to ``boundary``."""
        n = self.n
        # Frame events: queue = block * n + input, ready = completion
        # slot, FIFO order = completion index (per-input completion
        # order, as in the monolithic kernel).
        f_queue, f_ready, f_order, f_key = frames
        start, _, payload = self._frame_bank.feed(
            f_queue, np.zeros(len(f_queue), dtype=np.int64),
            f_ready, f_order, (f_key,), boundary,
        )
        (done_key,) = payload

        # Park the new frames' packets, keep the store (fkey, pos)-sorted.
        fkey, voq_x, seq, slot, pos, c_slot = tuple(
            np.concatenate([old, new])
            for old, new in zip(self._parked, parked_new)
        )
        order = composite_argsort(fkey, pos) if len(fkey) else fkey
        fkey, voq_x, seq, slot, pos, c_slot = (
            fkey[order], voq_x[order], seq[order], slot[order],
            pos[order], c_slot[order],
        )

        # Release the packets of frames whose start slot is now final.
        key_order = np.argsort(done_key)
        done_sorted = done_key[key_order]
        start_sorted = start[key_order]
        at = np.searchsorted(done_sorted, fkey)
        member = np.zeros(len(fkey), dtype=bool)
        if len(done_sorted):
            inb = at < len(done_sorted)
            member[inb] = done_sorted[at[inb]] == fkey[inb]
        keep = ~member
        self._parked = (
            fkey[keep], voq_x[keep], seq[keep], slot[keep],
            pos[keep], c_slot[keep],
        )
        frame_start = np.zeros(int(member.sum()), dtype=np.int64)
        if len(done_sorted):
            frame_start = start_sorted[at[member]]
        voq_x, seq, slot, pos, c_slot = (
            voq_x[member], seq[member], slot[member], pos[member],
            c_slot[member],
        )
        tx = frame_start + pos
        block = voq_x // (n * n)
        out = voq_x % n
        departure, tx, payload = self._stage2.feed(
            block * n * n + pos * n + out,
            np.zeros(len(tx), dtype=np.int64),
            tx + 1,
            tx,
            (voq_x, seq, slot, pos, c_slot),
            boundary,
        )
        voq_x, seq, slot, pos, c_slot = payload
        return Departures(
            voq=voq_x,
            seq=seq,
            arrival=slot,
            departure=departure,
            wire=pos,
            assembled=c_slot,
            tx=tx,
        )

    def _round(self, windows, final: bool, split: bool = True):
        from .sprinklers import _split_blocks

        n = self.n
        boundary = None
        if windows is not None:
            block, slots, inputs, outputs, seqs, gidx, end = (
                self._stacker.stack(windows)
            )
            if not final:
                boundary = end
            voq_x = block * n * n + inputs * n + outputs
            voq_c, slot_c, seq_c, g_c, pos_c, c_slot, c_order = (
                self._assembler.feed(voq_x, slots, seqs, gidx)
            )
            blk_c = voq_c // (n * n)
            fkey = self._frame_key(blk_c, c_order)
            last = pos_c == n - 1
            frames = (
                blk_c[last] * n + (voq_c[last] % (n * n)) // n,
                c_slot[last],
                c_order[last],
                fkey[last],
            )
            parked_new = (fkey, voq_c, seq_c, slot_c, pos_c, c_slot)
        else:
            empty = np.empty(0, dtype=np.int64)
            frames = (empty,) * 4
            parked_new = (empty,) * 6
        dep = self._advance(frames, parked_new, boundary)
        return _split_blocks(dep, n, self.num_blocks) if split else dep

    def feed(self, windows):
        return self._round(windows, final=False)

    def finish(self, windows=None):
        deps = self._round(windows, final=True)
        return deps, [None] * self.num_blocks

    def finish_stacked(self, windows=None):
        dep = self._round(windows, final=True, split=False)
        return dep, [None] * self.num_blocks


def stream(matrix: np.ndarray, seeds, total_slots: int) -> _UfsStream:
    """Resumable multi-seed UFS replay (see :class:`_UfsStream`)."""
    return _UfsStream(matrix, seeds, total_slots)
