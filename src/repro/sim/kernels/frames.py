"""Cycle-aligned frame formation shared by the PF and FOFF kernels.

PF and FOFF both serve their inputs *frame at a time*: an idle input may
start a new frame only at the slot fabric 1 connects it to intermediate
port 0 (``t ≡ -i (mod n)``, one opportunity per ``n``-slot cycle), and a
frame's ``k``-th packet then crosses to intermediate port ``k`` at slot
``start + k``.  Which frame starts is a deterministic function of the
input's VOQ occupancies at the cycle boundary (full frames first behind a
round-robin pointer; the padding / partial-frame fallback differs per
switch), and occupancies are arrivals-so-far minus packets already taken
— no feedback from the rest of the switch.  Frame formation is therefore
*sequential per input but exactly replayable*.

The production path is the **array-stepped formation engine**
(:class:`_LaneFormation`): every ``(seed block, input)`` pair is one
*lane*, and all lanes advance through their cycle recursions in lock-step
— one NumPy pass per cycle index covering every lane at that cycle
(occupancy deltas gathered from the cycle-sorted arrival buffer, the
PF/FOFF pickers as masked argmax/argmin selections, round-robin pointers
as vectors).  Cycle indices at which no lane has a decision to make are
skipped in one jump: the global cursor moves to the smallest pending
lane cycle, so quiescent spans between arrivals cost nothing.  A run's
formation is O(num_cycles) vector steps instead of O(num_slots) Python
iterations, and stacking seeds widens the per-step arrays instead of
multiplying the step count — which is what makes PF/FOFF seed-batchable.

:func:`build_frame_schedule` runs the engine over a monolithic batch;
:class:`FrameFormationStream` is its resumable (windowed / multi-seed)
form; :func:`frame_membership` maps every packet to its frame with one
composite searchsorted.  The original per-input scalar recursion
(:class:`_InputFormation` driven by :data:`Picker` closures) is retained
as the *test-only reference* — :func:`reference_frame_schedule` /
:class:`ReferenceFormationStream` — and the formation parity suite pins
the vectorized engine against it frame for frame.

The formation loop runs past the arrival horizon until a cycle forms no
frame, mirroring the object engine's drain phase: with no new arrivals a
frameless cycle leaves the VOQ state (and the round-robin pointers)
untouched, so no later cycle could form one either — exactly the
quiescence the drain detects.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Tuple

import numpy as np

from ... import telemetry
from ...traffic.batch import ArrivalBatch, stable_voq_argsort
from .base import concat_ranges, stable_id_argsort
from .compiled import compiled_active
from .compiled.frames_pass import form_lanes

__all__ = [
    "FormationRule",
    "FrameFormationStream",
    "arrival_tags",
    "FramedPacketBuffer",
    "FrameSchedule",
    "ReferenceFormationStream",
    "build_frame_schedule",
    "drain_cut",
    "drain_horizon",
    "foff_picker",
    "foff_rule",
    "frame_membership",
    "pf_picker",
    "pf_rule",
    "reference_frame_schedule",
]

_INT64_MAX = np.iinfo(np.int64).max


def drain_cut(num_slots: int, n: int) -> int:
    """Last slot the object engine's drain phase steps (inclusive).

    :class:`~repro.sim.engine.SimulationEngine` drains for at most
    ``max(50 * n, num_slots)`` slots after the arrival stream ends;
    packets that would depart later stay in flight there, so any replay
    (monolithic or streamed) must discard their departures too.  (The
    drain's other stop — ``4n`` departure-free slots — only fires at
    quiescence for the frame-at-a-time switches: while any backlog
    remains a frame forms every ``n``-slot cycle and departs within two
    fabric revolutions.)
    """
    return num_slots + max(50 * n, num_slots) - 1


def drain_horizon(batch: ArrivalBatch) -> int:
    """:func:`drain_cut` of a monolithic batch."""
    return drain_cut(batch.num_slots, batch.n)


class FormationRule(NamedTuple):
    """Declarative frame chooser, shared by both formation paths.

    ``kind`` is ``"pf"`` (full frames behind a round-robin pointer, else
    pad the longest VOQ of at least ``threshold`` packets up to a full
    frame) or ``"foff"`` (full frames RR first, else the next nonempty
    VOQ behind a second round-robin pointer, taken whole).  The rule is
    plain data so the vectorized engine can dispatch on it per step and
    the scalar reference can build the equivalent :data:`Picker`.
    """

    kind: str
    threshold: int = 0

    def make_picker(self, n: int) -> "Picker":
        """The scalar reference chooser for one input (test-only path)."""
        if self.kind == "pf":
            return pf_picker(n, self.threshold)
        if self.kind == "foff":
            return foff_picker(n)
        raise ValueError(f"unknown formation rule kind {self.kind!r}")


def pf_rule(threshold: int) -> FormationRule:
    """The Padded Frames formation rule at a given padding threshold."""
    return FormationRule("pf", threshold)


def foff_rule() -> FormationRule:
    """The FOFF formation rule (full frames RR, else partial frames RR)."""
    return FormationRule("foff")


#: One cycle's frame decision: ``(voq_output, real_packets, fake_cells)``
#: or None when the input stays idle this cycle.
Pick = Optional[Tuple[int, int, int]]
#: Per-input frame chooser of the scalar *reference* path:
#: ``pick(avail, total, full_count)`` consumes the VOQ occupancy list
#: plus its maintained aggregates (total backlog, number of full-frame
#: VOQs), may mutate its round-robin pointers, and returns the cycle's
#: :data:`Pick`.  The production kernels run :class:`_LaneFormation`
#: instead; pickers survive as the independent implementation the
#: formation parity tests check the array engine against.
Picker = Callable[[List[int], int, int], Pick]


class FrameSchedule(NamedTuple):
    """Every frame formed during a run, across all inputs.

    Parallel arrays, one entry per frame: the flat VOQ id whose packets
    fill it, the first VOQ rank it covers, how many real packets it took,
    how many fake cells pad it (PF only), and the cycle-start slot at
    which it began transmitting (packet ``k`` crosses at ``slot + k`` to
    intermediate port ``k``).  Within one VOQ, entries appear in
    formation order (ascending ``start``); the global order across VOQs
    is unspecified (the array engine emits cycle-major, the scalar
    reference input-major) and nothing downstream may depend on it.
    """

    voq: np.ndarray
    start: np.ndarray
    size: np.ndarray
    fakes: np.ndarray
    slot: np.ndarray

    def __len__(self) -> int:
        return len(self.voq)


def pf_picker(n: int, threshold: int) -> Picker:
    """The Padded Frames frame chooser (full frames RR, else pad the
    longest VOQ of at least ``threshold`` packets up to a full frame)."""
    state = {"full_rr": 0}

    def pick(avail: List[int], total: int, full_count: int) -> Pick:
        if full_count:
            pointer = state["full_rr"]
            for offset in range(n):
                j = pointer + offset
                if j >= n:
                    j -= n
                if avail[j] >= n:
                    state["full_rr"] = j + 1 if j + 1 < n else 0
                    return j, n, 0
        if total < threshold:
            return None
        # VoqBank.longest: strictly longest, ties to the lowest index.
        best, longest = 0, -1
        for j in range(n):
            if avail[j] > best:
                best, longest = avail[j], j
        if longest < 0 or best < threshold:
            return None
        return longest, best, n - best

    return pick


def foff_picker(n: int) -> Picker:
    """The FOFF frame chooser (full frames RR first, else the next
    nonempty VOQ behind a second round-robin pointer, taken whole)."""
    state = {"full_rr": 0, "partial_rr": 0}

    def pick(avail: List[int], total: int, full_count: int) -> Pick:
        if total == 0:
            return None
        if full_count:
            pointer = state["full_rr"]
            for offset in range(n):
                j = pointer + offset
                if j >= n:
                    j -= n
                if avail[j] >= n:
                    state["full_rr"] = j + 1 if j + 1 < n else 0
                    return j, n, 0
        pointer = state["partial_rr"]
        for offset in range(n):
            j = pointer + offset
            if j >= n:
                j -= n
            if avail[j]:
                state["partial_rr"] = j + 1 if j + 1 < n else 0
                return j, avail[j], 0
        raise AssertionError("nonzero backlog with no nonempty VOQ")

    return pick


# ---------------------------------------------------------------------------
# The array-stepped formation engine (the production path)
# ---------------------------------------------------------------------------


class _LaneFormation:
    """Lock-step frame formation across all ``(block, input)`` lanes.

    Carried state is flat per-lane arrays: the ``(lane, voq)`` occupancy
    and taken grids, the round-robin pointers, and each lane's current
    cycle index.  Pending arrivals live in two parallel views of the
    same event set — cycle-major (tag-sorted, consumed by one global
    cursor) for occupancy absorption, lane-major (``(lane, tag)``-sorted)
    for the decline jumps.  One :meth:`run` step serves every lane whose
    cycle equals the global cursor ``c``:

    1. absorb every arrival with tag <= ``c`` (one scalar searchsorted
       on the cycle-major tags + one bincount scatter into the occupancy
       grid — eager for lanes ahead of the cursor, which is safe because
       a lane's next pick absorbs everything up to its own cycle anyway);
    2. evaluate the rule's pick as masked vector selections — the
       cyclic-RR choice is an argmin of ``(j - pointer) mod n`` over the
       eligible mask, PF's longest-VOQ fallback a plain argmax;
    3. record the formed frames and update occupancies / pointers; lanes
       that decline jump straight to their next pending arrival tag (or
       the window limit / quiescence).

    The cursor then moves to the smallest pending lane cycle, so spans
    where no lane crosses a decision threshold are skipped in one jump —
    a lane's sequence of (cycle, decision) pairs is *identical* to the
    scalar reference recursion, step-skipping included.
    """

    def __init__(self, n: int, num_blocks: int, rule: FormationRule) -> None:
        if rule.kind not in ("pf", "foff"):
            raise ValueError(f"unknown formation rule kind {rule.kind!r}")
        self.n = n
        self.num_lanes = num_blocks * n
        self.rule = rule
        lanes = np.arange(self.num_lanes, dtype=np.int64)
        inputs = lanes % n
        #: Cycle-boundary slot of lane cycle ``c`` is ``residue + c * n``.
        self.residue = (n - inputs) % n
        self.voq_base = (lanes // n) * n * n + inputs * n
        self.avail = np.zeros(self.num_lanes * n, dtype=np.int64)
        self._avail2d = self.avail.reshape(self.num_lanes, n)
        self.taken = np.zeros((self.num_lanes, n), dtype=np.int64)
        self.full_rr = np.zeros(self.num_lanes, dtype=np.int64)
        self.partial_rr = np.zeros(self.num_lanes, dtype=np.int64)
        self.cycle = np.zeros(self.num_lanes, dtype=np.int64)
        #: ``_RRTAB[p, j] = (j - p) mod n``: the cyclic-RR preference of
        #: VOQ ``j`` behind pointer ``p`` — one row gather per step
        #: instead of a broadcast subtract + mod.
        self._rrtab = (self._cols()[None, :] - self._cols()[:, None]) % n
        empty = np.empty(0, dtype=np.int64)
        # Pending arrivals: cycle-major tags + occupancy cells behind the
        # global cursor ``_g``, and the lane-major key/tag arrays the
        # decline jumps binary-search.
        self._ctag = empty
        self._ccell = empty
        self._g = 0
        self._lkey = empty
        self._ltag = empty
        self._stride = 2

    def _cols(self) -> np.ndarray:
        return np.arange(self.n, dtype=np.int64)

    def absorb(
        self, lanes: np.ndarray, tags: np.ndarray, outs: np.ndarray
    ) -> None:
        """Buffer one window's arrivals (per-lane tags nondecreasing).

        The not-yet-absorbed remainder is merged with the new events and
        both sorted views rebuilt.  Carried tags never exceed incoming
        ones on the same lane (a pending tag is at most the lane's limit
        cycle, which a new window's arrivals start from), so a stable
        radix sort by lane re-sorts the union by ``(lane, tag)``; the
        cycle-major view radix-sorts cursor-relative tags where they fit
        16 bits (any realistic window) and falls back to a full argsort.
        """
        n = self.n
        carried = self._ccell[self._g :]
        lane = np.concatenate([carried // n, lanes])
        tag = np.concatenate([self._ctag[self._g :], tags])
        out = np.concatenate([carried % n, outs])
        if len(tag) == 0:
            empty = np.empty(0, dtype=np.int64)
            self._ctag = self._ccell = self._lkey = self._ltag = empty
            self._g = 0
            self._stride = 2
            return
        cell = lane * n + out
        rel = tag - int(tag.min())
        if int(rel.max()) <= np.iinfo(np.uint16).max:
            order = np.argsort(rel.astype(np.uint16), kind="stable")
        else:
            order = np.argsort(rel, kind="stable")
        self._ctag = tag[order]
        self._ccell = cell[order]
        self._g = 0
        lorder = stable_id_argsort(lane, self.num_lanes)
        self._stride = int(tag.max()) + 2
        self._ltag = tag[lorder]
        self._lkey = lane[lorder] * self._stride + self._ltag

    def run(self, limit: Optional[np.ndarray]) -> FrameSchedule:
        """Advance every lane below its ``limit`` cycle (exclusive).

        ``limit=None`` runs the drain instead: lanes advance until the
        pick declines with no pending arrivals (the object engine's
        post-arrival quiescence).
        """
        n = self.n
        rule = self.rule
        is_pf = rule.kind == "pf"
        threshold = rule.threshold
        cycle = self.cycle
        rrtab = self._rrtab
        ctag = self._ctag
        ccell = self._ccell
        num_events = len(ctag)
        num_cells = self.num_lanes * n
        lim = (
            np.full(self.num_lanes, _INT64_MAX, dtype=np.int64)
            if limit is None
            else limit
        )
        parts: Tuple[List[np.ndarray], ...] = ([], [], [], [], [])
        voq_parts, start_parts, size_parts, fakes_parts, slot_parts = parts
        g = self._g
        # Formation-loop telemetry, accumulated as plain ints per cycle
        # (negligible next to the ~20 array ops each iteration runs) and
        # flushed to the counters once, after the loop, when enabled.
        lane_advances = 0
        cursor_jumps = 0
        while True:
            pending = np.where(cycle < lim, cycle, _INT64_MAX)
            c = int(pending.min())
            if c == _INT64_MAX:
                break
            act = np.flatnonzero(pending == c)

            # Absorb every arrival with tag <= c: one cursor advance over
            # the cycle-major events.  Lanes ahead of the cursor absorb
            # early, which cannot change any pick — their next decision
            # is at their own cycle >= the arrival's tag.
            if g < num_events:
                g2 = int(np.searchsorted(ctag, c, side="right"))
                if g2 > g:
                    self.avail += np.bincount(
                        ccell[g:g2], minlength=num_cells
                    )
                    g = g2

            rows = self._avail2d[act]

            # The pick, as masked selections.  Cyclic round-robin choice:
            # the eligible j minimizing (j - pointer) mod n.
            full = rows >= n
            rr = self.full_rr[act]
            off = np.where(full, rrtab[rr], n).min(axis=1)
            has_full = off < n
            j_full = (off + rr) % n
            if is_pf:
                best = rows.max(axis=1)
                j_alt = rows.argmax(axis=1)  # ties to the lowest index
                formed = has_full | (best >= threshold)
                j = np.where(has_full, j_full, j_alt)
                k = np.where(has_full, n, best)
            else:
                rr2 = self.partial_rr[act]
                off2 = np.where(rows > 0, rrtab[rr2], n).min(axis=1)
                formed = off2 < n
                j_alt = (off2 + rr2) % n
                j = np.where(has_full, j_full, j_alt)
                k = np.where(has_full, n, rows[np.arange(len(act)), j])

            if formed.all():
                lf, jf, kf, took_full = act, j, k, has_full
                fsel = None
            else:
                fsel = np.flatnonzero(formed)
                lf = act[fsel]
                jf = j[fsel]
                kf = k[fsel]
                took_full = has_full[fsel]
            if len(lf):
                lane_advances += len(lf)
                voq_parts.append(self.voq_base[lf] + jf)
                start_parts.append(self.taken[lf, jf])
                size_parts.append(kf)
                # Full frames pad nothing (k = n), so PF's fake-cell
                # count is n - k in both pick branches.
                fakes_parts.append(
                    n - kf if is_pf else np.zeros(len(lf), dtype=np.int64)
                )
                slot_parts.append(self.residue[lf] + c * n)
                self.taken[lf, jf] += kf
                self._avail2d[lf, jf] -= kf
                tf = np.flatnonzero(took_full)
                if len(tf):
                    self.full_rr[lf[tf]] = (jf[tf] + 1) % n
                if not is_pf:
                    tp = np.flatnonzero(~took_full)
                    if len(tp):
                        self.partial_rr[lf[tp]] = (jf[tp] + 1) % n
                cycle[lf] = c + 1

            if fsel is not None:
                # Declining lanes jump to their next pending arrival —
                # the idle-span skip; the pick is a pure function of
                # state an empty cycle leaves untouched.
                ld = act[~formed]
                cursor_jumps += len(ld)
                if len(self._lkey):
                    idx = np.searchsorted(
                        self._lkey,
                        ld * self._stride + min(c, self._stride - 1),
                        side="right",
                    )
                    idx_c = np.minimum(idx, len(self._lkey) - 1)
                    have = (idx < len(self._lkey)) & (
                        self._lkey[idx_c] // self._stride == ld
                    )
                    nxt = self._ltag[idx_c]
                else:
                    have = np.zeros(len(ld), dtype=bool)
                    nxt = ld
                if limit is None:
                    # Drain quiescence: no arrivals to come and the pick
                    # declines — the object engine's drain sees the same.
                    cycle[ld] = np.where(have, nxt, _INT64_MAX)
                else:
                    cycle[ld] = np.where(
                        have, np.minimum(nxt, lim[ld]), lim[ld]
                    )
        self._g = g
        if telemetry.enabled():
            telemetry.count("kernel.frames.lane_advances", lane_advances)
            telemetry.count("kernel.frames.cursor_jumps", cursor_jumps)
        empty = np.empty(0, dtype=np.int64)
        return FrameSchedule(
            voq=np.concatenate(voq_parts) if voq_parts else empty,
            start=np.concatenate(start_parts) if start_parts else empty,
            size=np.concatenate(size_parts) if size_parts else empty,
            fakes=np.concatenate(fakes_parts) if fakes_parts else empty,
            slot=np.concatenate(slot_parts) if slot_parts else empty,
        )


class _CompiledLaneFormation:
    """Drop-in for :class:`_LaneFormation` backed by the compiled per-lane
    stepper (:func:`repro.sim.kernels.compiled.frames_pass.form_lanes`).

    Carries the same per-lane state grids; pending arrivals live in one
    lane-major CSR buffer instead of the NumPy engine's two sorted views
    (and are absorbed lazily, per lane, rather than eagerly under the
    global cursor — unobservable, because a lane's pick only reads
    occupancy after absorbing every tag at or below its own cycle).
    Schedules come out lane-major instead of cycle-major; the
    :class:`FrameSchedule` contract leaves the cross-VOQ order
    unspecified, and within a VOQ — owned by exactly one lane — frames
    still appear in ascending formation order.
    """

    def __init__(self, n: int, num_blocks: int, rule: FormationRule) -> None:
        if rule.kind not in ("pf", "foff"):
            raise ValueError(f"unknown formation rule kind {rule.kind!r}")
        self.n = n
        self.num_lanes = num_blocks * n
        self.rule = rule
        lanes = np.arange(self.num_lanes, dtype=np.int64)
        inputs = lanes % n
        #: Cycle-boundary slot of lane cycle ``c`` is ``residue + c * n``.
        self.residue = (n - inputs) % n
        self.voq_base = (lanes // n) * n * n + inputs * n
        self.avail = np.zeros((self.num_lanes, n), dtype=np.int64)
        self.taken = np.zeros((self.num_lanes, n), dtype=np.int64)
        self.full_rr = np.zeros(self.num_lanes, dtype=np.int64)
        self.partial_rr = np.zeros(self.num_lanes, dtype=np.int64)
        self.cycle = np.zeros(self.num_lanes, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        self._plane = empty
        self._ptag = empty
        self._pout = empty
        self._pstart = np.zeros(self.num_lanes + 1, dtype=np.int64)

    def absorb(
        self, lanes: np.ndarray, tags: np.ndarray, outs: np.ndarray
    ) -> None:
        """Buffer one window's arrivals (per-lane tags nondecreasing).

        Same merge invariant as :meth:`_LaneFormation.absorb`: a carried
        tag is at most the lane's limit cycle, which a new window's tags
        start from, so a stable sort by lane re-sorts the union by
        ``(lane, tag)``.
        """
        lane = np.concatenate([self._plane, lanes])
        tag = np.concatenate([self._ptag, tags])
        out = np.concatenate([self._pout, outs])
        if len(lane):
            order = stable_id_argsort(lane, self.num_lanes)
            lane, tag, out = lane[order], tag[order], out[order]
        self._plane, self._ptag, self._pout = lane, tag, out
        counts = np.bincount(lane, minlength=self.num_lanes)
        self._pstart = np.concatenate(([0], np.cumsum(counts)))

    def run(self, limit: Optional[np.ndarray]) -> FrameSchedule:
        """Advance every lane below its ``limit`` cycle (exclusive);
        ``limit=None`` runs the drain-quiescence loop."""
        drain = limit is None
        lim = (
            np.full(self.num_lanes, _INT64_MAX, dtype=np.int64)
            if drain
            else np.ascontiguousarray(limit, dtype=np.int64)
        )
        # Every frame takes at least one real packet, so backlog plus
        # pending arrivals bounds the output size.
        bound = int(self.avail.sum()) + len(self._ptag)
        f_voq = np.empty(bound, dtype=np.int64)
        f_start = np.empty(bound, dtype=np.int64)
        f_size = np.empty(bound, dtype=np.int64)
        f_fakes = np.empty(bound, dtype=np.int64)
        f_slot = np.empty(bound, dtype=np.int64)
        consumed = np.zeros(self.num_lanes, dtype=np.int64)
        count, jumps = form_lanes(
            self.n,
            self.rule.kind == "pf",
            self.rule.threshold,
            drain,
            self.avail,
            self.taken,
            self.full_rr,
            self.partial_rr,
            self.cycle,
            lim,
            self.residue,
            self.voq_base,
            self._ptag,
            self._pout,
            self._pstart,
            f_voq,
            f_start,
            f_size,
            f_fakes,
            f_slot,
            consumed,
        )
        if consumed.any():
            keep = np.ones(len(self._ptag), dtype=bool)
            keep[concat_ranges(self._pstart[:-1], consumed)] = False
            self._plane = self._plane[keep]
            self._ptag = self._ptag[keep]
            self._pout = self._pout[keep]
            counts = np.bincount(self._plane, minlength=self.num_lanes)
            self._pstart = np.concatenate(([0], np.cumsum(counts)))
        if telemetry.enabled():
            telemetry.count("kernel.frames.lane_advances", int(count))
            telemetry.count("kernel.frames.cursor_jumps", int(jumps))
        return FrameSchedule(
            voq=f_voq[:count],
            start=f_start[:count],
            size=f_size[:count],
            fakes=f_fakes[:count],
            slot=f_slot[:count],
        )


def _make_formation(n: int, num_blocks: int, rule: FormationRule):
    """The active backend's formation engine (NumPy lock-step lanes, or
    the compiled per-lane stepper when ``backend="compiled"``)."""
    if compiled_active():
        return _CompiledLaneFormation(n, num_blocks, rule)
    return _LaneFormation(n, num_blocks, rule)


def arrival_tags(
    slots: np.ndarray, residue: np.ndarray, n: int
) -> np.ndarray:
    """First cycle whose boundary slot (``residue + c * n``) is at or
    after the arrival slot; arrivals in the boundary slot itself are
    visible to that cycle's pick (the slot protocol accepts before
    serving).  Never negative since slots >= 0 > residue - n."""
    return (slots - residue + n - 1) // n


def build_frame_schedule(
    batch: ArrivalBatch, rule: FormationRule
) -> FrameSchedule:
    """Run the array-stepped formation engine over one monolithic batch."""
    n = batch.n
    form = _make_formation(n, 1, rule)
    tags = arrival_tags(batch.slots, form.residue[batch.inputs], n)
    form.absorb(batch.inputs, tags, batch.outputs)
    return form.run(None)


# ---------------------------------------------------------------------------
# The scalar reference recursion (test-only)
# ---------------------------------------------------------------------------


class _InputFormation:
    """Resumable frame-formation recursion of one input (reference path).

    The per-cycle decision loop of the object engine's frame-at-a-time
    inputs, restartable at any cycle boundary: the carried state is the
    VOQ occupancy list, its aggregates, the picker's round-robin
    pointers, the cycle cursor, and the not-yet-absorbed arrival buffer.
    ``run`` advances to (exclusive) ``limit_cycle``; ``drain`` runs the
    quiescence loop of the object engine's drain phase.

    This was the production formation path before the array-stepped
    engine; it survives because it is a genuinely independent
    implementation (plain Python ints, per-input closures) that the
    formation parity suite pins :class:`_LaneFormation` against.  Cycles
    at which the pick declines and no arrival lands are skipped in one
    jump (the pick is a pure function of unchanged state), exactly like
    the vector engine's idle-span skip.
    """

    __slots__ = (
        "n", "residue", "pick", "avail", "taken", "total", "full_count",
        "cycle", "arrival_cycle", "arrival_out", "at",
    )

    def __init__(self, n: int, residue: int, pick: Picker) -> None:
        self.n = n
        self.residue = residue
        self.pick = pick
        self.avail = [0] * n
        self.taken = [0] * n
        self.total = 0
        self.full_count = 0
        self.cycle = 0
        self.arrival_cycle: List[int] = []
        self.arrival_out: List[int] = []
        self.at = 0

    def absorb(self, cycles, outs) -> None:
        """Buffer arrivals (cycle-tagged, in acceptance order)."""
        self.arrival_cycle.extend(int(c) for c in cycles)
        self.arrival_out.extend(int(j) for j in outs)

    def _step(self, limit_cycle: Optional[int], sink) -> None:
        f_out, f_start, f_size, f_fakes, f_slot = sink
        n = self.n
        residue = self.residue
        pick = self.pick
        avail = self.avail
        taken = self.taken
        total = self.total
        full_count = self.full_count
        arrival_cycle = self.arrival_cycle
        arrival_out = self.arrival_out
        at = self.at
        num_arrivals = len(arrival_cycle)
        c = self.cycle
        while True:
            if limit_cycle is not None and c >= limit_cycle:
                break
            while at < num_arrivals and arrival_cycle[at] == c:
                j = arrival_out[at]
                at += 1
                avail[j] += 1
                total += 1
                if avail[j] == n:
                    full_count += 1
            picked = pick(avail, total, full_count)
            if picked is not None:
                j, k, fakes = picked
                f_out.append(j)
                f_start.append(taken[j])
                f_size.append(k)
                f_fakes.append(fakes)
                f_slot.append(residue + c * n)
                taken[j] += k
                before = avail[j]
                avail[j] = before - k
                total -= k
                if before >= n and avail[j] < n:
                    full_count -= 1
                c += 1
                continue
            # No frame this cycle.  The pick is a pure function of
            # (avail, pointers), which an empty cycle leaves untouched,
            # so every cycle until the next arrival declines too.
            if at >= num_arrivals:
                if limit_cycle is None:
                    # Drain quiescence: no arrivals to come and the pick
                    # declines — the object engine's drain sees the same.
                    break
                c = limit_cycle
            else:
                nxt = arrival_cycle[at]
                c = nxt if limit_cycle is None else min(nxt, limit_cycle)
        # Save state; drop the consumed arrival prefix.
        self.cycle = c
        self.total = total
        self.full_count = full_count
        if at:
            del arrival_cycle[:at]
            del arrival_out[:at]
        self.at = 0

    def run(self, limit_cycle: int, sink) -> None:
        """Advance through every cycle strictly below ``limit_cycle``,
        appending formed frames to the ``sink`` lists."""
        if limit_cycle > self.cycle:
            self._step(limit_cycle, sink)

    def drain(self, sink) -> None:
        """Run the post-arrival quiescence loop (object-engine drain)."""
        self._step(None, sink)


def _input_frames(
    n: int,
    residue: int,
    cycles: np.ndarray,
    outs: np.ndarray,
    pick: Picker,
) -> Tuple[List[int], List[int], List[int], List[int], List[int]]:
    """Replay one input's frame decisions over its cycle boundaries.

    ``cycles``/``outs`` are the input's arrivals in acceptance order,
    tagged with the first cycle index whose start slot is >= the arrival
    slot (arrivals in the boundary slot itself are visible to that
    cycle's pick — the slot protocol accepts before serving).
    """
    state = _InputFormation(n, residue, pick)
    state.absorb(cycles, outs)
    sink: Tuple[List[int], ...] = ([], [], [], [], [])
    state.drain(sink)
    return sink


def reference_frame_schedule(
    batch: ArrivalBatch, rule: FormationRule
) -> FrameSchedule:
    """The scalar reference formation (test-only; see :class:`_InputFormation`).

    Runs every input's per-cycle recursion with the rule's scalar picker
    and collects the schedule input-major.  The formation parity tests
    compare :func:`build_frame_schedule` against this frame for frame.
    """
    n = batch.n
    order = np.argsort(batch.inputs, kind="stable")
    counts = np.bincount(batch.inputs, minlength=n)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    voq_l: List[int] = []
    start_l: List[int] = []
    size_l: List[int] = []
    fakes_l: List[int] = []
    slot_l: List[int] = []
    for i in range(n):
        idx = order[offsets[i] : offsets[i + 1]]
        residue = (-i) % n
        cycles = (batch.slots[idx] - residue + n - 1) // n
        f_out, f_start, f_size, f_fakes, f_slot = _input_frames(
            n, residue, cycles, batch.outputs[idx], rule.make_picker(n)
        )
        voq_l.extend(i * n + j for j in f_out)
        start_l.extend(f_start)
        size_l.extend(f_size)
        fakes_l.extend(f_fakes)
        slot_l.extend(f_slot)
    return FrameSchedule(
        voq=np.asarray(voq_l, dtype=np.int64),
        start=np.asarray(start_l, dtype=np.int64),
        size=np.asarray(size_l, dtype=np.int64),
        fakes=np.asarray(fakes_l, dtype=np.int64),
        slot=np.asarray(slot_l, dtype=np.int64),
    )


def frame_membership(
    batch: ArrivalBatch, schedule: FrameSchedule
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map each packet to its frame: ``(member, assembled_slot, position)``.

    A frame covers a contiguous rank range of its VOQ (packets are taken
    oldest-first), so membership is one searchsorted over the composite
    ``(voq, start_rank)`` key.  ``member`` is False for packets never
    framed (PF leaves sub-threshold VOQ tails behind); ``assembled_slot``
    and ``position`` are meaningful only where ``member`` holds.
    """
    num_packets = len(batch)
    member = np.zeros(num_packets, dtype=bool)
    assembled = np.zeros(num_packets, dtype=np.int64)
    position = np.zeros(num_packets, dtype=np.int64)
    if num_packets == 0 or len(schedule) == 0:
        return member, assembled, position
    n = batch.n
    voq = batch.voqs
    order = stable_voq_argsort(voq, n)
    counts = np.bincount(voq, minlength=n * n)
    group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    rank = np.empty(num_packets, dtype=np.int64)
    rank[order] = np.arange(num_packets, dtype=np.int64) - group_starts[voq[order]]

    # Frames of one VOQ are appended in formation order, so their start
    # ranks ascend within a VOQ; a stable sort by VOQ yields a globally
    # sorted composite (voq, start) key.
    f_order = np.argsort(schedule.voq, kind="stable")
    big = np.int64(num_packets + 1)
    frame_key = schedule.voq[f_order] * big + schedule.start[f_order]
    packet_key = voq * big + rank
    at = np.searchsorted(frame_key, packet_key, side="right") - 1
    valid = at >= 0
    at = np.maximum(at, 0)
    f_voq = schedule.voq[f_order][at]
    f_start = schedule.start[f_order][at]
    f_size = schedule.size[f_order][at]
    member = valid & (f_voq == voq) & (rank < f_start + f_size)
    assembled = schedule.slot[f_order][at]
    position = rank - f_start
    return member, assembled, position


# ---------------------------------------------------------------------------
# Streaming (windowed-replay) frame formation
# ---------------------------------------------------------------------------


class FrameFormationStream:
    """Resumable frame formation across all inputs (and seed blocks).

    The windowed form of the array-stepped engine: one
    :class:`_LaneFormation` lane per (block, input); block ``b`` of a
    multi-seed replay owns VOQ ids ``b * n^2 + i * n + j``.  ``feed``
    absorbs one window of arrivals and forms every frame whose cycle
    boundary slot is strictly below the window's end (later cycles could
    still see this window's backlog *plus future arrivals*, so they must
    wait); ``finish`` runs the quiescence (drain) loop.
    """

    def __init__(self, n: int, num_blocks: int, rule: FormationRule) -> None:
        self.n = n
        self.num_blocks = num_blocks
        self._form = _make_formation(n, num_blocks, rule)

    def feed(
        self,
        blocks: np.ndarray,
        slots: np.ndarray,
        inputs: np.ndarray,
        outputs: np.ndarray,
        boundary: Optional[int],
    ) -> FrameSchedule:
        """Absorb one window's arrivals; form frames for cycles < boundary.

        ``boundary=None`` runs the drain instead: every remaining frame
        forms (the object engine's post-arrival quiescence loop).
        """
        n = self.n
        if len(blocks):
            lanes = blocks * n + inputs
            tags = arrival_tags(slots, self._form.residue[lanes], n)
            self._form.absorb(lanes, tags, outputs)
        if boundary is None:
            return self._form.run(None)
        limit = (boundary - self._form.residue + n - 1) // n
        return self._form.run(limit)

    def finish(self) -> FrameSchedule:
        """Form every remaining frame (the object engine's drain loop)."""
        return self._form.run(None)


class ReferenceFormationStream:
    """Scalar-reference counterpart of :class:`FrameFormationStream`.

    Test-only: one :class:`_InputFormation` per (block, input), advanced
    through the same feed/finish contract.  The streamed formation
    parity tests pin the array engine's windowed schedules against this.
    """

    def __init__(self, n: int, num_blocks: int, rule: FormationRule) -> None:
        self.n = n
        self.num_blocks = num_blocks
        self._states = [
            _InputFormation(n, (-i) % n, rule.make_picker(n))
            for _ in range(num_blocks)
            for i in range(n)
        ]

    def _collect(self, advance) -> FrameSchedule:
        n = self.n
        voq_l: List[int] = []
        start_l: List[int] = []
        size_l: List[int] = []
        fakes_l: List[int] = []
        slot_l: List[int] = []
        for b in range(self.num_blocks):
            for i in range(n):
                state = self._states[b * n + i]
                sink: Tuple[List[int], ...] = ([], [], [], [], [])
                advance(state, sink)
                f_out, f_start, f_size, f_fakes, f_slot = sink
                base = b * n * n + i * n
                voq_l.extend(base + j for j in f_out)
                start_l.extend(f_start)
                size_l.extend(f_size)
                fakes_l.extend(f_fakes)
                slot_l.extend(f_slot)
        return FrameSchedule(
            voq=np.asarray(voq_l, dtype=np.int64),
            start=np.asarray(start_l, dtype=np.int64),
            size=np.asarray(size_l, dtype=np.int64),
            fakes=np.asarray(fakes_l, dtype=np.int64),
            slot=np.asarray(slot_l, dtype=np.int64),
        )

    def feed(
        self,
        blocks: np.ndarray,
        slots: np.ndarray,
        inputs: np.ndarray,
        outputs: np.ndarray,
        boundary: Optional[int],
    ) -> FrameSchedule:
        """Absorb one window's arrivals; form frames for cycles < boundary."""
        n = self.n
        if len(blocks):
            key = blocks * n + inputs
            order = np.argsort(key, kind="stable")
            counts = np.bincount(key, minlength=self.num_blocks * n)
            offsets = np.concatenate(([0], np.cumsum(counts)))
            for k in range(self.num_blocks * n):
                idx = order[offsets[k] : offsets[k + 1]]
                if len(idx):
                    state = self._states[k]
                    residue = state.residue
                    cycles = (slots[idx] - residue + n - 1) // n
                    state.absorb(cycles, outputs[idx])
        if boundary is None:
            return self._collect(lambda state, sink: state.drain(sink))

        def advance(state: _InputFormation, sink) -> None:
            limit = (boundary - state.residue + n - 1) // n
            state.run(limit, sink)

        return self._collect(advance)

    def finish(self) -> FrameSchedule:
        """Form every remaining frame (the object engine's drain loop)."""
        return self._collect(lambda state, sink: state.drain(sink))


class FramedPacketBuffer:
    """Carried unframed packets, mapped to frames as they form.

    The streamed counterpart of :func:`frame_membership`: packets wait in
    per-VOQ rank order until a frame covers their rank (frames always
    consume a contiguous rank prefix), then leave with their frame's
    formation slot and their position inside it.  PF's sub-threshold VOQ
    tails simply stay buffered forever, exactly like the object engine's
    never-framed packets.
    """

    def __init__(self, num_voqs: int) -> None:
        self._num = num_voqs
        self._rank_next = np.zeros(num_voqs, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        self._buf = (empty, empty, empty, empty, empty)

    def pending(self) -> int:
        """Packets still waiting for a frame."""
        return len(self._buf[0])

    def feed(
        self,
        voqs: np.ndarray,
        slots: np.ndarray,
        seqs: np.ndarray,
        gidx: np.ndarray,
        schedule: FrameSchedule,
    ) -> Tuple[np.ndarray, ...]:
        """Add packets and frames; return the newly framed packets.

        Returns ``(voq, slot, seq, gidx, rank, assembled, position)``.
        """
        ranks = np.empty(len(voqs), dtype=np.int64)
        if len(voqs):
            order = stable_id_argsort(voqs, self._num)
            counts = np.bincount(voqs, minlength=self._num)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            ranks[order] = (
                np.arange(len(voqs), dtype=np.int64) - starts[voqs[order]]
            ) + self._rank_next[voqs[order]]
            self._rank_next += counts
        b_voq, b_rank, b_slot, b_seq, b_g = self._buf
        voq = np.concatenate([b_voq, voqs])
        rank = np.concatenate([b_rank, ranks])
        slot = np.concatenate([b_slot, slots])
        seq = np.concatenate([b_seq, seqs])
        g = np.concatenate([b_g, gidx])
        empty = np.empty(0, dtype=np.int64)
        if len(voq) == 0:
            return (empty,) * 7
        order = stable_id_argsort(voq, self._num)
        voq_s = voq[order]
        rank_s = rank[order]
        slot_s = slot[order]
        seq_s = seq[order]
        g_s = g[order]
        if len(schedule) == 0:
            self._buf = (voq_s, rank_s, slot_s, seq_s, g_s)
            return (empty,) * 7
        # Frames of one VOQ form in ascending start order, so a stable
        # sort by VOQ yields a sorted composite (voq, start) key.
        f_order = np.argsort(schedule.voq, kind="stable")
        f_voq = schedule.voq[f_order]
        f_start = schedule.start[f_order]
        f_size = schedule.size[f_order]
        f_slot = schedule.slot[f_order]
        big = np.int64(
            max(int(rank_s.max()), int(f_start.max())) + 2
        )
        at = np.searchsorted(f_voq * big + f_start, voq_s * big + rank_s,
                             side="right") - 1
        valid = at >= 0
        at = np.maximum(at, 0)
        member = (
            valid
            & (f_voq[at] == voq_s)
            & (rank_s < f_start[at] + f_size[at])
        )
        keep = ~member
        self._buf = (
            voq_s[keep], rank_s[keep], slot_s[keep], seq_s[keep], g_s[keep]
        )
        return (
            voq_s[member],
            slot_s[member],
            seq_s[member],
            g_s[member],
            rank_s[member],
            f_slot[at][member],
            (rank_s - f_start[at])[member],
        )
