"""Cycle-aligned frame formation shared by the PF and FOFF kernels.

PF and FOFF both serve their inputs *frame at a time*: an idle input may
start a new frame only at the slot fabric 1 connects it to intermediate
port 0 (``t ≡ -i (mod n)``, one opportunity per ``n``-slot cycle), and a
frame's ``k``-th packet then crosses to intermediate port ``k`` at slot
``start + k``.  Which frame starts is a deterministic function of the
input's VOQ occupancies at the cycle boundary (full frames first behind a
round-robin pointer; the padding / partial-frame fallback differs per
switch), and occupancies are arrivals-so-far minus packets already taken
— no feedback from the rest of the switch.  Frame formation is therefore
*sequential per input but exactly replayable*: one cheap decision per
cycle, everything downstream of it vectorized.

:func:`build_frame_schedule` runs that per-input, per-cycle recursion
(the only scalar loop in the PF/FOFF kernels — O(num_slots) iterations
total across inputs, each a handful of small-array NumPy ops) and
returns the complete frame schedule; :func:`frame_membership` maps every
packet to its frame with one composite searchsorted.

The formation loop runs past the arrival horizon until a cycle forms no
frame, mirroring the object engine's drain phase: with no new arrivals a
frameless cycle leaves the VOQ state (and the round-robin pointers)
untouched, so no later cycle could form one either — exactly the
quiescence the drain detects.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch, stable_voq_argsort

__all__ = [
    "FrameSchedule",
    "build_frame_schedule",
    "drain_horizon",
    "foff_picker",
    "frame_membership",
    "pf_picker",
]


def drain_horizon(batch: ArrivalBatch) -> int:
    """Last slot the object engine's drain phase steps (inclusive).

    :class:`~repro.sim.engine.SimulationEngine` drains for at most
    ``max(50 * n, num_slots)`` slots after the arrival stream ends;
    packets that would depart later stay in flight there, so the replay
    must discard their departures too.  (The drain's other stop — ``4n``
    departure-free slots — only fires at quiescence for the frame-at-a-
    time switches: while any backlog remains a frame forms every ``n``-slot
    cycle and departs within two fabric revolutions.)
    """
    return batch.num_slots + max(50 * batch.n, batch.num_slots) - 1

#: One cycle's frame decision: ``(voq_output, real_packets, fake_cells)``
#: or None when the input stays idle this cycle.
Pick = Optional[Tuple[int, int, int]]
#: Per-input frame chooser: ``pick(avail, total, full_count)`` consumes
#: the VOQ occupancy list plus its maintained aggregates (total backlog,
#: number of full-frame VOQs), may mutate its round-robin pointers, and
#: returns the cycle's :data:`Pick`.  Plain Python scalars throughout —
#: this runs once per cycle inside the only scalar loop of the PF/FOFF
#: kernels, where small-array NumPy overhead would dominate the replay.
Picker = Callable[[List[int], int, int], Pick]


class FrameSchedule(NamedTuple):
    """Every frame formed during a run, across all inputs.

    Parallel arrays, one entry per frame: the flat VOQ id whose packets
    fill it, the first VOQ rank it covers, how many real packets it took,
    how many fake cells pad it (PF only), and the cycle-start slot at
    which it began transmitting (packet ``k`` crosses at ``slot + k`` to
    intermediate port ``k``).
    """

    voq: np.ndarray
    start: np.ndarray
    size: np.ndarray
    fakes: np.ndarray
    slot: np.ndarray

    def __len__(self) -> int:
        return len(self.voq)


def pf_picker(n: int, threshold: int) -> Picker:
    """The Padded Frames frame chooser (full frames RR, else pad the
    longest VOQ of at least ``threshold`` packets up to a full frame)."""
    state = {"full_rr": 0}

    def pick(avail: List[int], total: int, full_count: int) -> Pick:
        if full_count:
            pointer = state["full_rr"]
            for offset in range(n):
                j = pointer + offset
                if j >= n:
                    j -= n
                if avail[j] >= n:
                    state["full_rr"] = j + 1 if j + 1 < n else 0
                    return j, n, 0
        if total < threshold:
            return None
        # VoqBank.longest: strictly longest, ties to the lowest index.
        best, longest = 0, -1
        for j in range(n):
            if avail[j] > best:
                best, longest = avail[j], j
        if longest < 0 or best < threshold:
            return None
        return longest, best, n - best

    return pick


def foff_picker(n: int) -> Picker:
    """The FOFF frame chooser (full frames RR first, else the next
    nonempty VOQ behind a second round-robin pointer, taken whole)."""
    state = {"full_rr": 0, "partial_rr": 0}

    def pick(avail: List[int], total: int, full_count: int) -> Pick:
        if total == 0:
            return None
        if full_count:
            pointer = state["full_rr"]
            for offset in range(n):
                j = pointer + offset
                if j >= n:
                    j -= n
                if avail[j] >= n:
                    state["full_rr"] = j + 1 if j + 1 < n else 0
                    return j, n, 0
        pointer = state["partial_rr"]
        for offset in range(n):
            j = pointer + offset
            if j >= n:
                j -= n
            if avail[j]:
                state["partial_rr"] = j + 1 if j + 1 < n else 0
                return j, avail[j], 0
        raise AssertionError("nonzero backlog with no nonempty VOQ")

    return pick


def _input_frames(
    n: int,
    residue: int,
    cycles: np.ndarray,
    outs: np.ndarray,
    pick: Picker,
) -> Tuple[List[int], List[int], List[int], List[int], List[int]]:
    """Replay one input's frame decisions over its cycle boundaries.

    ``cycles``/``outs`` are the input's arrivals in acceptance order,
    tagged with the first cycle index whose start slot is >= the arrival
    slot (arrivals in the boundary slot itself are visible to that
    cycle's pick — the slot protocol accepts before serving).

    This is the only scalar loop in the PF/FOFF kernels (one iteration
    per fabric cycle, ``num_slots`` iterations total across the inputs),
    so it runs on plain Python ints with incrementally maintained
    aggregates — per-cycle NumPy calls on length-``n`` arrays would cost
    more than the whole vectorized replay downstream.
    """
    last_cycle = int(cycles[-1]) if len(cycles) else -1
    arrival_cycle = cycles.tolist()
    arrival_out = outs.tolist()
    num_arrivals = len(arrival_cycle)
    at = 0
    avail = [0] * n
    taken = [0] * n
    total = 0
    full_count = 0
    f_out: List[int] = []
    f_start: List[int] = []
    f_size: List[int] = []
    f_fakes: List[int] = []
    f_slot: List[int] = []
    c = 0
    while True:
        while at < num_arrivals and arrival_cycle[at] == c:
            j = arrival_out[at]
            at += 1
            avail[j] += 1
            total += 1
            if avail[j] == n:
                full_count += 1
        picked = pick(avail, total, full_count)
        if picked is not None:
            j, k, fakes = picked
            f_out.append(j)
            f_start.append(taken[j])
            f_size.append(k)
            f_fakes.append(fakes)
            f_slot.append(residue + c * n)
            taken[j] += k
            before = avail[j]
            avail[j] = before - k
            total -= k
            if before >= n and avail[j] < n:
                full_count -= 1
        elif c >= last_cycle:
            # No frame and no arrivals to come: the pick is a pure
            # function of (avail, pointers), so every later cycle would
            # decline too — the switch is quiescent.
            break
        c += 1
    return f_out, f_start, f_size, f_fakes, f_slot


def build_frame_schedule(
    batch: ArrivalBatch, make_picker: Callable[[int], Picker]
) -> FrameSchedule:
    """Run every input's frame-formation recursion; collect the schedule."""
    n = batch.n
    order = np.argsort(batch.inputs, kind="stable")
    counts = np.bincount(batch.inputs, minlength=n)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    voq_l: List[int] = []
    start_l: List[int] = []
    size_l: List[int] = []
    fakes_l: List[int] = []
    slot_l: List[int] = []
    for i in range(n):
        idx = order[offsets[i] : offsets[i + 1]]
        residue = (-i) % n
        # First cycle whose boundary slot (residue + c*n) is >= the
        # arrival slot; never negative since slots >= 0 > residue - n.
        cycles = (batch.slots[idx] - residue + n - 1) // n
        f_out, f_start, f_size, f_fakes, f_slot = _input_frames(
            n, residue, cycles, batch.outputs[idx], make_picker(i)
        )
        voq_l.extend(i * n + j for j in f_out)
        start_l.extend(f_start)
        size_l.extend(f_size)
        fakes_l.extend(f_fakes)
        slot_l.extend(f_slot)
    return FrameSchedule(
        voq=np.asarray(voq_l, dtype=np.int64),
        start=np.asarray(start_l, dtype=np.int64),
        size=np.asarray(size_l, dtype=np.int64),
        fakes=np.asarray(fakes_l, dtype=np.int64),
        slot=np.asarray(slot_l, dtype=np.int64),
    )


def frame_membership(
    batch: ArrivalBatch, schedule: FrameSchedule
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map each packet to its frame: ``(member, assembled_slot, position)``.

    A frame covers a contiguous rank range of its VOQ (packets are taken
    oldest-first), so membership is one searchsorted over the composite
    ``(voq, start_rank)`` key.  ``member`` is False for packets never
    framed (PF leaves sub-threshold VOQ tails behind); ``assembled_slot``
    and ``position`` are meaningful only where ``member`` holds.
    """
    num_packets = len(batch)
    member = np.zeros(num_packets, dtype=bool)
    assembled = np.zeros(num_packets, dtype=np.int64)
    position = np.zeros(num_packets, dtype=np.int64)
    if num_packets == 0 or len(schedule) == 0:
        return member, assembled, position
    n = batch.n
    voq = batch.voqs
    order = stable_voq_argsort(voq, n)
    counts = np.bincount(voq, minlength=n * n)
    group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    rank = np.empty(num_packets, dtype=np.int64)
    rank[order] = np.arange(num_packets, dtype=np.int64) - group_starts[voq[order]]

    # Frames of one VOQ are appended in formation order, so their start
    # ranks ascend within a VOQ; a stable sort by VOQ yields a globally
    # sorted composite (voq, start) key.
    f_order = np.argsort(schedule.voq, kind="stable")
    big = np.int64(num_packets + 1)
    frame_key = schedule.voq[f_order] * big + schedule.start[f_order]
    packet_key = voq * big + rank
    at = np.searchsorted(frame_key, packet_key, side="right") - 1
    valid = at >= 0
    at = np.maximum(at, 0)
    f_voq = schedule.voq[f_order][at]
    f_start = schedule.start[f_order][at]
    f_size = schedule.size[f_order][at]
    member = valid & (f_voq == voq) & (rank < f_start + f_size)
    assembled = schedule.slot[f_order][at]
    position = rank - f_start
    return member, assembled, position
