"""Vectorized kernel: Full Ordered Frames First (paper §2.2, ref [11]).

FOFF's input side is UFS with a partial-frame fallback (no padding, no
idling): frame formation replays cycle-by-cycle (:mod:`.frames`), the
frame cells cross to intermediate ports ``0..k-1`` and the per-output
intermediate FIFOs replay as polled queues, exactly as for UFS.  What is
new is the *resequencer replay*: partial frames break the equal-queue
invariant, so packets reach their output out of order and a per-output
resequencing buffer releases them in per-VOQ sequence order.

The resequencer is a pure function of the wire-arrival schedule, so it
replays as a departure-time sort per flow: a packet is released the
moment it *and every VOQ predecessor* has arrived at the output —

    departure(p) = max(wire_arrival(q) for q in VOQ, seq(q) <= seq(p))

which is one segmented running maximum over the per-VOQ wire arrivals in
sequence order.  The oracle's observation order within a slot (releases
happen as fabric 2's intermediate ports are scanned in order, each
trigger releasing its buffered successors in sequence order) is
reconstructed as a global observation rank and stored in ``wire``; the
peak resequencer occupancy the paper's O(N^2) claim is checked against
falls out of the same arrays as a segmented prefix sum.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch
from .base import Departures, composite_argsort, mid_residues, replay_polled_queues
from .frames import (
    build_frame_schedule,
    drain_horizon,
    foff_picker,
    frame_membership,
)

__all__ = ["departures"]


def _resequencer_peak(
    outs: np.ndarray,
    voq: np.ndarray,
    wire_slot: np.ndarray,
    departure: np.ndarray,
    cut: int,
) -> int:
    """Peak occupancy across the per-output resequencing buffers.

    Each output receives at most one wire packet per slot, so its buffer
    occupancy changes at most once per slot: +1 when the packet is held
    (some predecessor still in flight), else minus the buffered packets
    its arrival releases.  The peak is recorded at hold instants, after
    the increment — exactly :class:`~repro.switching.resequencer.
    Resequencer`'s accounting.
    """
    if len(outs) == 0:
        return 0
    held = departure > wire_slot
    # Release-group sizes: all packets of a VOQ sharing a departure slot
    # are released together by the one packet that arrived last.
    grouping = composite_argsort(voq, departure)
    g_voq = voq[grouping]
    g_dep = departure[grouping]
    new_group = np.r_[
        True, (g_voq[1:] != g_voq[:-1]) | (g_dep[1:] != g_dep[:-1])
    ]
    group_id = np.cumsum(new_group) - 1
    group_size = np.bincount(group_id)[group_id]
    sizes = np.empty(len(outs), dtype=np.int64)
    sizes[grouping] = group_size
    delta = np.where(held, 1, -(sizes - 1))

    # Wire arrivals past the drain horizon never reach the output in the
    # object engine; their occupancy events do not exist there.
    live = np.flatnonzero(wire_slot <= cut)
    if live.size == 0:
        return 0
    events = live[composite_argsort(outs[live], wire_slot[live])]
    delta_e = delta[events]
    held_e = held[events]
    out_e = outs[events]
    running = np.cumsum(delta_e)
    starts = np.r_[True, out_e[1:] != out_e[:-1]]
    # Per-output prefix sums: subtract the running total just before each
    # output's first event (forward-filled via a running index max).
    start_at = np.maximum.accumulate(
        np.where(starts, np.arange(len(events)), -1)
    )
    before = np.r_[0, running[:-1]]
    occupancy = running - before[start_at]
    if not held_e.any():
        return 0
    return int(occupancy[held_e].max())


def departures(
    batch: ArrivalBatch, matrix: np.ndarray, seed: int
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay the FOFF switch, resequencing included."""
    n = batch.n
    if len(batch) == 0:
        empty = np.empty(0, dtype=np.int64)
        dep = Departures(
            voq=empty, seq=empty, arrival=empty, departure=empty,
            wire=empty, assembled=empty, tx=empty,
        )
        return dep, {"max_resequencer": 0.0}

    schedule = build_frame_schedule(batch, lambda i: foff_picker(n))
    member, assembled, position = frame_membership(batch, schedule)
    # FOFF never leaves a packet behind: partial frames sweep every
    # nonempty VOQ, so the whole batch is framed.
    assert bool(member.all()), "FOFF frame formation left packets unframed"

    tx = assembled + position
    mid = position
    wire_slot = replay_polled_queues(
        mid * n + batch.outputs,
        np.zeros(len(tx), dtype=np.int64),
        tx + 1,
        tx,
        mid_residues(n),
        n,
    )

    # Resequencer replay: per VOQ in sequence order, a packet departs at
    # the latest wire arrival among itself and its predecessors.
    rank = batch.seqs - _voq_first_seq(batch)
    order = composite_argsort(batch.voqs, rank)
    voq_s = batch.voqs[order]
    wire_s = wire_slot[order]
    offset = voq_s * (np.int64(wire_s.max()) + 1)
    departure_s = np.maximum.accumulate(wire_s + offset) - offset
    # The trigger (the predecessor whose arrival releases the packet) is
    # the running argmax; its intermediate port is the oracle's
    # within-slot observation key.
    is_trigger = wire_s == departure_s
    trigger_at = np.maximum.accumulate(
        np.where(is_trigger, np.arange(len(order)), -1)
    )
    trigger_mid_s = mid[order][trigger_at]
    departure = np.empty_like(wire_slot)
    trigger_mid = np.empty_like(mid)
    departure[order] = departure_s
    trigger_mid[order] = trigger_mid_s

    # The object engine's drain phase is finite: packets released after
    # its horizon stay in the resequencers there, unobserved.
    cut = drain_horizon(batch)
    released = departure <= cut

    # Observation order: departure slot, then the trigger's intermediate
    # port (fabric 2 scans mid ports in order), then sequence within a
    # release group.  Stored as a global rank so (departure, wire) is a
    # unique sort key downstream.  (departure, trigger_mid) packs into
    # one key — trigger_mid < n — and composite_argsort handles the
    # rank tie-break, falling back to a stable lexsort on overflow.
    observation = composite_argsort(
        departure[released] * n + trigger_mid[released], rank[released]
    )
    wire = np.empty(len(observation), dtype=np.int64)
    wire[observation] = np.arange(len(observation), dtype=np.int64)

    peak = _resequencer_peak(
        batch.outputs, batch.voqs, wire_slot, departure, cut
    )
    dep = Departures(
        voq=batch.voqs[released],
        seq=batch.seqs[released],
        arrival=batch.slots[released],
        departure=departure[released],
        wire=wire,
        assembled=assembled[released],
        tx=tx[released],
        wire_is_rank=True,
    )
    return dep, {"max_resequencer": float(peak)}


def _voq_first_seq(batch: ArrivalBatch) -> np.ndarray:
    """Each packet's VOQ base sequence number (0 for a fresh generator,
    nonzero when a batch continues an earlier draw's numbering)."""
    n = batch.n
    first = np.full(n * n, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(first, batch.voqs, batch.seqs)
    return first[batch.voqs]
