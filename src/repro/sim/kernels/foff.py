"""Vectorized kernel: Full Ordered Frames First (paper §2.2, ref [11]).

FOFF's input side is UFS with a partial-frame fallback (no padding, no
idling): frame formation replays cycle-by-cycle (:mod:`.frames`), the
frame cells cross to intermediate ports ``0..k-1`` and the per-output
intermediate FIFOs replay as polled queues, exactly as for UFS.  What is
new is the *resequencer replay*: partial frames break the equal-queue
invariant, so packets reach their output out of order and a per-output
resequencing buffer releases them in per-VOQ sequence order.

The resequencer is a pure function of the wire-arrival schedule, so it
replays as a departure-time sort per flow: a packet is released the
moment it *and every VOQ predecessor* has arrived at the output —

    departure(p) = max(wire_arrival(q) for q in VOQ, seq(q) <= seq(p))

which is one segmented running maximum over the per-VOQ wire arrivals in
sequence order.  The oracle's observation order within a slot (releases
happen as fabric 2's intermediate ports are scanned in order, each
trigger releasing its buffered successors in sequence order) is
reconstructed as a global observation rank and stored in ``wire``; the
peak resequencer occupancy the paper's O(N^2) claim is checked against
falls out of the same arrays as a segmented prefix sum.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch
from .base import (
    Departures,
    PolledQueueBank,
    WindowStacker,
    composite_argsort,
    mid_residues,
    replay_polled_queues,
    stable_id_argsort,
)
from .frames import (
    FrameFormationStream,
    FramedPacketBuffer,
    build_frame_schedule,
    drain_cut,
    drain_horizon,
    foff_rule,
    frame_membership,
)

__all__ = ["departures", "stream"]


def _resequencer_peak(
    outs: np.ndarray,
    voq: np.ndarray,
    wire_slot: np.ndarray,
    departure: np.ndarray,
    cut: int,
    grouping: np.ndarray,
) -> int:
    """Peak occupancy across the per-output resequencing buffers.

    Each output receives at most one wire packet per slot, so its buffer
    occupancy changes at most once per slot: +1 when the packet is held
    (some predecessor still in flight), else minus the buffered packets
    its arrival releases.  The peak is recorded at hold instants, after
    the increment — exactly :class:`~repro.switching.resequencer.
    Resequencer`'s accounting.

    ``grouping`` is any ``(voq, departure)``-sorted order; the caller
    passes its ``(voq, rank)`` sort, which qualifies because departures
    are a per-VOQ running max over rank — no second full-size argsort.
    """
    if len(outs) == 0:
        return 0
    held = departure > wire_slot
    # Release-group sizes: all packets of a VOQ sharing a departure slot
    # are released together by the one packet that arrived last.
    g_voq = voq[grouping]
    g_dep = departure[grouping]
    new_group = np.r_[
        True, (g_voq[1:] != g_voq[:-1]) | (g_dep[1:] != g_dep[:-1])
    ]
    group_id = np.cumsum(new_group) - 1
    group_size = np.bincount(group_id)[group_id]
    sizes = np.empty(len(outs), dtype=np.int64)
    sizes[grouping] = group_size
    delta = np.where(held, 1, -(sizes - 1))

    # Wire arrivals past the drain horizon never reach the output in the
    # object engine; their occupancy events do not exist there.
    live = np.flatnonzero(wire_slot <= cut)
    if live.size == 0:
        return 0
    events = live[composite_argsort(outs[live], wire_slot[live])]
    delta_e = delta[events]
    held_e = held[events]
    out_e = outs[events]
    running = np.cumsum(delta_e)
    starts = np.r_[True, out_e[1:] != out_e[:-1]]
    # Per-output prefix sums: subtract the running total just before each
    # output's first event (forward-filled via a running index max).
    start_at = np.maximum.accumulate(
        np.where(starts, np.arange(len(events)), -1)
    )
    before = np.r_[0, running[:-1]]
    occupancy = running - before[start_at]
    if not held_e.any():
        return 0
    return int(occupancy[held_e].max())


def departures(
    batch: ArrivalBatch, matrix: np.ndarray, seed: int
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay the FOFF switch, resequencing included."""
    n = batch.n
    if len(batch) == 0:
        empty = np.empty(0, dtype=np.int64)
        dep = Departures(
            voq=empty, seq=empty, arrival=empty, departure=empty,
            wire=empty, assembled=empty, tx=empty,
        )
        return dep, {"max_resequencer": 0.0}

    schedule = build_frame_schedule(batch, foff_rule())
    member, assembled, position = frame_membership(batch, schedule)
    # FOFF never leaves a packet behind: partial frames sweep every
    # nonempty VOQ, so the whole batch is framed.
    assert bool(member.all()), "FOFF frame formation left packets unframed"

    tx = assembled + position
    mid = position
    wire_slot = replay_polled_queues(
        mid * n + batch.outputs,
        np.zeros(len(tx), dtype=np.int64),
        tx + 1,
        tx,
        mid_residues(n),
        n,
    )

    # Resequencer replay: per VOQ in sequence order, a packet departs at
    # the latest wire arrival among itself and its predecessors.
    rank = batch.seqs - _voq_first_seq(batch)
    order = composite_argsort(batch.voqs, rank)
    voq_s = batch.voqs[order]
    wire_s = wire_slot[order]
    offset = voq_s * (np.int64(wire_s.max()) + 1)
    departure_s = np.maximum.accumulate(wire_s + offset) - offset
    # The trigger (the predecessor whose arrival releases the packet) is
    # the running argmax; its intermediate port is the oracle's
    # within-slot observation key.
    is_trigger = wire_s == departure_s
    trigger_at = np.maximum.accumulate(
        np.where(is_trigger, np.arange(len(order)), -1)
    )
    trigger_mid_s = mid[order][trigger_at]
    departure = np.empty_like(wire_slot)
    trigger_mid = np.empty_like(mid)
    departure[order] = departure_s
    trigger_mid[order] = trigger_mid_s

    # The object engine's drain phase is finite: packets released after
    # its horizon stay in the resequencers there, unobserved.
    cut = drain_horizon(batch)
    released = departure <= cut

    # Observation order: departure slot, then the trigger's intermediate
    # port (fabric 2 scans mid ports in order), then sequence within a
    # release group.  Stored as a global rank so (departure, wire) is a
    # unique sort key downstream.  (departure, trigger_mid) packs into
    # one key — trigger_mid < n — and composite_argsort handles the
    # rank tie-break, falling back to a stable lexsort on overflow.
    observation = composite_argsort(
        departure[released] * n + trigger_mid[released], rank[released]
    )
    wire = np.empty(len(observation), dtype=np.int64)
    wire[observation] = np.arange(len(observation), dtype=np.int64)

    peak = _resequencer_peak(
        batch.outputs, batch.voqs, wire_slot, departure, cut, order
    )
    dep = Departures(
        voq=batch.voqs[released],
        seq=batch.seqs[released],
        arrival=batch.slots[released],
        departure=departure[released],
        wire=wire,
        assembled=assembled[released],
        tx=tx[released],
        wire_is_rank=True,
    )
    return dep, {"max_resequencer": float(peak)}


def _voq_first_seq(batch: ArrivalBatch) -> np.ndarray:
    """Each packet's VOQ base sequence number (0 for a fresh generator,
    nonzero when a batch continues an earlier draw's numbering).

    Sequence numbers ascend per VOQ in batch order, so the minimum is
    each VOQ's *first* occurrence: a reversed scatter assignment (last
    write wins) lands it without a slow ``np.minimum.at`` pass.
    """
    n = batch.n
    first = np.zeros(n * n, dtype=np.int64)
    first[batch.voqs[::-1]] = batch.seqs[::-1]
    return first[batch.voqs]


class _FoffStream:
    """Windowed (and seed-stacked) replay of the FOFF switch.

    The input side streams like PF without padding; the new carried
    state is the in-flight resequencer replay: per VOQ, the next rank
    awaiting release, the running max wire arrival among processed
    predecessors (with the intermediate port of its last achiever — the
    release trigger), a buffer of wire-arrived packets still missing a
    predecessor, and the per-output resequencer occupancies feeding the
    ``max_resequencer`` extra.
    """

    def __init__(self, matrix: np.ndarray, seeds, total_slots: int) -> None:
        n = matrix.shape[0]
        self.n = n
        self.num_blocks = len(seeds)
        num_voqs = self.num_blocks * n * n
        self._stacker = WindowStacker(self.num_blocks)
        self._formation = FrameFormationStream(
            n, self.num_blocks, foff_rule()
        )
        self._packets = FramedPacketBuffer(num_voqs)
        self._stage2 = PolledQueueBank(
            np.tile(mid_residues(n), self.num_blocks), n
        )
        self._cut = drain_cut(total_slots, n)
        # Resequencer replay state.
        self._next_rank = np.zeros(num_voqs, dtype=np.int64)
        self._run_max = np.full(num_voqs, -1, dtype=np.int64)
        self._trig_mid = np.zeros(num_voqs, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        # Wire-arrived packets whose release awaits a predecessor:
        # (voq_x, rank, wire, mid, seq, slot, assembled, tx).
        self._held = (empty,) * 8
        # Per-block observation-rank counters, per-(block, output)
        # resequencer occupancies, per-block peaks.
        self._obs_next = np.zeros(self.num_blocks, dtype=np.int64)
        self._occupancy = np.zeros(self.num_blocks * n, dtype=np.int64)
        self._peak = np.zeros(self.num_blocks, dtype=np.int64)

    def _resequence(self, new):
        """Absorb newly wire-arrived packets; release what is now in order.

        Returns the released packets' arrays plus their departures and
        trigger mids, and the occupancy delta events of this round.
        """
        n = self.n
        voq, rank, wire, mid, seq, slot, assembled, tx = tuple(
            np.concatenate([old, fresh])
            for old, fresh in zip(self._held, new)
        )
        new_count = len(new[0])
        is_new = np.zeros(len(voq), dtype=bool)
        is_new[len(voq) - new_count :] = True
        if len(voq) == 0:
            empty = np.empty(0, dtype=np.int64)
            return (empty,) * 11 + (empty, empty, empty)
        order = composite_argsort(voq, rank)
        voq, rank, wire, mid, seq, slot, assembled, tx, is_new = (
            voq[order], rank[order], wire[order], mid[order], seq[order],
            slot[order], assembled[order], tx[order], is_new[order],
        )
        is_start = np.r_[True, voq[1:] != voq[:-1]]
        seg = np.cumsum(is_start) - 1
        seg_first = np.flatnonzero(is_start)
        within = np.arange(len(voq), dtype=np.int64) - seg_first[seg]
        # A packet is releasable iff its rank closes the gap to the VOQ's
        # next expected rank — ranks are unique per VOQ, so the equality
        # test selects exactly the contiguous releasable prefix.
        proc = rank == self._next_rank[voq] + within
        keep = ~proc
        held_new = is_new & keep  # still-buffered new arrivals: held +1
        held_events = (voq[held_new], wire[held_new], mid[held_new])
        self._held = (
            voq[keep], rank[keep], wire[keep], mid[keep], seq[keep],
            slot[keep], assembled[keep], tx[keep],
        )
        voq_p, rank_p, wire_p, mid_p, seq_p, slot_p, asm_p, tx_p, new_p = (
            voq[proc], rank[proc], wire[proc], mid[proc], seq[proc],
            slot[proc], assembled[proc], tx[proc], is_new[proc],
        )
        if len(voq_p) == 0:
            empty = np.empty(0, dtype=np.int64)
            return (empty,) * 11 + held_events
        # Per-VOQ running max of wire arrivals, seeded with the carried
        # max: departure = latest wire among self and predecessors.
        p_start = np.r_[True, voq_p[1:] != voq_p[:-1]]
        p_seg = np.cumsum(p_start) - 1
        p_first = np.flatnonzero(p_start)
        p_bounds = np.flatnonzero(np.r_[p_start, True])
        p_last = p_bounds[1:] - 1
        big = np.int64(int(wire_p.max()) + 1)
        run = np.maximum.accumulate(wire_p + voq_p * big) - voq_p * big
        departure = np.maximum(run, self._run_max[voq_p])
        # The trigger (the packet whose arrival achieves the running
        # max) carries the observation tie-break mid; fall back to the
        # carried trigger when this round's prefix never beats the max.
        is_trig = wire_p == departure
        cand = np.where(is_trig, np.arange(len(voq_p), dtype=np.int64), -1)
        ff = np.maximum.accumulate(cand)
        in_seg = ff >= p_first[p_seg]
        t_mid = np.where(
            in_seg, mid_p[np.maximum(ff, 0)], self._trig_mid[voq_p]
        )
        # Update the carried per-VOQ state from each segment's tail.
        v_last = voq_p[p_last]
        self._run_max[v_last] = departure[p_last]
        self._trig_mid[v_last] = t_mid[p_last]
        self._next_rank[v_last] = rank_p[p_last] + 1
        return (
            voq_p, rank_p, wire_p, mid_p, seq_p, slot_p, asm_p, tx_p,
            departure, t_mid, new_p,
        ) + held_events

    def _occupancy_events(self, released, held_events, final: bool):
        """Feed this round's resequencer-buffer deltas; update the peaks.

        Mirrors the monolithic :func:`_resequencer_peak` accounting —
        exactly one event per packet, at its wire-arrival slot: +1 for a
        held arrival (peak recorded after the increment), minus the
        released predecessors at each release trigger.  Released packets
        that were buffered in an *earlier* round already emitted their
        +1 back then and contribute nothing now.
        """
        n = self.n
        (voq_p, rank_p, wire_p, mid_p, seq_p, slot_p, asm_p, tx_p,
         departure, t_mid, new_p) = released
        h_voq, h_wire, h_mid = held_events
        # Release-group sizes: packets of a VOQ sharing a departure slot
        # are released together by the trigger (the not-held packet).
        held_p = departure > wire_p
        if len(voq_p):
            g_start = np.r_[
                True,
                (voq_p[1:] != voq_p[:-1]) | (departure[1:] != departure[:-1]),
            ]
            g_id = np.cumsum(g_start) - 1
            g_size = np.bincount(g_id)[g_id]
            delta_p = np.where(held_p, 1, -(g_size - 1))
        else:
            delta_p = np.empty(0, dtype=np.int64)
        # Event per packet at wire arrival: triggers (always newly
        # arrived) and newly arrived held packets; previously buffered
        # released packets already counted.
        emit = ~held_p | new_p.astype(bool)
        voq_e = voq_p[emit]
        out = np.concatenate([voq_e % n, h_voq % n])
        block = np.concatenate([voq_e, h_voq]) // (n * n)
        wire = np.concatenate([wire_p[emit], h_wire])
        delta = np.concatenate(
            [delta_p[emit], np.ones(len(h_voq), dtype=np.int64)]
        )
        held = np.concatenate([held_p[emit], np.ones(len(h_voq), dtype=bool)])
        if final:
            # Wire arrivals past the drain horizon never reach the
            # output in the object engine; their events do not exist.
            live = wire <= self._cut
            out, block, wire, delta, held = (
                out[live], block[live], wire[live], delta[live], held[live]
            )
        if len(out) == 0:
            return
        out_x = block * n + out
        order = composite_argsort(out_x, wire)
        out_x, delta, held, block = (
            out_x[order], delta[order], held[order], block[order]
        )
        running = np.cumsum(delta)
        starts = np.r_[True, out_x[1:] != out_x[:-1]]
        seg = np.cumsum(starts) - 1
        seg_first = np.flatnonzero(starts)
        before = np.r_[0, running[:-1]]
        occupancy = (
            self._occupancy[out_x]
            + running
            - before[seg_first[seg]]
        )
        bounds = np.flatnonzero(np.r_[starts, True])
        last = bounds[1:] - 1
        self._occupancy[out_x[last]] = occupancy[last]
        if held.any():
            np.maximum.at(self._peak, block[held], occupancy[held])

    def _cut_released(self, released, final: bool):
        """The released packets an emit may observe: past the object
        engine's finite drain horizon, packets stay in the resequencers
        there, unobserved.  Shared by both emit paths so the per-seed
        and stacked records can never diverge on the cut."""
        (voq_p, rank_p, wire_p, mid_p, seq_p, slot_p, asm_p, tx_p,
         departure, t_mid, new_p) = released
        if final:
            ok = departure <= self._cut
            (voq_p, rank_p, seq_p, slot_p, asm_p, tx_p, departure, t_mid) = (
                voq_p[ok], rank_p[ok], seq_p[ok], slot_p[ok], asm_p[ok],
                tx_p[ok], departure[ok], t_mid[ok],
            )
        return voq_p, rank_p, seq_p, slot_p, asm_p, tx_p, departure, t_mid

    def _emit_stacked(self, released, final: bool):
        """One seed-extended Departures record with per-block observation
        ranks (the stacked metrics fold compares ranks only within a
        block, so a block-major composite sort assigns them in one pass).
        """
        n = self.n
        (voq_p, rank_p, seq_p, slot_p, asm_p, tx_p, departure, t_mid) = (
            self._cut_released(released, final)
        )
        block = voq_p // (n * n)
        observation = composite_argsort(
            (block * np.int64(self._cut + 2) + departure) * n + t_mid, rank_p
        )
        counts = np.bincount(block, minlength=self.num_blocks)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        sorted_block = block[observation]
        within = (
            np.arange(len(observation), dtype=np.int64)
            - starts[sorted_block]
        )
        wire = np.empty(len(observation), dtype=np.int64)
        wire[observation] = self._obs_next[sorted_block] + within
        self._obs_next += counts
        return Departures(
            voq=voq_p,
            seq=seq_p,
            arrival=slot_p,
            departure=departure,
            wire=wire,
            assembled=asm_p,
            tx=tx_p,
            wire_is_rank=True,
        )

    def _emit(self, released, final: bool):
        """Build per-block Departures with global observation ranks.

        One stable sort by seed block plus contiguous slices (the
        :func:`~repro.sim.kernels.sprinklers._split_blocks` pattern)
        instead of one boolean-mask pass per seed; within-block order is
        preserved, so the per-block records are unchanged.
        """
        n = self.n
        (voq_p, rank_p, seq_p, slot_p, asm_p, tx_p, departure, t_mid) = (
            self._cut_released(released, final)
        )
        block = voq_p // (n * n)
        order = stable_id_argsort(block, self.num_blocks)
        voq_s = voq_p[order] % (n * n)
        seq_s = seq_p[order]
        slot_s = slot_p[order]
        asm_s = asm_p[order]
        tx_s = tx_p[order]
        dep_s = departure[order]
        mid_s = t_mid[order]
        rank_s = rank_p[order]
        bounds = np.concatenate((
            [0], np.cumsum(np.bincount(block, minlength=self.num_blocks)),
        ))
        deps = []
        for b in range(self.num_blocks):
            lo, hi = bounds[b], bounds[b + 1]
            observation = composite_argsort(
                dep_s[lo:hi] * n + mid_s[lo:hi], rank_s[lo:hi]
            )
            wire = np.empty(len(observation), dtype=np.int64)
            wire[observation] = self._obs_next[b] + np.arange(
                len(observation), dtype=np.int64
            )
            self._obs_next[b] += len(observation)
            deps.append(
                Departures(
                    voq=voq_s[lo:hi],
                    seq=seq_s[lo:hi],
                    arrival=slot_s[lo:hi],
                    departure=dep_s[lo:hi],
                    wire=wire,
                    assembled=asm_s[lo:hi],
                    tx=tx_s[lo:hi],
                    wire_is_rank=True,
                )
            )
        return deps

    def _advance(self, schedule, framed, boundary, stacked: bool = False):
        n = self.n
        voq_x, slot, seq, gidx, rank, assembled, position = framed
        tx = assembled + position
        block = voq_x // (n * n)
        out = voq_x % n
        wire, tx, payload = self._stage2.feed(
            block * n * n + position * n + out,
            np.zeros(len(tx), dtype=np.int64),
            tx + 1,
            tx,
            (voq_x, rank, position, seq, slot, assembled),
            boundary,
        )
        voq_x, rank, position, seq, slot, assembled = payload
        arrived = (voq_x, rank, wire, position, seq, slot, assembled, tx)
        result = self._resequence(arrived)
        released, held_events = result[:11], result[11:]
        final = boundary is None
        self._occupancy_events(released, held_events, final)
        if stacked:
            return self._emit_stacked(released, final)
        return self._emit(released, final)

    def _round(self, windows, final: bool, stacked: bool = False):
        n = self.n
        boundary = None
        if windows is not None:
            block, slots, inputs, outputs, seqs, gidx, end = (
                self._stacker.stack(windows)
            )
            if not final:
                boundary = end
            voq_x = block * n * n + inputs * n + outputs
        else:
            block = slots = inputs = outputs = seqs = gidx = voq_x = (
                np.empty(0, dtype=np.int64)
            )
        schedule = self._formation.feed(
            block, slots, inputs, outputs, boundary
        )
        framed = self._packets.feed(voq_x, slots, seqs, gidx, schedule)
        return self._advance(schedule, framed, boundary, stacked=stacked)

    def feed(self, windows):
        return self._round(windows, final=False)

    def _check_drained(self):
        # FOFF never leaves a packet behind: partial frames sweep every
        # nonempty VOQ, so the whole stream must have been framed and
        # every wire arrival released.
        assert self._packets.pending() == 0, (
            "FOFF frame formation left packets unframed"
        )
        assert len(self._held[0]) == 0, (
            "FOFF resequencer replay left packets in flight"
        )

    def _extras(self):
        return [
            {"max_resequencer": float(self._peak[b])}
            for b in range(self.num_blocks)
        ]

    def finish(self, windows=None):
        deps = self._round(windows, final=True)
        self._check_drained()
        return deps, self._extras()

    def finish_stacked(self, windows=None):
        """Like :meth:`finish`, but returns the seed-extended stacked
        record (no per-seed split) for the stacked metrics fold."""
        dep = self._round(windows, final=True, stacked=True)
        self._check_drained()
        return dep, self._extras()


def stream(matrix: np.ndarray, seeds, total_slots: int) -> _FoffStream:
    """Resumable multi-seed FOFF replay (see :class:`_FoffStream`)."""
    return _FoffStream(matrix, seeds, total_slots)
