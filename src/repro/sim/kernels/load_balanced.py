"""Vectorized kernel: the baseline load-balanced switch (Chang et al.)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch
from .base import (
    Departures,
    PolledQueueBank,
    WindowStacker,
    mid_residues,
    replay_polled_queues,
    segmented_fifo_service,
)

__all__ = ["departures", "stream"]


def departures(
    batch: ArrivalBatch, matrix: np.ndarray, seed: int
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay the baseline load-balanced switch (no aggregation, reorders)."""
    n = batch.n
    # Stage 1: one FIFO per input, served every slot.  Arrivals are
    # already (slot, input)-sorted, hence in FIFO order within each input.
    order = np.argsort(batch.inputs, kind="stable")
    tx = np.empty(len(batch.slots), dtype=np.int64)
    tx[order] = segmented_fifo_service(
        batch.inputs[order], batch.slots[order]
    )
    mid = (batch.inputs + tx) % n
    departure = replay_polled_queues(
        mid * n + batch.outputs,
        np.zeros(len(tx), dtype=np.int64),
        tx + 1,
        tx,
        mid_residues(n),
        n,
    )
    dep = Departures(
        voq=batch.voqs,
        seq=batch.seqs,
        arrival=batch.slots,
        departure=departure,
        wire=mid,
        tx=tx,
    )
    return dep, None


class _LoadBalancedStream:
    """Windowed (and seed-stacked) replay of the baseline LB switch.

    Stage 1 is a bank of per-input FIFOs served every slot — a
    :class:`PolledQueueBank` with period 1 — and stage 2 the usual
    per-(mid, output) polled queues.
    """

    def __init__(self, matrix: np.ndarray, seeds, total_slots: int) -> None:
        n = matrix.shape[0]
        self.n = n
        self.num_blocks = len(seeds)
        self._stacker = WindowStacker(self.num_blocks)
        # Stage-1 events arrive in generation order — FIFO order within
        # every input queue — so the bank can group by radix sort alone.
        self._stage1 = PolledQueueBank(
            np.zeros(self.num_blocks * n, dtype=np.int64), 1, presorted=True
        )
        self._stage2 = PolledQueueBank(
            np.tile(mid_residues(n), self.num_blocks), n
        )

    def _advance(self, events, boundary):
        n = self.n
        block, slots, inputs, outputs, seqs, gidx = events
        voq_x = block * n * n + inputs * n + outputs
        tx, _, payload = self._stage1.feed(
            block * n + inputs,
            np.zeros(len(slots), dtype=np.int64),
            slots,
            gidx,
            (voq_x, seqs, slots, inputs),
            boundary,
        )
        voq_x, seqs, slots, inputs = payload
        block = voq_x // (n * n)
        out = voq_x % n
        mid = (inputs + tx) % n
        departure, tx, payload = self._stage2.feed(
            block * n * n + mid * n + out,
            np.zeros(len(tx), dtype=np.int64),
            tx + 1,
            tx,
            (voq_x, seqs, slots, mid),
            boundary,
        )
        voq_x, seqs, slots, mid = payload
        return Departures(
            voq=voq_x,
            seq=seqs,
            arrival=slots,
            departure=departure,
            wire=mid,
            tx=tx,
        )

    def _round(self, windows, final: bool, split: bool = True):
        from .sprinklers import _split_blocks

        boundary = None
        if windows is not None:
            block, slots, inputs, outputs, seqs, gidx, end = (
                self._stacker.stack(windows)
            )
            if not final:
                boundary = end
            events = (block, slots, inputs, outputs, seqs, gidx)
        else:
            events = (np.empty(0, dtype=np.int64),) * 6
        dep = self._advance(events, boundary)
        return (
            _split_blocks(dep, self.n, self.num_blocks) if split else dep
        )

    def feed(self, windows):
        return self._round(windows, final=False)

    def finish(self, windows=None):
        deps = self._round(windows, final=True)
        return deps, [None] * self.num_blocks

    def finish_stacked(self, windows=None):
        dep = self._round(windows, final=True, split=False)
        return dep, [None] * self.num_blocks


def stream(matrix: np.ndarray, seeds, total_slots: int) -> _LoadBalancedStream:
    """Resumable multi-seed LB replay (see :class:`_LoadBalancedStream`)."""
    return _LoadBalancedStream(matrix, seeds, total_slots)
