"""Vectorized kernel: the baseline load-balanced switch (Chang et al.)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...traffic.batch import ArrivalBatch
from .base import (
    Departures,
    mid_residues,
    replay_polled_queues,
    segmented_fifo_service,
)

__all__ = ["departures"]


def departures(
    batch: ArrivalBatch, matrix: np.ndarray, seed: int
) -> Tuple[Departures, Optional[Dict[str, float]]]:
    """Replay the baseline load-balanced switch (no aggregation, reorders)."""
    n = batch.n
    # Stage 1: one FIFO per input, served every slot.  Arrivals are
    # already (slot, input)-sorted, hence in FIFO order within each input.
    order = np.argsort(batch.inputs, kind="stable")
    tx = np.empty(len(batch.slots), dtype=np.int64)
    tx[order] = segmented_fifo_service(
        batch.inputs[order], batch.slots[order]
    )
    mid = (batch.inputs + tx) % n
    departure = replay_polled_queues(
        mid * n + batch.outputs,
        np.zeros(len(tx), dtype=np.int64),
        tx + 1,
        tx,
        mid_residues(n),
        n,
    )
    dep = Departures(
        voq=batch.voqs,
        seq=batch.seqs,
        arrival=batch.slots,
        departure=departure,
        wire=mid,
        tx=tx,
    )
    return dep, None
