#!/usr/bin/env python3
"""The §4 stability story end to end: Table 1, Theorem 1, and Monte Carlo.

Three acts:

1. recompute the paper's Table 1 (Chernoff bounds on per-queue overload);
2. exhibit the Theorem 1 extremal rate vector — the worst admissible split
   — and show it is harmless below total load 2/3 + 1/(3N^2);
3. Monte-Carlo the true overload probability of that vector above the
   threshold and compare against the analytical bound.

Usage::

    python examples/overload_bounds.py
"""

import numpy as np

from repro.analysis.chernoff import (
    overload_probability_bound,
    switch_wide_bound,
)
from repro.analysis.stability import (
    max_load_over_permutations_mc,
    overload_probability_mc,
    theorem1_threshold,
    worst_case_rates,
)
from repro.figures import table1


def main() -> None:
    print(table1.render())

    n = 64
    threshold = theorem1_threshold(n)
    print(f"\n--- Theorem 1 at N={n} ---")
    print(f"threshold: 2/3 + 1/(3N^2) = {threshold:.6f}")

    rng = np.random.default_rng(0)
    safe = worst_case_rates(n, scale=0.999)
    worst = max_load_over_permutations_mc(safe, n, trials=20_000, rng=rng)
    print(
        f"extremal vector at 0.999x threshold: worst X over 20k random "
        f"placements = {worst:.6f} < 1/N = {1 / n:.6f}"
    )

    hot = worst_case_rates(n, scale=1.0)
    prob = overload_probability_mc(hot, n, trials=20_000, rng=rng)
    print(
        f"extremal vector at exactly the threshold: "
        f"P(X >= 1/N) ~= {prob:.4f} by Monte Carlo"
    )

    print(f"\n--- Chernoff bounds vs loads at N={n} ---")
    print(f"{'rho':>6s} {'per-queue bound':>16s} {'switch-wide':>12s}")
    for rho in (0.70, 0.80, 0.90, 0.95):
        print(
            f"{rho:6.2f} {overload_probability_bound(rho, n):16.3e} "
            f"{switch_wide_bound(rho, n):12.3e}"
        )
    print(
        "\n(The bounds are loose at small N; Table 1's N >= 1024 is where "
        "they become overwhelming. The larger the switch, the stronger "
        "the guarantee - the paper's scalability point.)"
    )


if __name__ == "__main__":
    main()
